#!/usr/bin/env python3
"""Compare two dlte-audit-v1 documents and localize the first divergence.

The audit plane (DESIGN.md §15) turns "the determinism gate failed" into
"shard 3 diverged in window 4, first moved labels par.delivery and
net.hop, last agreeing barrier at t=1.000s". This tool is the diagnosis
half: given two audit documents it reports, in window order, where the
digest chains split and which shards, event labels, ledger pairs, and
metric digests moved.

Two comparison modes:

  Full compare (default): merged section AND per-shard section (chains,
  per-label digests, message ledger). Valid only between runs of the
  SAME configuration — per-shard chains depend on the partition. Used
  by the CI double-run gate and the injected-divergence self-test.

      tools/audit_diff.py clean.audit.json suspect.audit.json

  Merged-only (--merged-only): just the partition-invariant merged
  section. This is the cross-shard-count compare (1-shard vs 4-shard
  runs of the same scenario must agree here byte-for-byte).

      tools/audit_diff.py --merged-only seq.audit.json par.audit.json

Self-test expectations (the CI injected-divergence step): with
--expect-divergence the exit sense inverts — the tool fails unless a
divergence IS found, and any of --expect-window=N / --expect-shard=N /
--expect-label=NAME must match the reported first divergence.

Exit status: 0 = identical (or expectations met), 1 = divergence found
(or expectations missed), 2 = usage or missing/malformed input.
"""

import argparse
import json
import pathlib
import sys

SCHEMA = "dlte-audit-v1"


def die(message: str) -> None:
    """Exit 2 (usage/input error) with a one-line diagnosis, no traceback."""
    print(f"audit_diff: {message}", file=sys.stderr)
    sys.exit(2)


def load_doc(path: pathlib.Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        die(f"missing file: {path}")
    except json.JSONDecodeError as err:
        die(f"malformed JSON in {path}: {err}")
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        die(f"{path}: not a {SCHEMA} document")
    if "merged" not in doc:
        die(f"{path}: no merged section")
    return doc


def window_seconds(doc: dict, index: int) -> float:
    return index * doc["merged"].get("window_ns", 0) / 1e9


class Report:
    """Accumulates divergences; remembers the first (= earliest window)."""

    def __init__(self):
        self.lines = []
        self.first_window = None  # earliest divergent window index
        self.shards = set()       # shards whose chains split there
        self.labels = set()       # labels whose digests moved there

    def add(self, window: int, line: str, shard=None, labels=()):
        if self.first_window is None or window < self.first_window:
            self.first_window = window
            self.shards = set()
            self.labels = set()
        if window == self.first_window:
            if shard is not None:
                self.shards.add(shard)
            self.labels.update(labels)
        self.lines.append((window, line))

    def divergent(self) -> bool:
        return bool(self.lines)


def compare_merged(a: dict, b: dict, report: Report) -> None:
    ma, mb = a["merged"], b["merged"]
    for key in ("window_ns", "events_total", "messages_total"):
        if ma.get(key) != mb.get(key):
            report.add(-1, f"merged.{key}: {ma.get(key)} != {mb.get(key)}")
    wa, wb = ma.get("windows", []), mb.get("windows", [])
    if len(wa) != len(wb):
        report.add(-1, f"merged window count: {len(wa)} != {len(wb)}")
    for x, y in zip(wa, wb):
        idx = x.get("index", -1)
        if x.get("events") != y.get("events"):
            report.add(idx, f"merged window {idx}: event count "
                            f"{x.get('events')} != {y.get('events')}")
        elif x.get("events_digest") != y.get("events_digest"):
            report.add(idx, f"merged window {idx}: event multiset digest "
                            "moved (same count — same number of events, "
                            "different (time, label) population)")
        if x.get("messages") != y.get("messages"):
            report.add(idx, f"merged window {idx}: message count "
                            f"{x.get('messages')} != {y.get('messages')}")
        elif x.get("messages_digest") != y.get("messages_digest"):
            report.add(idx, f"merged window {idx}: message multiset digest "
                            "moved (same count, different messages)")
    for x, y in zip(ma.get("metrics", []), mb.get("metrics", [])):
        idx = x.get("index", -1)
        if x != y:
            report.add(idx, f"merged metric digest for window {idx} moved "
                            f"(sealed at t={x.get('t_ns', 0) / 1e9:.3f}s)")


def compare_shards(a: dict, b: dict, report: Report) -> None:
    sa, sb = a.get("shards", {}), b.get("shards", {})
    if sa.get("count") != sb.get("count"):
        report.add(-1, f"shard count: {sa.get('count')} != {sb.get('count')} "
                       "(different partitions — use --merged-only)")
        return
    for ta, tb in zip(sa.get("timelines", []), sb.get("timelines", [])):
        shard = ta.get("shard")
        for x, y in zip(ta.get("windows", []), tb.get("windows", [])):
            if x == y:
                continue
            idx = x.get("index", -1)
            moved = sorted(
                set(x.get("labels", {})) | set(y.get("labels", {})))
            moved = [name for name in moved
                     if x.get("labels", {}).get(name)
                     != y.get("labels", {}).get(name)]
            detail = []
            if x.get("events") != y.get("events"):
                detail.append(f"events {x.get('events')} != {y.get('events')}")
            if x.get("chain") != y.get("chain"):
                detail.append("execution chain split")
            if moved:
                detail.append("labels moved: " + ", ".join(moved))
            report.add(idx, f"shard {shard} window {idx}: "
                            + "; ".join(detail), shard=shard, labels=moved)
    for la, lb in zip(sa.get("ledger", []), sb.get("ledger", [])):
        if la == lb:
            continue
        idx = la.get("index", -1)
        pa = {(c["src"], c["dst"]): c for c in la.get("pairs", [])}
        pb = {(c["src"], c["dst"]): c for c in lb.get("pairs", [])}
        moved = sorted(k for k in set(pa) | set(pb) if pa.get(k) != pb.get(k))
        pairs = ", ".join(f"{s}->{d}" for s, d in moved)
        report.add(idx, f"ledger window {idx}: exchange digests moved for "
                        f"pair(s) {pairs}")


def last_agreeing_barrier(a: dict, b: dict, first_window) -> str:
    """Latest metric-window seal (a barrier) both sides agree on."""
    last = None
    for x, y in zip(a["merged"].get("metrics", []),
                    b["merged"].get("metrics", [])):
        if x != y:
            break
        if first_window is not None and x.get("index", -1) >= first_window:
            break
        last = x
    if last is None:
        return "none (divergence precedes the first sealed window)"
    return (f"window {last['index']} barrier at t={last['t_ns'] / 1e9:.3f}s")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="compare two dlte-audit-v1 documents")
    parser.add_argument("a", type=pathlib.Path)
    parser.add_argument("b", type=pathlib.Path)
    parser.add_argument("--merged-only", action="store_true",
                        help="compare only the partition-invariant merged "
                             "section (cross-shard-count mode)")
    parser.add_argument("--expect-divergence", action="store_true",
                        help="self-test: fail unless a divergence is found")
    parser.add_argument("--expect-window", type=int, default=None,
                        help="self-test: required first divergent window")
    parser.add_argument("--expect-shard", type=int, default=None,
                        help="self-test: required shard at first divergence")
    parser.add_argument("--expect-label", default=None,
                        help="self-test: label that must move at first "
                             "divergence")
    args = parser.parse_args()

    doc_a, doc_b = load_doc(args.a), load_doc(args.b)
    report = Report()
    compare_merged(doc_a, doc_b, report)
    if not args.merged_only:
        if "shards" not in doc_a or "shards" not in doc_b:
            die("full compare needs a shards section in both documents "
                "(use --merged-only for merged-only artifacts)")
        compare_shards(doc_a, doc_b, report)

    scope = "merged section" if args.merged_only else "full document"
    if not report.divergent():
        print(f"audit_diff: OK — {scope} identical "
              f"({len(doc_a['merged'].get('windows', []))} windows)")
        if args.expect_divergence:
            print("audit_diff: FAIL — expected a divergence, found none",
                  file=sys.stderr)
            return 1
        return 0

    first = report.first_window
    when = ("before the first window" if first is None or first < 0 else
            f"window {first} (t={window_seconds(doc_a, first):.3f}s"
            f"-{window_seconds(doc_a, first + 1):.3f}s)")
    print(f"audit_diff: DIVERGENCE — first at {when}")
    if report.shards:
        print("  shard(s): " + ", ".join(str(s)
                                         for s in sorted(report.shards)))
    if report.labels:
        print("  label(s): " + ", ".join(sorted(report.labels)))
    print("  last agreeing metric seal: "
          + last_agreeing_barrier(doc_a, doc_b, first))
    for window, line in sorted(report.lines, key=lambda item: item[0])[:20]:
        print(f"  - {line}")
    if len(report.lines) > 20:
        print(f"  ... and {len(report.lines) - 20} more divergent windows")

    if args.expect_divergence:
        misses = []
        if args.expect_window is not None and first != args.expect_window:
            misses.append(f"window {first} != expected {args.expect_window}")
        if args.expect_shard is not None \
                and args.expect_shard not in report.shards:
            misses.append(f"shard {args.expect_shard} not in "
                          f"{sorted(report.shards)}")
        if args.expect_label is not None \
                and args.expect_label not in report.labels:
            misses.append(f"label {args.expect_label} not in "
                          f"{sorted(report.labels)}")
        if misses:
            print("audit_diff: FAIL — divergence found but mislocalized: "
                  + "; ".join(misses), file=sys.stderr)
            return 1
        print("audit_diff: OK — expected divergence found and localized")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
