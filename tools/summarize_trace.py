#!/usr/bin/env python3
"""Validate and summarize a dLTE Chrome trace-event file (DESIGN.md §9).

Validation (structural, fails hard):
  * the document is the JSON object form: displayTimeUnit / otherData /
    traceEvents;
  * every `ph:"X"` event carries a unique positive integer args.id;
  * every non-zero args.parent resolves to another span in the file;
  * durations and timestamps are non-negative (simulated clock).

Summary: a per-procedure latency breakdown table (count, mean, p50,
p95, max in milliseconds) plus the parent→child link census, i.e. the
same rollup the in-process `span.*` histograms feed, recomputed
independently from the exported file.

    tools/summarize_trace.py trace.json
    tools/summarize_trace.py trace.json --require attach,handover
    tools/summarize_trace.py trace.json --require-child attach:aka

--require fails unless every named procedure appears at least once;
--require-child PARENT:CHILD fails unless at least one CHILD span is
parented under a PARENT span (the causal-linking acceptance check).

Exit status: 0 = valid (and all requirements met), 1 = validation or
requirement failure, 2 = usage or unreadable input.

Stdlib only — runs anywhere CI has a python3.
"""

import argparse
import json
import pathlib
import sys


def load(path: pathlib.Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if not isinstance(doc, dict):
        sys.exit(f"error: {path}: top level is not a JSON object")
    return doc


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def validate(doc: dict) -> list:
    """Structural checks; returns the list of ph:'X' span events."""
    for key in ("displayTimeUnit", "otherData", "traceEvents"):
        if key not in doc:
            fail(f"missing top-level key: {key}")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents is empty or not a list")

    spans = [e for e in events if e.get("ph") == "X"]
    metas = [e for e in events if e.get("ph") == "M"]
    if not spans:
        fail("no ph:'X' span events")

    ids = set()
    for e in spans:
        args = e.get("args", {})
        sid = args.get("id")
        if not isinstance(sid, int) or sid <= 0:
            fail(f"span {e.get('name')!r} has no positive integer args.id")
        if sid in ids:
            fail(f"duplicate span id {sid}")
        ids.add(sid)
        if e.get("ts", -1) < 0 or e.get("dur", -1) < 0:
            fail(f"span id {sid} has negative ts/dur")
        for field in ("name", "cat"):
            if not e.get(field):
                fail(f"span id {sid} lacks {field}")
    for e in spans:
        parent = e.get("args", {}).get("parent", 0)
        if parent and parent not in ids:
            fail(f"span id {e['args']['id']} has dangling parent {parent}")

    # Every span's tid should be named by a thread_name metadata event.
    named_tids = {
        m.get("tid")
        for m in metas
        if m.get("name") == "thread_name"
    }
    for e in spans:
        if e.get("tid") not in named_tids:
            fail(f"span id {e['args']['id']} on unnamed tid {e.get('tid')}")
    return spans


def percentile(sorted_vals: list, q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def summarize(spans: list) -> None:
    by_name = {}
    for e in spans:
        by_name.setdefault(e["name"], []).append(e["dur"] / 1000.0)

    header = ("procedure", "count", "mean ms", "p50 ms", "p95 ms", "max ms")
    rows = [header]
    for name in sorted(by_name):
        durs = sorted(by_name[name])
        rows.append((
            name,
            str(len(durs)),
            f"{sum(durs) / len(durs):.3f}",
            f"{percentile(durs, 0.50):.3f}",
            f"{percentile(durs, 0.95):.3f}",
            f"{durs[-1]:.3f}",
        ))
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    for r in rows:
        line = "  ".join(
            r[i].ljust(widths[i]) if i == 0 else r[i].rjust(widths[i])
            for i in range(len(r))
        )
        print(line)

    links = {}
    by_id = {e["args"]["id"]: e for e in spans}
    for e in spans:
        parent = e.get("args", {}).get("parent", 0)
        if parent:
            key = (by_id[parent]["name"], e["name"])
            links[key] = links.get(key, 0) + 1
    if links:
        print("\ncausal links (parent -> child):")
        for (parent, child), n in sorted(links.items()):
            print(f"  {parent} -> {child}: {n}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate + summarize a dLTE Chrome trace-event file")
    parser.add_argument("trace", type=pathlib.Path)
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated span names that must appear at least once")
    parser.add_argument(
        "--require-child",
        action="append",
        default=[],
        metavar="PARENT:CHILD",
        help="require at least one CHILD span parented under a PARENT span")
    args = parser.parse_args()

    doc = load(args.trace)
    spans = validate(doc)

    other = doc.get("otherData", {})
    print(f"{args.trace}: {len(spans)} spans, "
          f"{other.get('open_spans', '?')} open at export, "
          f"{other.get('dropped_spans', '?')} dropped")
    print()
    summarize(spans)

    names = {e["name"] for e in spans}
    missing = [r for r in args.require.split(",") if r and r not in names]
    if missing:
        fail(f"required procedures missing from trace: {', '.join(missing)}")

    by_id = {e["args"]["id"]: e for e in spans}
    for spec in args.require_child:
        if ":" not in spec:
            sys.exit(f"error: bad --require-child {spec!r}, want PARENT:CHILD")
        parent_name, child_name = spec.split(":", 1)
        found = any(
            e["name"] == child_name
            and e["args"].get("parent", 0)
            and by_id[e["args"]["parent"]]["name"] == parent_name
            for e in spans)
        if not found:
            fail(f"no {child_name!r} span parented under {parent_name!r}")

    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
