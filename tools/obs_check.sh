#!/usr/bin/env bash
# Single entry point for observability artifact checks (DESIGN.md §10).
#
#   tools/obs_check.sh trace   <trace.json>  [summarize_trace.py args...]
#   tools/obs_check.sh series  <series.json> [health_report.py args...]
#   tools/obs_check.sh par     <prefixA> <prefixB>
#   tools/obs_check.sh metrics <benchA.json> <benchB.json>
#   tools/obs_check.sh prof    <prof.json>   [prof_report.py args...]
#
# `trace` validates/summarizes a Chrome trace-event export (--require /
# --require-child gates); `series` validates/renders a dlte-series-v1
# health file (--require-alert / --require-resolve gates). CI and
# EXPERIMENTS.md go through this wrapper so the dispatch lives in one
# place. Exit codes pass through from the underlying tool.
#
# `par` byte-compares two sharded-run artifact sets written by a
# bench's --par-artifacts=<prefix> mode (<prefix>.metrics.json,
# <prefix>.series.json, <prefix>.openmetrics.txt, and — when the bench
# profiles — <prefix>.prof.json, the deterministic event-attribution
# section) — the determinism gate that a parallel run is identical to
# the sequential one.
#
# `metrics` byte-compares the deterministic "metrics" objects of two
# BENCH_<name>.json files (same bench run twice, e.g. the C11
# coexistence determinism gate).
#
# `prof` validates/renders a dlte-prof-v1 self-profiling document
# (--require-label gates; `prof --compare A B` byte-compares the
# deterministic event-attribution sections — the prof-determinism gate).
set -euo pipefail

here="$(cd "$(dirname "$0")" && pwd)"

usage() {
  sed -n '2,29p' "$0" | sed 's/^# \{0,1\}//'
  exit 2
}

[ $# -ge 2 ] || usage
mode="$1"
shift

case "$mode" in
  trace)
    exec python3 "$here/summarize_trace.py" "$@"
    ;;
  series)
    exec python3 "$here/health_report.py" "$@"
    ;;
  par)
    [ $# -eq 2 ] || usage
    a="$1"
    b="$2"
    rc=0
    for ext in metrics.json series.json openmetrics.txt prof.json; do
      if [ ! -e "$a.$ext" ] && [ ! -e "$b.$ext" ]; then
        continue  # prof.json only exists for profiled benches.
      fi
      if cmp -s "$a.$ext" "$b.$ext"; then
        echo "par: $ext identical"
      else
        echo "par: $ext DIVERGED ($a.$ext vs $b.$ext)" >&2
        cmp "$a.$ext" "$b.$ext" >&2 || true
        rc=1
      fi
    done
    [ "$rc" -eq 0 ] && echo "par: all artifacts byte-identical"
    exit "$rc"
    ;;
  metrics)
    [ $# -eq 2 ] || usage
    exec python3 "$here/check_bench_regression.py" --compare-metrics "$1" "$2"
    ;;
  prof)
    exec python3 "$here/prof_report.py" "$@"
    ;;
  *)
    echo "obs_check.sh: unknown mode '$mode' (expected trace|series|par|metrics|prof)" >&2
    usage
    ;;
esac
