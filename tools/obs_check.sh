#!/usr/bin/env bash
# Single entry point for observability artifact checks (DESIGN.md §10).
#
#   tools/obs_check.sh trace   <trace.json>  [summarize_trace.py args...]
#   tools/obs_check.sh series  <series.json> [health_report.py args...]
#   tools/obs_check.sh par     <prefixA> <prefixB>
#   tools/obs_check.sh metrics <benchA.json> <benchB.json>
#   tools/obs_check.sh prof    <prof.json>   [prof_report.py args...]
#   tools/obs_check.sh audit   <a.audit.json> <b.audit.json> [args...]
#
# `trace` validates/summarizes a Chrome trace-event export (--require /
# --require-child gates); `series` validates/renders a dlte-series-v1
# health file (--require-alert / --require-resolve gates). CI and
# EXPERIMENTS.md go through this wrapper so the dispatch lives in one
# place. Exit codes pass through from the underlying tool.
#
# `par` byte-compares two sharded-run artifact sets written by a
# bench's --par-artifacts=<prefix> mode (<prefix>.metrics.json,
# <prefix>.series.json, <prefix>.openmetrics.txt, and — when the bench
# profiles — <prefix>.prof.json, the deterministic event-attribution
# section) — the determinism gate that a parallel run is identical to
# the sequential one.
#
# `metrics` byte-compares the deterministic "metrics" objects of two
# BENCH_<name>.json files (same bench run twice, e.g. the C11
# coexistence determinism gate).
#
# `prof` validates/renders a dlte-prof-v1 self-profiling document
# (--require-label gates; `prof --compare A B` byte-compares the
# deterministic event-attribution sections — the prof-determinism gate).
#
# `audit` diffs two dlte-audit-v1 determinism-audit documents through
# audit_diff.py (first divergent window/shard/label localization; pass
# --merged-only for cross-shard-count compares, --expect-* for the
# injected-divergence self-test).
set -euo pipefail

here="$(cd "$(dirname "$0")" && pwd)"

usage() {
  sed -n '2,29p' "$0" | sed 's/^# \{0,1\}//'
  exit 2
}

[ $# -ge 2 ] || usage
mode="$1"
shift

case "$mode" in
  trace)
    exec python3 "$here/summarize_trace.py" "$@"
    ;;
  series)
    exec python3 "$here/health_report.py" "$@"
    ;;
  par)
    [ $# -eq 2 ] || usage
    a="$1"
    b="$2"
    rc=0
    for ext in metrics.json series.json openmetrics.txt prof.json; do
      if [ ! -e "$a.$ext" ] && [ ! -e "$b.$ext" ]; then
        continue  # prof.json only exists for profiled benches.
      fi
      if cmp -s "$a.$ext" "$b.$ext"; then
        echo "par: $ext identical"
      else
        echo "par: $ext DIVERGED ($a.$ext vs $b.$ext)" >&2
        cmp "$a.$ext" "$b.$ext" >&2 || true
        rc=1
      fi
    done
    # The audit document's per-shard section legitimately differs across
    # partitions, so it goes through audit_diff.py --merged-only instead
    # of cmp. On any divergence above, the audit diagnosis (if available)
    # is the localization the bare cmp offsets can't give.
    if [ -e "$a.audit.json" ] && [ -e "$b.audit.json" ]; then
      if python3 "$here/audit_diff.py" --merged-only \
          "$a.audit.json" "$b.audit.json"; then
        echo "par: audit merged section identical"
      else
        echo "par: audit.json DIVERGED ($a.audit.json vs $b.audit.json)" >&2
        rc=1
      fi
      if [ "$rc" -ne 0 ]; then
        echo "par: audit diagnosis (full compare):" >&2
        python3 "$here/audit_diff.py" "$a.audit.json" "$b.audit.json" >&2 || true
      fi
    fi
    [ "$rc" -eq 0 ] && echo "par: all artifacts byte-identical"
    exit "$rc"
    ;;
  metrics)
    [ $# -eq 2 ] || usage
    exec python3 "$here/check_bench_regression.py" --compare-metrics "$1" "$2"
    ;;
  prof)
    exec python3 "$here/prof_report.py" "$@"
    ;;
  audit)
    exec python3 "$here/audit_diff.py" "$@"
    ;;
  *)
    echo "obs_check.sh: unknown mode '$mode' (expected trace|series|par|metrics|prof|audit)" >&2
    usage
    ;;
esac
