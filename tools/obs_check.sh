#!/usr/bin/env bash
# Single entry point for observability artifact checks (DESIGN.md §10).
#
#   tools/obs_check.sh trace  <trace.json>  [summarize_trace.py args...]
#   tools/obs_check.sh series <series.json> [health_report.py args...]
#
# `trace` validates/summarizes a Chrome trace-event export (--require /
# --require-child gates); `series` validates/renders a dlte-series-v1
# health file (--require-alert / --require-resolve gates). CI and
# EXPERIMENTS.md go through this wrapper so the dispatch lives in one
# place. Exit codes pass through from the underlying tool.
set -euo pipefail

here="$(cd "$(dirname "$0")" && pwd)"

usage() {
  sed -n '2,11p' "$0" | sed 's/^# \{0,1\}//'
  exit 2
}

[ $# -ge 2 ] || usage
mode="$1"
shift

case "$mode" in
  trace)
    exec python3 "$here/summarize_trace.py" "$@"
    ;;
  series)
    exec python3 "$here/health_report.py" "$@"
    ;;
  *)
    echo "obs_check.sh: unknown mode '$mode' (expected trace|series)" >&2
    usage
    ;;
esac
