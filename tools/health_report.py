#!/usr/bin/env python3
"""Validate and render dlte-series-v1 health/telemetry files.

Input is the series JSON written by bench binaries (`--series-out=` /
$DLTE_SERIES_OUT) and examples — the TimeSeriesSampler's ring buffers
plus the SloMonitor's rule set, alert timeline, and final per-scope
health scores. The tool validates the schema, prints a per-scope report
(series summary, alert timeline, health scores), and can gate CI:

    tools/health_report.py out/series.json
    tools/health_report.py out/series.json --require-alert registry_outage \\
        --require-resolve

`--require-alert NAME` fails (exit 1) unless an alert named NAME fired;
`--require-resolve` additionally requires every fired alert named NAME
to have resolved by the end of the run. `--series PREFIX` limits the
series listing to metrics with that prefix. Exit 2 = unreadable or
schema-invalid input. Stdlib only.
"""

import argparse
import json
import pathlib
import sys

SCHEMA = "dlte-series-v1"
SERIES_KINDS = ("counter", "rate", "gauge", "hist_count", "hist_quantile")
ALERT_KEYS = ("t_s", "event", "rule", "scope", "metric", "value", "threshold")


def die(message: str) -> None:
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load(path: pathlib.Path) -> dict:
    try:
        text = path.read_text()
    except OSError as err:
        die(f"cannot read {path}: {err}")
    if not text.strip():
        die(f"{path} is empty — did the run reach finish()?")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        die(f"{path} is not valid JSON ({err})")
    validate(doc, path)
    return doc


def validate(doc: dict, path: pathlib.Path) -> None:
    """Schema check: every key the C++ exporter promises, typed."""
    if not isinstance(doc, dict):
        die(f"{path}: top level is not an object")
    if doc.get("schema") != SCHEMA:
        die(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for key, kind in (("source", str), ("interval_s", (int, float)),
                      ("samples", int), ("series", dict), ("rules", list),
                      ("alerts", list), ("health", dict)):
        if not isinstance(doc.get(key), kind):
            die(f"{path}: missing or mistyped key {key!r}")
    for name, series in doc["series"].items():
        if series.get("kind") not in SERIES_KINDS:
            die(f"{path}: series {name!r} has unknown kind "
                f"{series.get('kind')!r}")
        points = series.get("points")
        if not isinstance(points, list):
            die(f"{path}: series {name!r} lacks a points array")
        for point in points:
            if (not isinstance(point, list) or len(point) != 2 or
                    not all(isinstance(v, (int, float)) for v in point)):
                die(f"{path}: series {name!r} has a malformed point: "
                    f"{point!r}")
        times = [p[0] for p in points]
        if times != sorted(times):
            die(f"{path}: series {name!r} timestamps are not monotonic")
    for alert in doc["alerts"]:
        missing = [k for k in ALERT_KEYS if k not in alert]
        if missing:
            die(f"{path}: alert lacks keys: {', '.join(missing)}")
        if alert["event"] not in ("fire", "resolve"):
            die(f"{path}: alert event {alert['event']!r} is neither "
                "fire nor resolve")


def summarize_series(doc: dict, prefix: str) -> None:
    names = [n for n in doc["series"] if n.startswith(prefix)]
    shown = names[:20]
    print(f"series ({len(names)}"
          f"{' matching ' + repr(prefix) if prefix else ''}, "
          f"{doc['samples']} samples at {doc['interval_s']}s):")
    for name in shown:
        series = doc["series"][name]
        points = series["points"]
        values = [p[1] for p in points]
        last = values[-1] if values else 0.0
        peak = max(values) if values else 0.0
        dropped = f" dropped={series['dropped']}" if series["dropped"] else ""
        print(f"  {name} [{series['kind']}] points={len(points)} "
              f"last={last:g} max={peak:g}{dropped}")
    if len(names) > len(shown):
        print(f"  ... and {len(names) - len(shown)} more "
              "(narrow with --series PREFIX)")


def alert_timeline(doc: dict) -> None:
    print(f"\nrules ({len(doc['rules'])}):")
    for rule in doc["rules"]:
        print(f"  {rule}")
    print(f"\nalert timeline ({len(doc['alerts'])} events):")
    if not doc["alerts"]:
        print("  (no alerts fired)")
    for alert in doc["alerts"]:
        print(f"  t={alert['t_s']:8.2f}s {alert['event'].upper():7s} "
              f"{alert['rule']} [{alert['scope']}] {alert['metric']} "
              f"value={alert['value']:g} threshold={alert['threshold']:g}")
    print("\nfinal health scores:")
    for scope in sorted(doc["health"]):
        score = doc["health"][scope]
        flag = "" if score >= 1.0 else "  <-- unhealthy at end of run"
        print(f"  {scope}: {score:g}{flag}")


def check_requirements(doc: dict, require_alert: list,
                       require_resolve: bool) -> int:
    failures = 0
    for name in require_alert:
        fires = [a for a in doc["alerts"]
                 if a["rule"] == name and a["event"] == "fire"]
        resolves = [a for a in doc["alerts"]
                    if a["rule"] == name and a["event"] == "resolve"]
        if not fires:
            print(f"FAIL: required alert {name!r} never fired")
            failures += 1
            continue
        print(f"OK: alert {name!r} fired at "
              f"t={fires[0]['t_s']:g}s ({len(fires)} fire(s))")
        if require_resolve:
            if len(resolves) < len(fires):
                print(f"FAIL: alert {name!r} fired {len(fires)}x but "
                      f"resolved only {len(resolves)}x")
                failures += 1
            else:
                print(f"OK: alert {name!r} resolved at "
                      f"t={resolves[-1]['t_s']:g}s")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("series_file", type=pathlib.Path)
    parser.add_argument("--series", default="", metavar="PREFIX",
                        help="only list series whose name starts with PREFIX")
    parser.add_argument("--require-alert", action="append", default=[],
                        metavar="NAME",
                        help="fail unless alert NAME fired (repeatable)")
    parser.add_argument("--require-resolve", action="store_true",
                        help="with --require-alert: also require every "
                             "fire of NAME to have a matching resolve")
    args = parser.parse_args()
    doc = load(args.series_file)
    print(f"{args.series_file}: source={doc['source']!r} schema ok")
    summarize_series(doc, args.series)
    alert_timeline(doc)
    if args.require_alert:
        print()
        return check_requirements(doc, args.require_alert,
                                  args.require_resolve)
    return 0


if __name__ == "__main__":
    sys.exit(main())
