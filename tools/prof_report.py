#!/usr/bin/env python3
"""Validate and render dlte-prof-v1 self-profiling documents.

Input is the profile JSON written by bench binaries (`--prof-out=` /
$DLTE_PROF_OUT): the deterministic event-attribution section (per-label
schedule/execute/past-clamp/residency counts, byte-identical across
shard and thread counts) plus the wall-clock shard profile (per-shard
lane timing, shard-pair message matrix, per-window samples — never
byte-compared). Bench gate modes also write a bare attribution document
(<prefix>.prof.json) with only the deterministic section; both forms
validate here.

    tools/prof_report.py out/c10.prof.json
    tools/prof_report.py out/c10.prof.json --top 10 --require-label 'sim.*'
    tools/prof_report.py --compare run1.prof.json run2.prof.json

`--require-label PATTERN` fails (exit 1) unless some label matches the
glob PATTERN (repeatable). `--compare A B` byte-compares only the
deterministic event_attribution sections of two documents — the CI
prof-determinism gate. Exit 2 = unreadable or schema-invalid input.
Stdlib only.
"""

import argparse
import fnmatch
import json
import pathlib
import sys

SCHEMA = "dlte-prof-v1"
LABEL_KEYS = ("schedules", "executed", "past_clamps", "residency_ns")
TOTALS_KEYS = ("labels",) + LABEL_KEYS
LANE_KEYS = ("shard", "events", "run_s", "barrier_wait_s",
             "events_per_window")
CELL_KEYS = ("src", "dst", "messages", "bytes")


def die(message: str) -> None:
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load(path: pathlib.Path) -> dict:
    try:
        text = path.read_text()
    except OSError as err:
        die(f"cannot read {path}: {err}")
    if not text.strip():
        die(f"{path} is empty — did the run reach finish()?")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        die(f"{path} is not valid JSON ({err})")
    validate(doc, path)
    return doc


def validate(doc: dict, path: pathlib.Path) -> None:
    """Schema check: every key the C++ exporter promises, typed."""
    if not isinstance(doc, dict):
        die(f"{path}: top level is not an object")
    if doc.get("schema") != SCHEMA:
        die(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    attribution = doc.get("event_attribution")
    if not isinstance(attribution, dict):
        die(f"{path}: missing event_attribution object")
    labels = attribution.get("labels")
    if not isinstance(labels, dict) or not labels:
        die(f"{path}: event_attribution.labels missing or empty "
            "(sim.unlabeled is always present)")
    for name, stats in labels.items():
        if not isinstance(stats, dict):
            die(f"{path}: label {name!r} is not an object")
        for key in LABEL_KEYS:
            if not isinstance(stats.get(key), int):
                die(f"{path}: label {name!r} lacks integer key {key!r}")
        if stats["executed"] > stats["schedules"]:
            die(f"{path}: label {name!r} executed more events than it "
                "scheduled")
    if list(labels) != sorted(labels):
        die(f"{path}: event_attribution.labels keys are not sorted — "
            "the deterministic byte-compare contract is broken")
    totals = attribution.get("totals")
    if not isinstance(totals, dict):
        die(f"{path}: event_attribution.totals missing")
    for key in TOTALS_KEYS:
        if not isinstance(totals.get(key), int):
            die(f"{path}: totals lacks integer key {key!r}")
    if totals["labels"] != len(labels):
        die(f"{path}: totals.labels={totals['labels']} but "
            f"{len(labels)} labels present")
    for key in LABEL_KEYS:
        summed = sum(stats[key] for stats in labels.values())
        if summed != totals[key]:
            die(f"{path}: totals.{key}={totals[key]} but labels sum "
                f"to {summed}")
    # The wall-clock section is optional: bench gate modes write a bare
    # attribution document for the determinism byte-compare.
    profile = doc.get("shard_profile")
    if profile is None:
        return
    if not isinstance(profile, dict):
        die(f"{path}: shard_profile is not an object")
    for key in ("shards", "threads", "windows", "messages"):
        if not isinstance(profile.get(key), int):
            die(f"{path}: shard_profile lacks integer key {key!r}")
    if not isinstance(profile.get("lookahead_s"), (int, float)):
        die(f"{path}: shard_profile lacks lookahead_s")
    lanes = profile.get("per_shard")
    if not isinstance(lanes, list):
        die(f"{path}: shard_profile.per_shard is not an array")
    for lane in lanes:
        missing = [k for k in LANE_KEYS if k not in lane]
        if missing:
            die(f"{path}: shard lane lacks keys: {', '.join(missing)}")
    for cell in profile.get("matrix", []):
        missing = [k for k in CELL_KEYS if k not in cell]
        if missing:
            die(f"{path}: matrix cell lacks keys: {', '.join(missing)}")
        shards = profile["shards"]
        if cell["src"] >= shards or cell["dst"] >= shards:
            die(f"{path}: matrix cell ({cell['src']},{cell['dst']}) "
                f"out of range for {shards} shards")
    samples = profile.get("samples")
    if not isinstance(samples, dict):
        die(f"{path}: shard_profile.samples is not an object")
    t_s = samples.get("t_s", [])
    for key in ("t_s", "messages", "shard_events"):
        column = samples.get(key)
        if not isinstance(column, list) or len(column) != len(t_s):
            die(f"{path}: samples.{key} missing or ragged "
                "(columns must be equal length)")
    if t_s != sorted(t_s):
        die(f"{path}: samples.t_s is not monotonic")


def label_table(doc: dict, top: int) -> None:
    labels = doc["event_attribution"]["labels"]
    totals = doc["event_attribution"]["totals"]
    ranked = sorted(labels.items(),
                    key=lambda kv: (-kv[1]["executed"], kv[0]))
    shown = ranked[:top]
    width = max((len(name) for name, _ in shown), default=5)
    print(f"labels ({len(labels)}, top {len(shown)} by executed):")
    print(f"  {'label':{width}s} {'executed':>10s} {'sched':>10s} "
          f"{'clamped':>8s} {'share':>6s} {'avg_residency':>14s}")
    for name, stats in shown:
        share = (stats["executed"] / totals["executed"]
                 if totals["executed"] else 0.0)
        avg_res = (stats["residency_ns"] / stats["schedules"] / 1e6
                   if stats["schedules"] else 0.0)
        print(f"  {name:{width}s} {stats['executed']:10d} "
              f"{stats['schedules']:10d} {stats['past_clamps']:8d} "
              f"{share:6.1%} {avg_res:11.3f} ms")
    print(f"  totals: {totals['executed']} executed / "
          f"{totals['schedules']} scheduled, "
          f"{totals['past_clamps']} past-clamped")


def shard_report(profile: dict) -> None:
    print(f"\nshard profile: {profile['shards']} shard(s), "
          f"{profile['threads']} thread(s), {profile['windows']} windows "
          f"(lookahead {profile['lookahead_s']:g}s), "
          f"{profile['messages']} cross-shard messages")
    for lane in profile["per_shard"]:
        busy = lane["run_s"] + lane["barrier_wait_s"]
        wait_share = lane["barrier_wait_s"] / busy if busy > 0 else 0.0
        print(f"  shard {lane['shard']}: {lane['events']} events "
              f"({lane['events_per_window']:.1f}/window), "
              f"run {lane['run_s'] * 1e3:.1f}ms, "
              f"barrier wait {lane['barrier_wait_s'] * 1e3:.1f}ms "
              f"({wait_share:.0%})")
    render_matrix(profile)
    t_s = profile["samples"]["t_s"]
    if t_s:
        print(f"  samples: {len(t_s)} windows over "
              f"t=[{t_s[0]:g}s, {t_s[-1]:g}s]")


def render_matrix(profile: dict) -> None:
    cells = profile.get("matrix", [])
    shards = profile["shards"]
    if not cells:
        print("  matrix: (no cross-shard messages)")
        return
    grid = [[0] * shards for _ in range(shards)]
    for cell in cells:
        grid[cell["src"]][cell["dst"]] = cell["messages"]
    width = max(len(str(v)) for row in grid for v in row)
    width = max(width, len(str(shards - 1)) + 1)
    header = " ".join(f"d{d}".rjust(width) for d in range(shards))
    print(f"  matrix (messages, src rows x dst cols):")
    print(f"    {'':4s}{header}")
    for src, row in enumerate(grid):
        body = " ".join(str(v).rjust(width) for v in row)
        print(f"    s{src:<3d}{body}")


def check_labels(doc: dict, patterns: list) -> int:
    labels = doc["event_attribution"]["labels"]
    failures = 0
    for pattern in patterns:
        matched = sorted(n for n in labels if fnmatch.fnmatchcase(n, pattern))
        if not matched:
            print(f"FAIL: no label matches {pattern!r} "
                  f"(have: {', '.join(sorted(labels))})")
            failures += 1
        else:
            executed = sum(labels[n]["executed"] for n in matched)
            print(f"OK: {pattern!r} matches {len(matched)} label(s), "
                  f"{executed} events executed")
    return 1 if failures else 0


def compare(a_path: pathlib.Path, b_path: pathlib.Path) -> int:
    """Byte-compare the deterministic sections of two documents."""
    a, b = load(a_path), load(b_path)
    a_json = json.dumps(a["event_attribution"], sort_keys=True)
    b_json = json.dumps(b["event_attribution"], sort_keys=True)
    if a_json != b_json:
        print(f"FAIL: event_attribution differs between {a_path} and "
              f"{b_path}")
        am, bm = a["event_attribution"]["labels"], \
            b["event_attribution"]["labels"]
        for name in sorted(set(am) | set(bm)):
            if am.get(name) != bm.get(name):
                print(f"  {name}: {am.get(name)!r} != {bm.get(name)!r}")
        return 1
    print(f"OK: event_attribution byte-identical "
          f"({a_path.name} vs {b_path.name})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("prof_file", type=pathlib.Path, nargs="?")
    parser.add_argument("--top", type=int, default=15, metavar="N",
                        help="rows in the per-label table (default 15)")
    parser.add_argument("--require-label", action="append", default=[],
                        metavar="PATTERN",
                        help="fail unless a label matches the glob "
                             "PATTERN (repeatable)")
    parser.add_argument("--compare", nargs=2, type=pathlib.Path,
                        metavar=("A", "B"),
                        help="byte-compare the deterministic "
                             "event_attribution sections of two documents")
    args = parser.parse_args()
    if args.compare:
        if args.prof_file is not None:
            parser.error("--compare takes exactly two files, no positional")
        return compare(*args.compare)
    if args.prof_file is None:
        parser.error("prof_file is required unless --compare is given")
    doc = load(args.prof_file)
    source = doc.get("source", "(attribution only)")
    print(f"{args.prof_file}: source={source!r} schema ok")
    label_table(doc, args.top)
    if "shard_profile" in doc:
        shard_report(doc["shard_profile"])
    if args.require_label:
        print()
        return check_labels(doc, args.require_label)
    return 0


if __name__ == "__main__":
    sys.exit(main())
