#!/usr/bin/env python3
"""Gate bench results against checked-in baselines.

Two modes:

  Regression gate (default): for every baseline bench/baselines/
  BENCH_<name>.json, find the matching BENCH_<name>.json under
  --result-dir and fail if its wall_seconds exceeds the baseline by more
  than --threshold (fractional, default 0.25 = +25%). When both files
  record an engine throughput (timings.events_per_sec, written by
  Harness::throughput), additionally fail if the result's throughput
  drops more than --threshold below the baseline's.

      tools/check_bench_regression.py \
          --baseline-dir bench/baselines --result-dir out

  With --json PATH the gate additionally writes a machine-readable
  dlte-bench-gate-v1 document (per-bench wall/throughput base, result,
  delta, limit, and verdict plus the overall status) to PATH; stdout
  keeps the human one-line-per-gate format either way.

  Determinism compare: byte-compare the "metrics" objects of two result
  files (the deterministic slice of the schema; wall_seconds and timings
  are wall-clock and exempt).

      tools/check_bench_regression.py --compare-metrics a.json b.json

Exit status: 0 = all gates passed, 1 = regression/mismatch, 2 = usage or
missing/malformed input.
"""

import argparse
import json
import pathlib
import sys

REQUIRED_KEYS = ("bench", "git_rev", "sim_seconds", "wall_seconds", "metrics")

RERECORD_HINT = ("to (re)record baselines, run the bench binaries and copy "
                 "their BENCH_*.json into bench/baselines/ — see README "
                 "\"Recording bench baselines\"")


def die(message: str) -> None:
    """Exit 2 (usage/input error) with a one-line diagnosis, no traceback."""
    print(f"error: {message}", file=sys.stderr)
    print(f"hint: {RERECORD_HINT}", file=sys.stderr)
    sys.exit(2)


def load(path: pathlib.Path) -> dict:
    if not path.exists():
        die(f"{path} does not exist")
    try:
        text = path.read_text()
    except OSError as err:
        die(f"cannot read {path}: {err}")
    if not text.strip():
        die(f"{path} is empty — the bench likely crashed before finish()")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        die(f"{path} is not valid JSON ({err}) — truncated bench output?")
    if not isinstance(doc, dict):
        die(f"{path} is not a JSON object")
    missing = [k for k in REQUIRED_KEYS if k not in doc]
    if missing:
        die(f"{path} lacks required keys: {', '.join(missing)}")
    return doc


def compare_metrics(a_path: pathlib.Path, b_path: pathlib.Path) -> int:
    a, b = load(a_path), load(b_path)
    a_json = json.dumps(a["metrics"], sort_keys=True)
    b_json = json.dumps(b["metrics"], sort_keys=True)
    if a_json != b_json:
        print(f"FAIL: metrics differ between {a_path} and {b_path}")
        for section in ("counters", "gauges", "histograms"):
            am, bm = a["metrics"].get(section, {}), b["metrics"].get(section, {})
            for key in sorted(set(am) | set(bm)):
                if am.get(key) != bm.get(key):
                    print(f"  {section}.{key}: {am.get(key)!r} != {bm.get(key)!r}")
        return 1
    print(f"OK: metrics byte-identical ({a_path.name})")
    return 0


def regression_gate(baseline_dir: pathlib.Path, result_dir: pathlib.Path,
                    threshold: float, slack: float,
                    json_path: pathlib.Path = None) -> int:
    if not baseline_dir.is_dir():
        die(f"baseline directory {baseline_dir} does not exist")
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        die(f"no BENCH_*.json baselines in {baseline_dir}")
    failures = 0
    records = []
    for base_path in baselines:
        bench_name = base_path.stem.replace("BENCH_", "", 1)
        record = {"bench": bench_name, "verdict": "ok",
                  "wall": None, "throughput": None}
        records.append(record)
        result_path = result_dir / base_path.name
        if not result_path.exists():
            print(f"FAIL: {result_path} missing (baseline exists)")
            record["verdict"] = "missing"
            failures += 1
            continue
        base, result = load(base_path), load(result_path)
        base_wall, result_wall = base["wall_seconds"], result["wall_seconds"]
        if base_wall <= 0:
            print(f"SKIP: {base_path.name} baseline wall_seconds <= 0")
            record["verdict"] = "skipped"
            continue
        # The absolute slack keeps sub-second benches from tripping the
        # ratio gate on scheduler noise.
        allowed = base_wall * (1.0 + threshold) + slack
        verdict = "OK" if result_wall <= allowed else "FAIL"
        # Always print the measured delta, pass or fail: a +20% "OK" is
        # the early warning the threshold alone would swallow.
        wall_delta = (result_wall - base_wall) / base_wall
        print(f"{verdict}: {base_path.name} wall {result_wall:.3f}s vs "
              f"baseline {base_wall:.3f}s ({wall_delta:+.1%}, "
              f"limit {allowed:.3f}s = +{threshold:.0%} + {slack:.1f}s)")
        record["wall"] = {"base_s": base_wall, "result_s": result_wall,
                          "delta": wall_delta, "limit_s": allowed,
                          "verdict": verdict.lower()}
        if verdict == "FAIL":
            failures += 1
            record["verdict"] = "fail"
        # Throughput gate: only when BOTH sides recorded it, so adding
        # throughput() to a bench does not fail until its baseline is
        # re-recorded with the new field.
        base_tp = base.get("timings", {}).get("events_per_sec", 0.0)
        result_tp = result.get("timings", {}).get("events_per_sec", 0.0)
        if base_tp > 0.0 and result_tp > 0.0:
            floor = base_tp * (1.0 - threshold)
            verdict = "OK" if result_tp >= floor else "FAIL"
            tp_delta = (result_tp - base_tp) / base_tp
            print(f"{verdict}: {base_path.name} throughput "
                  f"{result_tp / 1e6:.2f} Mev/s vs baseline "
                  f"{base_tp / 1e6:.2f} Mev/s ({tp_delta:+.1%}, "
                  f"floor {floor / 1e6:.2f} = -{threshold:.0%})")
            record["throughput"] = {
                "base_events_per_sec": base_tp,
                "result_events_per_sec": result_tp,
                "delta": tp_delta, "floor_events_per_sec": floor,
                "verdict": verdict.lower()}
            if verdict == "FAIL":
                failures += 1
                record["verdict"] = "fail"
    if failures:
        print(f"{failures} gate(s) regressed beyond {threshold:.0%}; "
              "if intentional, refresh bench/baselines/ (see README).")
    if json_path is not None:
        doc = {"schema": "dlte-bench-gate-v1",
               "status": "fail" if failures else "ok",
               "threshold": threshold, "slack_s": slack,
               "failures": failures, "benches": records}
        try:
            json_path.write_text(json.dumps(doc, indent=1) + "\n")
        except OSError as err:
            die(f"cannot write {json_path}: {err}")
        print(f"[gate json] {json_path}")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", type=pathlib.Path,
                        default=pathlib.Path("bench/baselines"))
    parser.add_argument("--result-dir", type=pathlib.Path,
                        default=pathlib.Path("."))
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional wall-time growth "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--slack", type=float, default=0.5,
                        help="absolute wall-time grace in seconds added "
                             "on top of the threshold (default 0.5)")
    parser.add_argument("--compare-metrics", nargs=2, type=pathlib.Path,
                        metavar=("A", "B"),
                        help="byte-compare the metrics objects of two "
                             "result files instead of gating wall time")
    parser.add_argument("--json", type=pathlib.Path, metavar="PATH",
                        default=None,
                        help="additionally write a machine-readable "
                             "dlte-bench-gate-v1 verdict document (per-bench "
                             "wall/throughput deltas and pass/fail) to PATH; "
                             "the human one-line format stays on stdout")
    args = parser.parse_args()
    if args.compare_metrics:
        return compare_metrics(*args.compare_metrics)
    return regression_gate(args.baseline_dir, args.result_dir,
                           args.threshold, args.slack, args.json)


if __name__ == "__main__":
    sys.exit(main())
