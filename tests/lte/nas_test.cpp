#include "lte/nas.h"

#include <gtest/gtest.h>

namespace dlte::lte {
namespace {

template <typename T>
T round_trip(const T& msg) {
  const auto bytes = encode_nas(NasMessage{msg});
  auto decoded = decode_nas(bytes);
  EXPECT_TRUE(decoded.ok()) << decoded.ok();
  return std::get<T>(*decoded);
}

TEST(NasCodec, AttachRequestRoundTrip) {
  AttachRequest m{Imsi{510170000000001ULL}, Tmsi{0xabcd1234}};
  const auto back = round_trip(m);
  EXPECT_EQ(back.imsi, m.imsi);
  EXPECT_EQ(back.tmsi, m.tmsi);
}

TEST(NasCodec, AuthenticationRequestRoundTrip) {
  AuthenticationRequest m;
  for (std::size_t i = 0; i < 16; ++i) m.rand[i] = static_cast<std::uint8_t>(i);
  m.autn.sqn_xor_ak = {1, 2, 3, 4, 5, 6};
  m.autn.amf = {0xb9, 0xb9};
  for (std::size_t i = 0; i < 8; ++i) {
    m.autn.mac_a[i] = static_cast<std::uint8_t>(0xa0 + i);
  }
  const auto back = round_trip(m);
  EXPECT_EQ(back.rand, m.rand);
  EXPECT_EQ(back.autn.sqn_xor_ak, m.autn.sqn_xor_ak);
  EXPECT_EQ(back.autn.amf, m.autn.amf);
  EXPECT_EQ(back.autn.mac_a, m.autn.mac_a);
}

TEST(NasCodec, AuthenticationResponseRoundTrip) {
  AuthenticationResponse m;
  for (std::size_t i = 0; i < 8; ++i) m.res[i] = static_cast<std::uint8_t>(i * 3);
  EXPECT_EQ(round_trip(m).res, m.res);
}

TEST(NasCodec, AttachAcceptRoundTrip) {
  AttachAccept m{Tmsi{42}, 0x0a000001, BearerId{5}};
  const auto back = round_trip(m);
  EXPECT_EQ(back.tmsi, m.tmsi);
  EXPECT_EQ(back.ue_ip, m.ue_ip);
  EXPECT_EQ(back.default_bearer, m.default_bearer);
}

TEST(NasCodec, SecurityModeRoundTrip) {
  SecurityModeCommand m{2, 3};
  const auto back = round_trip(m);
  EXPECT_EQ(back.integrity_algorithm, 2);
  EXPECT_EQ(back.ciphering_algorithm, 3);
}

TEST(NasCodec, EmptyBodiedMessages) {
  EXPECT_TRUE(std::holds_alternative<AuthenticationReject>(
      *decode_nas(encode_nas(NasMessage{AuthenticationReject{}}))));
  EXPECT_TRUE(std::holds_alternative<SecurityModeComplete>(
      *decode_nas(encode_nas(NasMessage{SecurityModeComplete{}}))));
  EXPECT_TRUE(std::holds_alternative<AttachComplete>(
      *decode_nas(encode_nas(NasMessage{AttachComplete{}}))));
  EXPECT_TRUE(std::holds_alternative<DetachRequest>(
      *decode_nas(encode_nas(NasMessage{DetachRequest{}}))));
}

TEST(NasCodec, AttachRejectCarriesCause) {
  AttachReject m{17};
  EXPECT_EQ(round_trip(m).cause, 17);
}

TEST(NasCodec, UnknownTypeRejected) {
  const std::uint8_t bogus[] = {0xee, 0x00};
  EXPECT_FALSE(decode_nas(bogus).ok());
}

TEST(NasCodec, EmptyBufferRejected) {
  EXPECT_FALSE(decode_nas({}).ok());
}

TEST(NasCodec, MessageNames) {
  EXPECT_STREQ(nas_message_name(NasMessage{AttachRequest{}}),
               "AttachRequest");
  EXPECT_STREQ(nas_message_name(NasMessage{AttachAccept{}}), "AttachAccept");
}

// Property: every prefix-truncation of a valid encoding fails to decode
// rather than crashing or mis-decoding (except the trivial empty-body
// messages whose whole encoding is the 1-byte type).
class NasTruncation : public ::testing::TestWithParam<int> {};

TEST_P(NasTruncation, TruncatedPrefixesFailCleanly) {
  std::vector<NasMessage> msgs{
      AttachRequest{Imsi{123}, Tmsi{9}},
      AuthenticationRequest{},
      AuthenticationResponse{},
      SecurityModeCommand{},
      AttachAccept{Tmsi{1}, 2, BearerId{5}},
      AttachReject{1},
  };
  const auto& msg = msgs[static_cast<std::size_t>(GetParam())];
  const auto bytes = encode_nas(msg);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto r = decode_nas(std::span(bytes.data(), cut));
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, NasTruncation, ::testing::Range(0, 6));

}  // namespace
}  // namespace dlte::lte
