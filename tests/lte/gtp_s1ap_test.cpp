#include <gtest/gtest.h>

#include "lte/gtp.h"
#include "lte/s1ap.h"

namespace dlte::lte {
namespace {

TEST(GtpU, HeaderRoundTrip) {
  GtpUHeader h{Teid{0x12345678}, 1400, 77};
  const auto bytes = encode_gtpu(h);
  EXPECT_EQ(bytes.size(), static_cast<std::size_t>(kGtpUHeaderBytes));
  auto back = decode_gtpu(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->teid, h.teid);
  EXPECT_EQ(back->length, h.length);
  EXPECT_EQ(back->sequence, h.sequence);
}

TEST(GtpU, RejectsWrongVersion) {
  auto bytes = encode_gtpu(GtpUHeader{Teid{1}, 0, 0});
  bytes[0] = 0x52;  // Version 2.
  EXPECT_FALSE(decode_gtpu(bytes).ok());
}

TEST(GtpU, RejectsNonGpdu) {
  auto bytes = encode_gtpu(GtpUHeader{Teid{1}, 0, 0});
  bytes[1] = 0x01;  // Echo request, not G-PDU.
  EXPECT_FALSE(decode_gtpu(bytes).ok());
}

TEST(GtpU, TunnelOverheadIsForty) {
  // 20 (IP) + 8 (UDP) + 12 (GTP-U) — the per-packet cost of tunneling to
  // a centralized core, charged in experiment F1.
  EXPECT_EQ(kGtpTunnelOverheadBytes, 40);
}

TEST(GtpC, CreateSessionRoundTrip) {
  CreateSessionRequest req{Imsi{310150123456789ULL}, BearerId{5},
                           Teid{0xdead}};
  auto req_back = decode_gtpc_create_req(encode_gtpc_create_req(req));
  ASSERT_TRUE(req_back.ok());
  EXPECT_EQ(req_back->imsi, req.imsi);
  EXPECT_EQ(req_back->uplink_teid, req.uplink_teid);

  CreateSessionResponse resp{Teid{0xbeef}, 0x0a00000a};
  auto resp_back = decode_gtpc_create_resp(encode_gtpc_create_resp(resp));
  ASSERT_TRUE(resp_back.ok());
  EXPECT_EQ(resp_back->downlink_teid, resp.downlink_teid);
  EXPECT_EQ(resp_back->ue_ip, resp.ue_ip);
}

TEST(GtpC, CrossDecodingFails) {
  const auto req = encode_gtpc_create_req(CreateSessionRequest{});
  EXPECT_FALSE(decode_gtpc_create_resp(req).ok());
}

TEST(S1ap, InitialUeMessageRoundTrip) {
  InitialUeMessage m{EnbUeId{7}, CellId{100}, {0x41, 0x01, 0x02}};
  auto back = decode_s1ap(encode_s1ap(S1apMessage{m}));
  ASSERT_TRUE(back.ok());
  const auto& d = std::get<InitialUeMessage>(*back);
  EXPECT_EQ(d.enb_ue_id, m.enb_ue_id);
  EXPECT_EQ(d.cell, m.cell);
  EXPECT_EQ(d.nas_pdu, m.nas_pdu);
}

TEST(S1ap, NasTransportCarriesOpaquePdu) {
  const std::vector<std::uint8_t> pdu(200, 0x5a);
  UplinkNasTransport up{EnbUeId{1}, MmeUeId{2}, pdu};
  auto back = decode_s1ap(encode_s1ap(S1apMessage{up}));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::get<UplinkNasTransport>(*back).nas_pdu, pdu);

  DownlinkNasTransport down{EnbUeId{1}, MmeUeId{2}, pdu};
  auto back2 = decode_s1ap(encode_s1ap(S1apMessage{down}));
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(std::get<DownlinkNasTransport>(*back2).nas_pdu, pdu);
}

TEST(S1ap, ContextSetupKeysSurvive) {
  std::vector<std::uint8_t> key(32);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 7);
  }
  InitialContextSetupRequest req{EnbUeId{3}, MmeUeId{4}, Teid{55}, key};
  auto back = decode_s1ap(encode_s1ap(S1apMessage{req}));
  ASSERT_TRUE(back.ok());
  const auto& d = std::get<InitialContextSetupRequest>(*back);
  EXPECT_EQ(d.sgw_uplink_teid, req.sgw_uplink_teid);
  EXPECT_EQ(d.security_key, key);

  InitialContextSetupResponse resp{EnbUeId{3}, MmeUeId{4}, Teid{66}};
  auto back2 = decode_s1ap(encode_s1ap(S1apMessage{resp}));
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(std::get<InitialContextSetupResponse>(*back2).enb_downlink_teid,
            Teid{66});
}

TEST(S1ap, ReleaseCommandRoundTrip) {
  UeContextReleaseCommand m{EnbUeId{9}, MmeUeId{10}, 2};
  auto back = decode_s1ap(encode_s1ap(S1apMessage{m}));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::get<UeContextReleaseCommand>(*back).cause, 2);
}

TEST(S1ap, GarbageRejected) {
  const std::uint8_t junk[] = {0xff, 0x01, 0x02};
  EXPECT_FALSE(decode_s1ap(junk).ok());
  EXPECT_FALSE(decode_s1ap({}).ok());
}

}  // namespace
}  // namespace dlte::lte
