#include "lte/x2ap.h"

#include <gtest/gtest.h>

namespace dlte::lte {
namespace {

template <typename T>
T round_trip(const T& msg) {
  auto decoded = decode_x2(encode_x2(X2Message{msg}));
  EXPECT_TRUE(decoded.ok());
  return std::get<T>(*decoded);
}

TEST(X2Codec, HandoverRequestRoundTrip) {
  X2HandoverRequest m{CellId{1}, CellId{2}, Imsi{12345}, Tmsi{678},
                      {0xde, 0xad, 0xbe, 0xef}};
  const auto back = round_trip(m);
  EXPECT_EQ(back.source_cell, m.source_cell);
  EXPECT_EQ(back.target_cell, m.target_cell);
  EXPECT_EQ(back.imsi, m.imsi);
  EXPECT_EQ(back.tmsi, m.tmsi);
  EXPECT_EQ(back.security_context, m.security_context);
}

TEST(X2Codec, HandoverAckRoundTrip) {
  X2HandoverRequestAck m{CellId{2}, Imsi{12345}, Teid{99}};
  const auto back = round_trip(m);
  EXPECT_EQ(back.forwarding_teid, m.forwarding_teid);
}

TEST(X2Codec, UeContextReleaseRoundTrip) {
  X2UeContextRelease m{CellId{3}, Imsi{777}};
  EXPECT_EQ(round_trip(m).imsi, m.imsi);
}

TEST(X2Codec, LoadInformationRoundTrip) {
  X2LoadInformation m{CellId{4}, 0.73, 12};
  const auto back = round_trip(m);
  EXPECT_DOUBLE_EQ(back.prb_utilization, 0.73);
  EXPECT_EQ(back.active_ues, 12u);
}

TEST(X2Codec, DlteHelloRoundTrip) {
  DlteHello m{ApId{10}, DlteMode::kCooperative, "ops@valley-isp.example"};
  const auto back = round_trip(m);
  EXPECT_EQ(back.ap, m.ap);
  EXPECT_EQ(back.mode, DlteMode::kCooperative);
  EXPECT_EQ(back.operator_contact, m.operator_contact);
}

TEST(X2Codec, DltePeerStatusRoundTrip) {
  DltePeerStatus m{ApId{11}, DlteMode::kFairShare, 0.4, 0.62, 30};
  const auto back = round_trip(m);
  EXPECT_DOUBLE_EQ(back.offered_load, 0.4);
  EXPECT_DOUBLE_EQ(back.prb_utilization, 0.62);
  EXPECT_EQ(back.active_ues, 30u);
}

TEST(X2Codec, CoexistenceModesRoundTrip) {
  // The unlicensed access behaviours added for src/coex ride the same
  // mode byte as the licensed coordination modes.
  DlteHello hello{ApId{12}, DlteMode::kLbt, "ops@coex.example"};
  EXPECT_EQ(round_trip(hello).mode, DlteMode::kLbt);
  DltePeerStatus status{ApId{13}, DlteMode::kDutyCycle, 0.5, 0.5, 4};
  EXPECT_EQ(round_trip(status).mode, DlteMode::kDutyCycle);
  EXPECT_TRUE(is_coexistence_mode(DlteMode::kLbt));
  EXPECT_TRUE(is_coexistence_mode(DlteMode::kDutyCycle));
  EXPECT_FALSE(is_coexistence_mode(DlteMode::kFairShare));
  EXPECT_FALSE(is_coexistence_mode(DlteMode::kIsolated));
}

TEST(X2Codec, ModeByteAboveDutyCycleRejected) {
  auto bytes = encode_x2(X2Message{DlteHello{ApId{1}, DlteMode::kFairShare,
                                             "x"}});
  bytes[5] = 0x05;  // One past kDutyCycle.
  EXPECT_FALSE(decode_x2(bytes).ok());
}

TEST(X2Codec, ShareProposalRoundTrip) {
  DlteShareProposal m{7, {1, 2, 3}, {0.5, 0.3, 0.2}};
  const auto back = round_trip(m);
  EXPECT_EQ(back.round, 7u);
  EXPECT_EQ(back.ap_ids, m.ap_ids);
  EXPECT_EQ(back.shares, m.shares);
}

TEST(X2Codec, EmptyShareProposal) {
  DlteShareProposal m{0, {}, {}};
  const auto back = round_trip(m);
  EXPECT_TRUE(back.ap_ids.empty());
}

TEST(X2Codec, ShareAcceptRoundTrip) {
  DlteShareAccept m{7, ApId{2}};
  EXPECT_EQ(round_trip(m).ap, ApId{2});
}

TEST(X2Codec, InvalidModeRejected) {
  auto bytes = encode_x2(X2Message{DlteHello{ApId{1}, DlteMode::kFairShare,
                                             "x"}});
  bytes[5] = 0x07;  // Mode byte out of range.
  EXPECT_FALSE(decode_x2(bytes).ok());
}

TEST(X2Codec, GarbageRejected) {
  const std::uint8_t junk[] = {0x7f};
  EXPECT_FALSE(decode_x2(junk).ok());
  EXPECT_FALSE(decode_x2({}).ok());
}

TEST(X2WireSize, StatusMessagesAreSmall) {
  // §4.3: "the X2 interface is relatively low bandwidth" — a peer status
  // report must fit comfortably in a couple hundred bytes.
  const int sz = x2_wire_size(X2Message{DltePeerStatus{}});
  EXPECT_LT(sz, 200);
  EXPECT_GT(sz, 48);  // More than bare framing.
}

TEST(X2WireSize, GrowsWithMembership) {
  DlteShareProposal small{1, {1, 2}, {0.5, 0.5}};
  DlteShareProposal large{1, std::vector<std::uint32_t>(16, 1),
                          std::vector<double>(16, 1.0 / 16)};
  EXPECT_GT(x2_wire_size(X2Message{large}), x2_wire_size(X2Message{small}));
}

// Property: truncation of any prefix fails cleanly across message kinds.
class X2Truncation : public ::testing::TestWithParam<int> {};

TEST_P(X2Truncation, TruncatedPrefixesFailCleanly) {
  std::vector<X2Message> msgs{
      X2HandoverRequest{CellId{1}, CellId{2}, Imsi{3}, Tmsi{4}, {1, 2}},
      X2HandoverRequestAck{CellId{1}, Imsi{2}, Teid{3}},
      X2UeContextRelease{CellId{1}, Imsi{2}},
      X2LoadInformation{CellId{1}, 0.5, 2},
      DlteHello{ApId{1}, DlteMode::kFairShare, "contact"},
      DltePeerStatus{ApId{1}, DlteMode::kCooperative, 0.1, 0.2, 3},
      DlteShareProposal{1, {1, 2}, {0.6, 0.4}},
      DlteShareAccept{1, ApId{2}},
  };
  const auto bytes = encode_x2(msgs[static_cast<std::size_t>(GetParam())]);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_x2(std::span(bytes.data(), cut)).ok())
        << "cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, X2Truncation, ::testing::Range(0, 8));

}  // namespace
}  // namespace dlte::lte
