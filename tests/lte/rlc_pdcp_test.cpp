#include <gtest/gtest.h>

#include "lte/pdcp.h"
#include "lte/rlc.h"
#include "sim/random.h"

namespace dlte::lte {
namespace {

std::vector<std::uint8_t> sdu_of(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i);
  }
  return out;
}

TEST(RlcCodec, PduAndStatusRoundTrip) {
  RlcPdu pdu{42, true, {1, 2, 3}};
  auto back = decode_rlc_pdu(encode_rlc_pdu(pdu));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->sn, 42u);
  EXPECT_TRUE(back->last_of_sdu);
  EXPECT_EQ(back->payload, pdu.payload);

  RlcStatus status{10, {3, 7}};
  auto sback = decode_rlc_status(encode_rlc_status(status));
  ASSERT_TRUE(sback.ok());
  EXPECT_EQ(sback->ack_sn, 10u);
  EXPECT_EQ(sback->nacks, status.nacks);
}

TEST(RlcCodec, RejectsGarbage) {
  EXPECT_FALSE(decode_rlc_pdu({}).ok());
  const std::uint8_t bad_flag[] = {0, 0, 0, 1, 9, 0, 0};
  EXPECT_FALSE(decode_rlc_pdu(bad_flag).ok());
}

TEST(Rlc, SegmentsAndReassembles) {
  RlcTransmitter tx{100};
  RlcReceiver rx;
  tx.queue_sdu(sdu_of(250, 1));  // 3 PDUs: 100+100+50.
  int pdus = 0;
  while (auto pdu = tx.next_pdu()) {
    rx.handle_pdu(*pdu);
    ++pdus;
  }
  EXPECT_EQ(pdus, 3);
  auto sdu = rx.next_sdu();
  ASSERT_TRUE(sdu.has_value());
  EXPECT_EQ(*sdu, sdu_of(250, 1));
  EXPECT_FALSE(rx.next_sdu().has_value());
  tx.handle_status(rx.make_status());
  EXPECT_TRUE(tx.idle());
}

TEST(Rlc, MultipleSdusKeepBoundaries) {
  RlcTransmitter tx{64};
  RlcReceiver rx;
  tx.queue_sdu(sdu_of(10, 1));
  tx.queue_sdu(sdu_of(200, 2));
  tx.queue_sdu(sdu_of(64, 3));  // Exactly one PDU.
  while (auto pdu = tx.next_pdu()) rx.handle_pdu(*pdu);
  EXPECT_EQ(*rx.next_sdu(), sdu_of(10, 1));
  EXPECT_EQ(*rx.next_sdu(), sdu_of(200, 2));
  EXPECT_EQ(*rx.next_sdu(), sdu_of(64, 3));
}

TEST(Rlc, LossIsNackedAndRetransmitted) {
  RlcTransmitter tx{50};
  RlcReceiver rx;
  tx.queue_sdu(sdu_of(200, 9));  // SNs 0..3.
  std::vector<RlcPdu> pdus;
  while (auto pdu = tx.next_pdu()) pdus.push_back(*pdu);
  ASSERT_EQ(pdus.size(), 4u);
  // Lose SN 1.
  for (const auto& p : pdus) {
    if (p.sn != 1) rx.handle_pdu(p);
  }
  EXPECT_FALSE(rx.next_sdu().has_value());  // Hole blocks delivery.
  const auto status = rx.make_status();
  EXPECT_EQ(status.ack_sn, 4u);
  EXPECT_EQ(status.nacks, (std::vector<std::uint32_t>{1}));

  tx.handle_status(status);
  auto retx = tx.next_pdu();
  ASSERT_TRUE(retx.has_value());
  EXPECT_EQ(retx->sn, 1u);
  EXPECT_EQ(tx.retransmissions(), 1u);
  rx.handle_pdu(*retx);
  EXPECT_EQ(*rx.next_sdu(), sdu_of(200, 9));
  tx.handle_status(rx.make_status());
  EXPECT_TRUE(tx.idle());
}

TEST(Rlc, DuplicateDeliveryDiscarded) {
  RlcTransmitter tx{50};
  RlcReceiver rx;
  tx.queue_sdu(sdu_of(40, 5));
  auto pdu = tx.next_pdu();
  rx.handle_pdu(*pdu);
  rx.handle_pdu(*pdu);
  EXPECT_EQ(rx.duplicates_discarded(), 1u);
  EXPECT_EQ(*rx.next_sdu(), sdu_of(40, 5));
  EXPECT_FALSE(rx.next_sdu().has_value());
}

TEST(Rlc, StatusDedupedRetransmissions) {
  RlcTransmitter tx{50};
  RlcReceiver rx;
  tx.queue_sdu(sdu_of(150, 7));  // SNs 0..2.
  std::vector<RlcPdu> pdus;
  while (auto p = tx.next_pdu()) pdus.push_back(*p);
  rx.handle_pdu(pdus[0]);
  rx.handle_pdu(pdus[2]);
  // Two identical statuses must not double-schedule SN 1.
  tx.handle_status(rx.make_status());
  tx.handle_status(rx.make_status());
  auto r1 = tx.next_pdu();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->sn, 1u);
  EXPECT_FALSE(tx.next_pdu().has_value());
}

// Property: under any random loss pattern, repeated status+retx rounds
// deliver every SDU exactly once, in order.
class RlcLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(RlcLossSweep, EventualInOrderDelivery) {
  sim::RngStream rng{static_cast<std::uint64_t>(GetParam() + 100)};
  const double loss = 0.05 + 0.1 * GetParam();
  RlcTransmitter tx{32};
  RlcReceiver rx;
  std::vector<std::vector<std::uint8_t>> sdus;
  for (int i = 0; i < 20; ++i) {
    sdus.push_back(sdu_of(1 + static_cast<std::size_t>(
                               rng.uniform_int(0, 200)),
                          static_cast<std::uint8_t>(i)));
    tx.queue_sdu(sdus.back());
  }
  std::vector<std::vector<std::uint8_t>> delivered;
  for (int round = 0; round < 200 && !tx.idle(); ++round) {
    while (auto pdu = tx.next_pdu()) {
      if (!rng.bernoulli(loss)) rx.handle_pdu(*pdu);
    }
    while (auto sdu = rx.next_sdu()) delivered.push_back(std::move(*sdu));
    tx.handle_status(rx.make_status());
  }
  while (auto sdu = rx.next_sdu()) delivered.push_back(std::move(*sdu));
  ASSERT_EQ(delivered.size(), sdus.size());
  for (std::size_t i = 0; i < sdus.size(); ++i) {
    EXPECT_EQ(delivered[i], sdus[i]) << "SDU " << i;
  }
  EXPECT_TRUE(tx.idle());
}

INSTANTIATE_TEST_SUITE_P(LossRates, RlcLossSweep, ::testing::Range(0, 5));

// --------------------------------------------------------------- PDCP --

PdcpKey test_key() {
  PdcpKey k{};
  for (std::size_t i = 0; i < k.size(); ++i) {
    k[i] = static_cast<std::uint8_t>(0x30 + i);
  }
  return k;
}

TEST(Pdcp, ProtectVerifyRoundTrip) {
  PdcpTransmitter tx{test_key()};
  PdcpReceiver rx{test_key()};
  auto pdu = tx.protect(sdu_of(100, 1));
  auto wire = encode_pdcp_pdu(pdu);
  auto decoded = decode_pdcp_pdu(wire);
  ASSERT_TRUE(decoded.ok());
  auto sdu = rx.receive(*decoded);
  ASSERT_TRUE(sdu.ok());
  EXPECT_EQ(*sdu, sdu_of(100, 1));
}

TEST(Pdcp, TamperedPayloadRejected) {
  PdcpTransmitter tx{test_key()};
  PdcpReceiver rx{test_key()};
  auto pdu = tx.protect(sdu_of(50, 2));
  pdu.payload[10] ^= 0x01;
  EXPECT_FALSE(rx.receive(pdu).ok());
  EXPECT_EQ(rx.integrity_failures(), 1u);
}

TEST(Pdcp, WrongKeyRejected) {
  // The AP-scoped session key: a different AP (different KASME chain)
  // cannot forge traffic even knowing the published long-term key.
  PdcpTransmitter tx{test_key()};
  PdcpKey other = test_key();
  other[0] ^= 0xff;
  PdcpReceiver rx{other};
  EXPECT_FALSE(rx.receive(tx.protect(sdu_of(10, 3))).ok());
}

TEST(Pdcp, ReplayDiscarded) {
  PdcpTransmitter tx{test_key()};
  PdcpReceiver rx{test_key()};
  auto pdu = tx.protect(sdu_of(10, 4));
  EXPECT_TRUE(rx.receive(pdu).ok());
  EXPECT_FALSE(rx.receive(pdu).ok());  // Replay.
  EXPECT_EQ(rx.replays_discarded(), 1u);
}

TEST(Pdcp, SequenceNumbersAdvance) {
  PdcpTransmitter tx{test_key()};
  EXPECT_EQ(tx.protect({1}).sn, 0u);
  EXPECT_EQ(tx.protect({2}).sn, 1u);
  EXPECT_EQ(tx.protect({3}).sn, 2u);
}

TEST(Pdcp, CodecRejectsTruncation) {
  PdcpTransmitter tx{test_key()};
  auto wire = encode_pdcp_pdu(tx.protect(sdu_of(20, 5)));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(decode_pdcp_pdu(std::span(wire.data(), cut)).ok());
  }
}

TEST(PdcpOverRlc, FullStack) {
  // PDCP SDUs through lossy RLC: integrity and order both hold.
  PdcpTransmitter ptx{test_key()};
  PdcpReceiver prx{test_key()};
  RlcTransmitter rtx{48};
  RlcReceiver rrx;
  sim::RngStream rng{55};

  std::vector<std::vector<std::uint8_t>> inputs;
  for (int i = 0; i < 10; ++i) {
    inputs.push_back(sdu_of(120, static_cast<std::uint8_t>(i)));
    rtx.queue_sdu(encode_pdcp_pdu(ptx.protect(inputs.back())));
  }
  std::vector<std::vector<std::uint8_t>> outputs;
  for (int round = 0; round < 100 && !rtx.idle(); ++round) {
    while (auto pdu = rtx.next_pdu()) {
      if (!rng.bernoulli(0.2)) rrx.handle_pdu(*pdu);
    }
    while (auto sdu = rrx.next_sdu()) {
      auto decoded = decode_pdcp_pdu(*sdu);
      ASSERT_TRUE(decoded.ok());
      auto out = prx.receive(*decoded);
      ASSERT_TRUE(out.ok());
      outputs.push_back(std::move(*out));
    }
    rtx.handle_status(rrx.make_status());
  }
  ASSERT_EQ(outputs.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(outputs[i], inputs[i]);
  }
  EXPECT_EQ(prx.integrity_failures(), 0u);
}

}  // namespace
}  // namespace dlte::lte
