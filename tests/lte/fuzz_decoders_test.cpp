// Decoder fuzzing: every wire decoder in the system is fed random bytes
// and mutated valid frames. The property under test is total safety —
// decode either succeeds or returns an error; it never crashes, loops,
// or reads out of bounds (run under sanitizers to enforce the latter).
#include <gtest/gtest.h>

#include "epc/gtp_plane.h"
#include "lte/gtp.h"
#include "lte/nas.h"
#include "lte/pdcp.h"
#include "lte/rlc.h"
#include "lte/rrc.h"
#include "lte/s1ap.h"
#include "lte/x2ap.h"
#include "sim/random.h"
#include "transport/transport.h"

namespace dlte {
namespace {

std::vector<std::uint8_t> random_bytes(sim::RngStream& rng,
                                       std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.uniform_int(0, max_len));
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return out;
}

template <typename Decoder>
void fuzz(Decoder&& decode, std::uint64_t seed, int iterations = 3000) {
  sim::RngStream rng{seed};
  for (int i = 0; i < iterations; ++i) {
    const auto bytes = random_bytes(rng, 64);
    auto result = decode(bytes);
    (void)result;  // ok or error — both fine; crash is the failure.
  }
}

TEST(FuzzDecoders, Nas) {
  fuzz([](const auto& b) { return lte::decode_nas(b).ok(); }, 1);
}

TEST(FuzzDecoders, S1ap) {
  fuzz([](const auto& b) { return lte::decode_s1ap(b).ok(); }, 2);
}

TEST(FuzzDecoders, X2ap) {
  fuzz([](const auto& b) { return lte::decode_x2(b).ok(); }, 3);
}

TEST(FuzzDecoders, GtpU) {
  fuzz([](const auto& b) { return lte::decode_gtpu(b).ok(); }, 4);
}

TEST(FuzzDecoders, GtpC) {
  fuzz([](const auto& b) { return lte::decode_gtpc_create_req(b).ok(); }, 5);
  fuzz([](const auto& b) { return lte::decode_gtpc_create_resp(b).ok(); }, 6);
}

TEST(FuzzDecoders, Rrc) {
  fuzz([](const auto& b) { return lte::decode_rrc(b).ok(); }, 7);
}

TEST(FuzzDecoders, RlcAndPdcp) {
  fuzz([](const auto& b) { return lte::decode_rlc_pdu(b).ok(); }, 8);
  fuzz([](const auto& b) { return lte::decode_rlc_status(b).ok(); }, 9);
  fuzz([](const auto& b) { return lte::decode_pdcp_pdu(b).ok(); }, 10);
}

TEST(FuzzDecoders, TransportSegment) {
  fuzz([](const auto& b) {
    return transport::decode_segment(b).has_value();
  }, 11);
}

TEST(FuzzDecoders, GtpPlaneInner) {
  fuzz([](const auto& b) { return epc::decode_inner(b).ok(); }, 12);
}

// Mutation fuzzing: start from a valid frame, flip random bytes; decode
// must stay total AND any successful decode must re-encode without
// crashing (no "parsed garbage poisons the encoder" states).
TEST(FuzzDecoders, MutatedX2FramesStayTotal) {
  sim::RngStream rng{77};
  const auto base = lte::encode_x2(lte::X2Message{lte::DltePeerStatus{
      ApId{3}, lte::DlteMode::kCooperative, 0.5, 0.7, 12}});
  for (int i = 0; i < 3000; ++i) {
    auto mutated = base;
    const int flips = static_cast<int>(rng.uniform_int(1, 4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.uniform_int(0, mutated.size() - 1)] ^=
          static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    auto decoded = lte::decode_x2(mutated);
    if (decoded.ok()) {
      auto reencoded = lte::encode_x2(*decoded);
      EXPECT_FALSE(reencoded.empty());
    }
  }
}

TEST(FuzzDecoders, MutatedNasFramesStayTotal) {
  sim::RngStream rng{78};
  const auto base = lte::encode_nas(lte::NasMessage{lte::AttachAccept{
      Tmsi{7}, 0x0a2d0001, BearerId{5}}});
  for (int i = 0; i < 3000; ++i) {
    auto mutated = base;
    mutated[rng.uniform_int(0, mutated.size() - 1)] ^=
        static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    auto decoded = lte::decode_nas(mutated);
    if (decoded.ok()) {
      EXPECT_FALSE(lte::encode_nas(*decoded).empty());
    }
  }
}

}  // namespace
}  // namespace dlte
