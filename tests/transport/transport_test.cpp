#include "transport/transport.h"

#include <gtest/gtest.h>

namespace dlte::transport {
namespace {

// Client --- 20ms/50Mb --- router --- 20ms/50Mb --- server. The second
// client node models the AP the UE roams to.
struct Fixture {
  sim::Simulator sim;
  net::Network net{sim};
  NodeId client_node = net.add_node("client@ap1");
  NodeId client_node2 = net.add_node("client@ap2");
  NodeId router = net.add_node("router");
  NodeId server_node = net.add_node("server");
  TransportHost client{sim, net, client_node};
  TransportHost client2{sim, net, client_node2};
  TransportHost server{sim, net, server_node};

  Fixture() {
    const net::LinkConfig edge{DataRate::mbps(50.0), Duration::millis(20),
                               1 << 20};
    net.add_link(client_node, router, edge);
    net.add_link(client_node2, router, edge);
    net.add_link(router, server_node, edge);
    server.listen();
  }

  void run_for(Duration d) { sim.run_until(sim.now() + d); }
};

TEST(SegmentCodec, RoundTrip) {
  const SegmentHeader h{0xdeadbeefULL, kSegData, 123456.0, 1200};
  const auto bytes = encode_segment(h);
  const auto back = decode_segment(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->connection_id, h.connection_id);
  EXPECT_EQ(back->type, h.type);
  EXPECT_DOUBLE_EQ(back->offset, h.offset);
  EXPECT_EQ(back->length, h.length);
}

TEST(SegmentCodec, TruncatedFails) {
  const auto bytes = encode_segment(SegmentHeader{1, kSegData, 0.0, 0});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_segment(std::span(bytes.data(), cut)).has_value());
  }
}

TEST(Transport, QuicFreshHandshakeTakesOneRtt) {
  Fixture f;
  TimePoint ready_at;
  auto& conn = f.client.connect(
      f.server_node, TransportConfig{.kind = TransportKind::kQuicLike},
      [&] { ready_at = f.sim.now(); });
  f.run_for(Duration::seconds(1.0));
  ASSERT_TRUE(conn.established());
  EXPECT_EQ(conn.stats().handshake_rtts, 1);
  // RTT = 2 * (20 + 20) = 80 ms.
  EXPECT_NEAR((ready_at - TimePoint{}).to_millis(), 80.0, 2.0);
}

TEST(Transport, TcpHandshakeTakesTwoRtts) {
  Fixture f;
  TimePoint ready_at;
  auto& conn = f.client.connect(
      f.server_node, TransportConfig{.kind = TransportKind::kTcpLike},
      [&] { ready_at = f.sim.now(); });
  f.run_for(Duration::seconds(1.0));
  ASSERT_TRUE(conn.established());
  EXPECT_EQ(conn.stats().handshake_rtts, 2);
  EXPECT_NEAR((ready_at - TimePoint{}).to_millis(), 160.0, 2.0);
}

TEST(Transport, ZeroRttResumptionIsImmediate) {
  Fixture f;
  bool ready = false;
  auto& conn = f.client.connect(
      f.server_node, TransportConfig{.kind = TransportKind::kQuicLike},
      [&] { ready = true; }, /*resumed=*/true);
  EXPECT_TRUE(ready);  // Established synchronously, before any RTT.
  conn.send(5000.0);
  f.run_for(Duration::seconds(1.0));
  const auto* sc = f.server.server_connection(conn.id());
  ASSERT_NE(sc, nullptr);
  EXPECT_DOUBLE_EQ(sc->received_offset, 5000.0);
}

TEST(Transport, BulkTransferCompletes) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, TransportConfig{});
  conn.send(1e6);  // 1 MB.
  f.run_for(Duration::seconds(10.0));
  EXPECT_DOUBLE_EQ(conn.stats().bytes_acked, 1e6);
  const auto* sc = f.server.server_connection(conn.id());
  ASSERT_NE(sc, nullptr);
  EXPECT_DOUBLE_EQ(sc->received_offset, 1e6);
}

TEST(Transport, ThroughputApproachesLinkRate) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, TransportConfig{});
  conn.send(10e6);  // 10 MB over a 50 Mb/s path.
  f.run_for(Duration::seconds(6.0));
  // Ideal: 10 MB / 50 Mb/s = 1.6 s after slow start. Allow generous slack.
  EXPECT_GT(conn.stats().bytes_acked, 9.9e6);
}

TEST(Transport, DataBeforeEstablishmentIsQueued) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, TransportConfig{});
  conn.send(2000.0);  // Sent during handshake.
  EXPECT_FALSE(conn.established());
  f.run_for(Duration::seconds(1.0));
  EXPECT_DOUBLE_EQ(conn.stats().bytes_acked, 2000.0);
}

TEST(Transport, QuicMigrationContinuesStream) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, TransportConfig{});
  conn.send(20e6);  // Still in flight at migration time.
  f.run_for(Duration::seconds(0.5));
  const double before = conn.stats().bytes_acked;
  EXPECT_GT(before, 0.0);
  EXPECT_LT(before, 20e6);
  conn.rebind(f.client2);
  EXPECT_FALSE(conn.broken());
  f.run_for(Duration::seconds(20.0));
  EXPECT_DOUBLE_EQ(conn.stats().bytes_acked, 20e6);
  // Server followed the client to its new address.
  EXPECT_EQ(f.server.server_connection(conn.id())->client_node,
            f.client_node2);
}

TEST(Transport, QuicMigrationGapIsShort) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, TransportConfig{});
  conn.send(50e6);  // Enough to keep the pipe busy throughout.
  f.run_for(Duration::seconds(1.0));
  conn.rebind(f.client2);
  const TimePoint migrated = f.sim.now();
  const double acked_at_migration = conn.stats().bytes_acked;
  // Find the first ack on the new path by polling in small steps.
  double gap_ms = -1.0;
  for (int step = 0; step < 200; ++step) {
    f.run_for(Duration::millis(10));
    if (conn.stats().bytes_acked > acked_at_migration) {
      gap_ms = (conn.stats().last_ack_at - migrated).to_millis();
      break;
    }
  }
  // One RTT on the new path (80 ms) plus scheduling slack.
  ASSERT_GE(gap_ms, 0.0);
  EXPECT_LT(gap_ms, 150.0);
}

TEST(Transport, TcpBreaksOnRebind) {
  Fixture f;
  auto& conn = f.client.connect(
      f.server_node, TransportConfig{.kind = TransportKind::kTcpLike});
  conn.send(2e6);
  f.run_for(Duration::seconds(1.0));
  conn.rebind(f.client2);
  EXPECT_TRUE(conn.broken());
  const double stalled_at = conn.stats().bytes_acked;
  f.run_for(Duration::seconds(2.0));
  // No further progress on a broken connection.
  EXPECT_NEAR(conn.stats().bytes_acked, stalled_at, 1500.0);
}

TEST(Transport, TcpAppLevelReconnectResumes) {
  Fixture f;
  auto& c1 = f.client.connect(
      f.server_node, TransportConfig{.kind = TransportKind::kTcpLike});
  c1.send(2e6);
  f.run_for(Duration::seconds(1.0));
  c1.rebind(f.client2);
  ASSERT_TRUE(c1.broken());
  // Application resumes the remaining bytes over a new connection.
  const double remaining = 2e6 - c1.stats().bytes_acked;
  auto& c2 = f.client2.connect(
      f.server_node, TransportConfig{.kind = TransportKind::kTcpLike});
  c2.send(remaining);
  f.run_for(Duration::seconds(10.0));
  EXPECT_DOUBLE_EQ(c1.stats().bytes_acked + c2.stats().bytes_acked, 2e6);
}

TEST(Transport, LossTriggersRetransmissionAndRecovers) {
  // Small queue to force drops during slow start.
  sim::Simulator sim;
  net::Network net{sim};
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_link(a, b, net::LinkConfig{DataRate::mbps(5.0),
                                     Duration::millis(10), 8000});
  TransportHost client{sim, net, a};
  TransportHost server{sim, net, b};
  server.listen();
  auto& conn = client.connect(b, TransportConfig{});
  conn.send(3e6);
  sim.run_until(sim.now() + Duration::seconds(30.0));
  EXPECT_GT(conn.stats().retransmissions, 0);
  EXPECT_DOUBLE_EQ(conn.stats().bytes_acked, 3e6);
}

TEST(Transport, ServerTracksMultipleConnections) {
  Fixture f;
  auto& c1 = f.client.connect(f.server_node, TransportConfig{});
  auto& c2 = f.client2.connect(f.server_node, TransportConfig{});
  c1.send(1000.0);
  c2.send(2000.0);
  f.run_for(Duration::seconds(1.0));
  EXPECT_NE(c1.id(), c2.id());
  EXPECT_DOUBLE_EQ(f.server.server_connection(c1.id())->received_offset,
                   1000.0);
  EXPECT_DOUBLE_EQ(f.server.server_connection(c2.id())->received_offset,
                   2000.0);
}

TEST(Transport, OnDataCallbackObservesProgress) {
  Fixture f;
  double last_seen = 0.0;
  f.server.listen([&](ServerConnection& sc) {
    sc.on_data = [&](double offset) { last_seen = offset; };
  });
  auto& conn = f.client.connect(f.server_node, TransportConfig{});
  conn.send(10000.0);
  f.run_for(Duration::seconds(2.0));
  EXPECT_DOUBLE_EQ(last_seen, 10000.0);
}


TEST(Transport, ZeroRttDisabledFallsBackToHandshake) {
  Fixture f;
  transport::TransportConfig cfg;
  cfg.zero_rtt_resumption = false;
  bool ready = false;
  auto& conn = f.client.connect(f.server_node, cfg, [&] { ready = true; },
                                /*resumed=*/true);
  // Resumption ticket ignored: the connection still handshakes (1 RTT).
  EXPECT_FALSE(ready);
  EXPECT_FALSE(conn.established());
  f.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(conn.established());
  EXPECT_EQ(conn.stats().handshake_rtts, 1);
}

TEST(Transport, TcpResumedStillPaysTwoRtts) {
  // "resumed" is a QUIC concept; the TCP-like transport must ignore it.
  Fixture f;
  auto& conn = f.client.connect(
      f.server_node, transport::TransportConfig{
                         .kind = transport::TransportKind::kTcpLike},
      nullptr, /*resumed=*/true);
  f.run_for(Duration::seconds(1.0));
  EXPECT_TRUE(conn.established());
  EXPECT_EQ(conn.stats().handshake_rtts, 2);
}

TEST(Transport, SendOnBrokenConnectionIsInert) {
  Fixture f;
  auto& conn = f.client.connect(
      f.server_node, transport::TransportConfig{
                         .kind = transport::TransportKind::kTcpLike});
  conn.send(1000.0);
  f.run_for(Duration::seconds(1.0));
  conn.rebind(f.client2);
  ASSERT_TRUE(conn.broken());
  const double acked = conn.stats().bytes_acked;
  conn.send(50000.0);  // Application bug: writing to a dead socket.
  f.run_for(Duration::seconds(2.0));
  EXPECT_DOUBLE_EQ(conn.stats().bytes_acked, acked);
}

TEST(Transport, UnackedBytesTracksQueue) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, transport::TransportConfig{});
  conn.send(5'000.0);
  EXPECT_DOUBLE_EQ(conn.unacked_bytes(), 5'000.0);
  f.run_for(Duration::seconds(1.0));
  EXPECT_DOUBLE_EQ(conn.unacked_bytes(), 0.0);
}

}  // namespace
}  // namespace dlte::transport
