// Flow trains must be a faithful compression of the per-packet epochs:
// same delivered bytes, same completion time, orders of magnitude fewer
// events.
#include "transport/flow_train.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/simulator.h"

namespace dlte::transport {
namespace {

struct FlowRun {
  FlowTrainStats stats;
  TimePoint completed_at;
};

FlowRun run_flow(FlowTrainConfig config) {
  sim::Simulator sim;
  FlowTrain flow{sim, config};
  flow.start();
  sim.run_all();
  return FlowRun{flow.stats(), flow.stats().completed_at};
}

TEST(FlowTrainTest, ZeroByteFlowCompletesImmediately) {
  sim::Simulator sim;
  FlowTrainConfig config;
  config.total_bytes = 0;
  bool completed = false;
  FlowTrain flow{sim, config, nullptr,
                 [&](TimePoint) { completed = true; }};
  flow.start();
  EXPECT_TRUE(completed);
  EXPECT_EQ(flow.stats().events_scheduled, 0u);
  EXPECT_EQ(flow.stats().bytes_delivered, 0u);
}

TEST(FlowTrainTest, CapPacketsTracksBandwidthDelayProduct) {
  sim::Simulator sim;
  FlowTrainConfig config;
  config.mss_bytes = 1200;
  config.rtt = Duration::millis(20);
  config.bottleneck = DataRate::mbps(48.0);
  // 48 Mbps * 20 ms / 8 = 120000 bytes per RTT = 100 packets.
  FlowTrain flow{sim, config};
  EXPECT_EQ(flow.cap_packets(), 100);
}

TEST(FlowTrainTest, TrainMatchesPerPacketOnBytesAndCompletion) {
  // Sweep sizes that end mid-window, exactly on a window, below the
  // initial window, and deep into steady state.
  const std::vector<std::uint64_t> sizes{
      1, 1200, 11'999, 12'000, 50'000, 600'000, 2'500'000, 25'000'000};
  for (const std::uint64_t total : sizes) {
    FlowTrainConfig train_cfg;
    train_cfg.total_bytes = total;
    FlowTrainConfig packet_cfg = train_cfg;
    packet_cfg.per_packet = true;

    const FlowRun train = run_flow(train_cfg);
    const FlowRun packets = run_flow(packet_cfg);

    EXPECT_TRUE(train.stats.completed) << "total=" << total;
    EXPECT_TRUE(packets.stats.completed) << "total=" << total;
    EXPECT_EQ(train.stats.bytes_delivered, total) << "total=" << total;
    EXPECT_EQ(packets.stats.bytes_delivered, total) << "total=" << total;
    EXPECT_EQ(train.completed_at.ns(), packets.completed_at.ns())
        << "total=" << total;
    EXPECT_EQ(train.stats.rate_changes, packets.stats.rate_changes)
        << "total=" << total;
    EXPECT_LE(train.stats.events_scheduled, packets.stats.events_scheduled)
        << "total=" << total;
  }
}

TEST(FlowTrainTest, BulkFlowCostsRateChangesNotPackets) {
  FlowTrainConfig config;
  config.total_bytes = 25'000'000;  // ~20.8k packets at MSS 1200.
  const FlowRun train = run_flow(config);
  // Slow-start from 10 to the 52-packet cap is a handful of epochs, then
  // one steady-state completion event.
  EXPECT_TRUE(train.stats.completed);
  EXPECT_LT(train.stats.events_scheduled, 12u);
  EXPECT_EQ(train.stats.bytes_delivered, config.total_bytes);

  FlowTrainConfig per_packet = config;
  per_packet.per_packet = true;
  const FlowRun packets = run_flow(per_packet);
  EXPECT_GT(packets.stats.events_scheduled, 20'000u);
  EXPECT_EQ(packets.completed_at.ns(), train.completed_at.ns());
}

TEST(FlowTrainTest, SlowStartDoublesOncePerRtt) {
  sim::Simulator sim;
  FlowTrainConfig config;
  config.mss_bytes = 1000;
  config.initial_cwnd_packets = 2;
  config.rtt = Duration::millis(10);
  config.bottleneck = DataRate::mbps(800.0);  // cap 1000 pkts: no clamp.
  config.total_bytes = 14'000;                // 2+4+8 = 14 packets.
  std::vector<std::uint64_t> deliveries;
  FlowTrain flow{sim, config,
                 [&](std::uint64_t bytes) { deliveries.push_back(bytes); }};
  flow.start();
  sim.run_all();
  EXPECT_EQ(deliveries,
            (std::vector<std::uint64_t>{2000, 4000, 8000}));
  EXPECT_EQ(flow.stats().rate_changes, 2u);
  EXPECT_EQ(flow.stats().completed_at.ns(),
            3 * Duration::millis(10).ns());
}

TEST(FlowTrainTest, SteadyStateCollapsesToOneEvent) {
  sim::Simulator sim;
  FlowTrainConfig config;
  config.mss_bytes = 1000;
  config.initial_cwnd_packets = 4;
  config.rtt = Duration::millis(10);
  config.bottleneck = DataRate::mbps(3.2);  // cap = 4 packets: saturated.
  config.total_bytes = 400'000;             // 100 epochs of 4 packets.
  FlowTrain flow{sim, config};
  flow.start();
  sim.run_all();
  EXPECT_TRUE(flow.stats().completed);
  // Already at cap: the whole flow is one analytic completion event.
  EXPECT_EQ(flow.stats().events_scheduled, 1u);
  EXPECT_EQ(flow.stats().completed_at.ns(),
            100 * Duration::millis(10).ns());
}

}  // namespace
}  // namespace dlte::transport
