#include "coex/shared_channel.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "phy/wifi_phy.h"

namespace dlte::coex {
namespace {

TransmitterSite ap_site(double ap_x, double client_x) {
  TransmitterSite s;
  s.tx_pos = Position{ap_x, 0.0};
  s.rx_pos = Position{client_x, 0.0};
  s.tx_profile = phy::DeviceProfiles::wifi_ap_outdoor();
  s.rx_profile = phy::DeviceProfiles::wifi_client();
  return s;
}

// Two WiFi BSSs close enough to sense each other, plus one dLTE AP in the
// middle — the benign (non-hidden) coexistence cell.
struct DenseCell {
  SharedChannel ch{SharedChannelConfig{}};
  int a{-1}, b{-1}, l{-1};

  explicit DenseCell(LteCoexPolicy policy, double lte_cca = -82.0,
                     bool with_lte = true) {
    WifiStationConfig wa;
    wa.site = ap_site(0.0, 40.0);
    WifiStationConfig wb;
    wb.site = ap_site(100.0, 60.0);
    a = ch.add_wifi_station(wa);
    b = ch.add_wifi_station(wb);
    if (with_lte) {
      LteTransmitterConfig lc;
      lc.site = ap_site(50.0, 80.0);
      lc.policy = policy;
      lc.cca_dbm = lte_cca;
      l = ch.add_lte_transmitter(lc);
    }
  }
};

// 1800 m between the WiFi APs: below the -82 dBm CCA at the 2.6-exponent
// town profile, so the pair is mutually hidden; the dLTE AP at the
// midpoint (900 m from each) hears both at ≈ -75 dBm.
struct HiddenCell {
  SharedChannel ch{SharedChannelConfig{}};
  int a{-1}, b{-1}, l{-1};

  explicit HiddenCell(LteCoexPolicy policy, double lte_cca = -82.0) {
    WifiStationConfig wa;
    wa.site = ap_site(0.0, 600.0);
    WifiStationConfig wb;
    wb.site = ap_site(1800.0, 1200.0);
    a = ch.add_wifi_station(wa);
    b = ch.add_wifi_station(wb);
    LteTransmitterConfig lc;
    lc.site = ap_site(900.0, 940.0);
    lc.policy = policy;
    lc.cca_dbm = lte_cca;
    l = ch.add_lte_transmitter(lc);
  }
};

// --- Medium model ---------------------------------------------------------

TEST(SharedChannel, SensingFollowsGeometry) {
  HiddenCell cell{LteCoexPolicy::kLbt};
  // The distant WiFi pair is mutually hidden…
  EXPECT_FALSE(cell.ch.senses(cell.a, cell.b));
  EXPECT_FALSE(cell.ch.senses(cell.b, cell.a));
  // …but everyone hears the midpoint dLTE AP and (at -82 dBm energy
  // detect) it hears them.
  EXPECT_TRUE(cell.ch.senses(cell.a, cell.l));
  EXPECT_TRUE(cell.ch.senses(cell.b, cell.l));
  EXPECT_TRUE(cell.ch.senses(cell.l, cell.a));
  EXPECT_TRUE(cell.ch.senses(cell.l, cell.b));
}

TEST(SharedChannel, LaaDefaultCcaIsDeafWhereWifiStillHears) {
  // Same geometry, LAA's -72 dBm energy-detect default: the dLTE AP no
  // longer hears the WiFi APs 900 m away (≈ -75 dBm), although a WiFi
  // radio at the same spot would. This asymmetry is why the LAA
  // threshold debate existed.
  HiddenCell deaf{LteCoexPolicy::kLbt, -72.0};
  EXPECT_FALSE(deaf.ch.senses(deaf.l, deaf.a));
  EXPECT_FALSE(deaf.ch.senses(deaf.l, deaf.b));
  EXPECT_TRUE(deaf.ch.senses(deaf.a, deaf.l));
}

TEST(SharedChannel, PowerAtFallsWithDistance) {
  DenseCell cell{LteCoexPolicy::kLbt};
  const double near = cell.ch.power_at(cell.a, Position{50.0, 0.0}).value();
  const double far = cell.ch.power_at(cell.a, Position{500.0, 0.0}).value();
  EXPECT_GT(near, far);
  // 2.6 exponent: each distance decade costs 26 dB.
  const double d1 = cell.ch.power_at(cell.a, Position{100.0, 0.0}).value();
  const double d2 = cell.ch.power_at(cell.a, Position{1000.0, 0.0}).value();
  EXPECT_NEAR(d1 - d2, 26.0, 1e-6);
}

TEST(SharedChannel, WifiOnlyPairSharesCleanly) {
  DenseCell cell{LteCoexPolicy::kLbt, -82.0, /*with_lte=*/false};
  cell.ch.run(Duration::seconds(1.0));
  // Mutually-sensing saturated stations: high utilisation, near-equal
  // split, perfect fairness within tolerance.
  EXPECT_GT(cell.ch.airtime_share(Waveform::kWifi), 0.85);
  EXPECT_DOUBLE_EQ(cell.ch.airtime_share(Waveform::kDlte), 0.0);
  EXPECT_GT(jain_fairness(cell.ch.airtime_fractions()), 0.95);
}

TEST(SharedChannel, HiddenWifiPairCollidesAtTheirReceivers) {
  SharedChannel ch{SharedChannelConfig{}};
  WifiStationConfig wa;
  wa.site = ap_site(0.0, 600.0);
  WifiStationConfig wb;
  wb.site = ap_site(1800.0, 1200.0);
  const int a = ch.add_wifi_station(wa);
  const int b = ch.add_wifi_station(wb);
  ch.run(Duration::seconds(1.0));
  // Neither defers to the other, both clients sit mid-field: overlap is
  // frequent and the capture margin is not met.
  EXPECT_GT(ch.stats(a).collisions + ch.stats(b).collisions, 100);
  EXPECT_GT(ch.stats(a).dropped_frames + ch.stats(b).dropped_frames, 0);
}

// --- dLTE access policies -------------------------------------------------

TEST(SharedChannel, ObliviousLteStarvesWifi) {
  DenseCell cell{LteCoexPolicy::kOblivious};
  cell.ch.run(Duration::seconds(1.0));
  // The scheduled waveform never yields; WiFi senses it and defers
  // forever. This is the LTE-U horror story.
  EXPECT_GT(cell.ch.airtime_share(Waveform::kDlte), 0.99);
  EXPECT_EQ(cell.ch.stats(cell.a).attempts, 0);
  EXPECT_EQ(cell.ch.stats(cell.b).attempts, 0);
  EXPECT_GT(cell.ch.stats(cell.a).defer_slots, 0);
}

TEST(SharedChannel, LbtDefersAndLetsWifiThrough) {
  DenseCell cell{LteCoexPolicy::kLbt};
  cell.ch.run(Duration::seconds(1.0));
  EXPECT_GT(cell.ch.stats(cell.l).defer_slots, 0);
  EXPECT_GT(cell.ch.stats(cell.a).delivered_frames, 0);
  EXPECT_GT(cell.ch.stats(cell.b).delivered_frames, 0);
  EXPECT_GT(cell.ch.airtime_share(Waveform::kWifi), 0.05);
  // LBT still gets real airtime — it is sharing, not abstaining.
  EXPECT_GT(cell.ch.airtime_share(Waveform::kDlte), 0.2);
}

TEST(SharedChannel, DutyCycleHonoursConfiguredSplit) {
  // 10 ms on / 30 ms off, alone on the channel: airtime ≈ 25%.
  SharedChannel ch{SharedChannelConfig{}};
  LteTransmitterConfig lc;
  lc.site = ap_site(0.0, 40.0);
  lc.policy = LteCoexPolicy::kDutyCycle;
  lc.on_period = Duration::millis(10);
  lc.off_period = Duration::millis(30);
  const int l = ch.add_lte_transmitter(lc);
  ch.run(Duration::seconds(1.0));
  const double share = static_cast<double>(ch.stats(l).tx_slots) / 111111.0;
  EXPECT_NEAR(share, 0.25, 0.03);
  EXPECT_DOUBLE_EQ(ch.duty_on_fraction(l), 0.25);
}

TEST(SharedChannel, AdaptiveDutyCycleYieldsToBusyWifi) {
  // Saturated WiFi next door keeps the off-window occupied, so adaptive
  // CSAT shrinks toward its floor; blind CSAT never moves.
  auto on_fraction_after = [](bool adaptive) {
    SharedChannel ch{SharedChannelConfig{}};
    WifiStationConfig w;
    w.site = ap_site(0.0, 40.0);
    ch.add_wifi_station(w);
    LteTransmitterConfig lc;
    lc.site = ap_site(60.0, 100.0);
    lc.policy = LteCoexPolicy::kDutyCycle;
    lc.adaptive = adaptive;
    lc.min_on_fraction = 0.1;
    const int l = ch.add_lte_transmitter(lc);
    ch.run(Duration::seconds(1.0));
    return ch.duty_on_fraction(l);
  };
  EXPECT_DOUBLE_EQ(on_fraction_after(false), 0.5);
  EXPECT_LT(on_fraction_after(true), 0.2);
}

TEST(SharedChannel, AdaptiveDutyCycleReclaimsIdleChannel) {
  // No WiFi at all: the off-window measures zero occupancy and adaptive
  // CSAT grows to its ceiling.
  SharedChannel ch{SharedChannelConfig{}};
  LteTransmitterConfig lc;
  lc.site = ap_site(0.0, 40.0);
  lc.policy = LteCoexPolicy::kDutyCycle;
  lc.adaptive = true;
  lc.max_on_fraction = 0.8;
  const int l = ch.add_lte_transmitter(lc);
  ch.run(Duration::seconds(0.5));
  EXPECT_NEAR(ch.duty_on_fraction(l), 0.8, 0.02);
}

// --- The acceptance criterion: hidden-terminal stress ---------------------

TEST(SharedChannel, HiddenTerminalLbtBeatsObliviousForWifi) {
  // Equal density, same geometry, same seeds: LBT must leave WiFi
  // strictly more airtime than the oblivious scheduled waveform.
  HiddenCell oblivious{LteCoexPolicy::kOblivious};
  oblivious.ch.run(Duration::seconds(2.0));
  HiddenCell lbt{LteCoexPolicy::kLbt};
  lbt.ch.run(Duration::seconds(2.0));
  const double wifi_oblivious =
      oblivious.ch.airtime_share(Waveform::kWifi);
  const double wifi_lbt = lbt.ch.airtime_share(Waveform::kWifi);
  EXPECT_GT(wifi_lbt, wifi_oblivious);
  EXPECT_GT(lbt.ch.stats(lbt.a).delivered_frames +
                lbt.ch.stats(lbt.b).delivered_frames,
            0);
  // And fairness across the three transmitters improves.
  EXPECT_GT(jain_fairness(lbt.ch.airtime_fractions()),
            jain_fairness(oblivious.ch.airtime_fractions()));
}

// --- Determinism ----------------------------------------------------------

TEST(SharedChannel, DeterministicForSameSeed) {
  auto fingerprint = [] {
    DenseCell cell{LteCoexPolicy::kLbt};
    cell.ch.run(Duration::seconds(0.5));
    std::vector<double> out = cell.ch.airtime_fractions();
    for (int i = 0; i < cell.ch.transmitter_count(); ++i) {
      out.push_back(static_cast<double>(cell.ch.stats(i).delivered_frames));
      out.push_back(static_cast<double>(cell.ch.stats(i).collisions));
      out.push_back(cell.ch.stats(i).access_latency_ms.p95());
    }
    return out;
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

TEST(SharedChannel, AddingTransmitterDoesNotPerturbOthersStreams) {
  // Per-transmitter streams are derived by (component, index), so a third
  // transmitter placed out of range changes nothing about the first two.
  auto delivered_by_first_two = [](bool extra) {
    SharedChannel ch{SharedChannelConfig{}};
    WifiStationConfig wa;
    wa.site = ap_site(0.0, 40.0);
    WifiStationConfig wb;
    wb.site = ap_site(100.0, 60.0);
    const int a = ch.add_wifi_station(wa);
    const int b = ch.add_wifi_station(wb);
    if (extra) {
      // 50 km away: neither sensed nor interfering.
      WifiStationConfig far;
      far.site = ap_site(50'000.0, 50'040.0);
      ch.add_wifi_station(far);
    }
    ch.run(Duration::seconds(0.5));
    return std::pair{ch.stats(a).delivered_frames,
                     ch.stats(b).delivered_frames};
  };
  EXPECT_EQ(delivered_by_first_two(false), delivered_by_first_two(true));
}

// --- Integration: cell MAC coupling and metrics ---------------------------

TEST(SharedChannel, AttachCellAppliesWonAirtimeAsPrbShare) {
  mac::LteCellMac cell{mac::CellMacConfig{}};
  DenseCell dense{LteCoexPolicy::kDutyCycle};
  dense.ch.attach_cell(dense.l, &cell);
  dense.ch.run(Duration::seconds(1.0));
  const double won =
      static_cast<double>(dense.ch.stats(dense.l).tx_slots) / 111111.0;
  EXPECT_NEAR(cell.prb_share(), won, 1e-9);
  EXPECT_LT(cell.prb_share(), 0.6);  // Duty-cycled, not the full carrier.
  EXPECT_GT(cell.prb_share(), 0.0);
}

TEST(SharedChannel, MetricsExportPerWaveformCountersAndGauges) {
  obs::MetricsRegistry reg;
  DenseCell cell{LteCoexPolicy::kLbt};
  cell.ch.set_metrics(&reg, "c11.");
  cell.ch.run(Duration::seconds(0.5));
  EXPECT_GT(reg.counter("c11.coex.wifi.attempts").value(), 0u);
  EXPECT_GT(reg.counter("c11.coex.dlte.attempts").value(), 0u);
  EXPECT_GT(reg.counter("c11.coex.dlte.defer_slots").value(), 0u);
  EXPECT_GT(reg.histogram("c11.coex.wifi.access_ms").count(), 0u);
  const double wifi_share = reg.gauge("c11.coex.airtime.wifi").value();
  EXPECT_NEAR(wifi_share, cell.ch.airtime_share(Waveform::kWifi), 1e-12);
  const double fairness = reg.gauge("c11.coex.fairness").value();
  EXPECT_GT(fairness, 0.0);
  EXPECT_LE(fairness, 1.0);
}

}  // namespace
}  // namespace dlte::coex
