#include <gtest/gtest.h>

#include "workload/ott_service.h"
#include "workload/sources.h"

namespace dlte::workload {
namespace {

struct Fixture {
  sim::Simulator sim;
  net::Network net{sim};
  NodeId client_node = net.add_node("client");
  NodeId server_node = net.add_node("server");
  transport::TransportHost client{sim, net, client_node};
  OttService ott{sim, net, server_node};

  Fixture() {
    net.add_link(client_node, server_node,
                 net::LinkConfig{DataRate::mbps(20.0), Duration::millis(15)});
  }

  void run_for(double s) { sim.run_until(sim.now() + Duration::seconds(s)); }
};

TEST(CbrSource, OffersConfiguredRate) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, transport::TransportConfig{});
  CbrSource cbr{f.sim, conn, DataRate::kbps(64.0)};
  cbr.start();
  f.run_for(10.0);
  // 64 kb/s for 10 s = 80 kB offered (one tick of slack).
  EXPECT_NEAR(cbr.bytes_offered(), 80'000.0, 500.0);
  EXPECT_NEAR(f.ott.delivered_bytes(conn.id()), 80'000.0, 2'000.0);
}

TEST(CbrSource, StopHalts) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, transport::TransportConfig{});
  CbrSource cbr{f.sim, conn, DataRate::kbps(64.0)};
  cbr.start();
  f.run_for(1.0);
  cbr.stop();
  const double at_stop = cbr.bytes_offered();
  f.run_for(2.0);
  EXPECT_EQ(cbr.bytes_offered(), at_stop);
}

TEST(WebSource, IssuesRequestsAtRate) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, transport::TransportConfig{});
  WebSource web{f.sim, conn, 2.0, 50'000.0, sim::RngStream{11}};
  web.start();
  f.run_for(30.0);
  // ~60 requests of ~50 kB each.
  EXPECT_NEAR(web.requests_issued(), 60, 25);
  EXPECT_GT(web.bytes_offered(), 1e6);
}

TEST(BulkSource, CompletesAndReports) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, transport::TransportConfig{});
  BulkSource bulk{conn, 500'000.0};
  EXPECT_FALSE(bulk.complete());
  bulk.start();
  f.run_for(10.0);
  EXPECT_TRUE(bulk.complete());
  EXPECT_DOUBLE_EQ(f.ott.delivered_bytes(conn.id()), 500'000.0);
}

TEST(OttService, ProgressTimelineMonotone) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, transport::TransportConfig{});
  conn.send(200'000.0);
  f.run_for(5.0);
  const auto& samples = f.ott.progress(conn.id());
  ASSERT_GT(samples.size(), 10u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].bytes, samples[i - 1].bytes);
    EXPECT_GE(samples[i].when, samples[i - 1].when);
  }
}

TEST(OttService, LongestStallDetectsGap) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, transport::TransportConfig{});
  CbrSource cbr{f.sim, conn, DataRate::kbps(256.0)};
  cbr.start();
  f.run_for(2.0);
  // Pause the source for 1 s: that's the stall.
  cbr.stop();
  f.run_for(1.0);
  CbrSource cbr2{f.sim, conn, DataRate::kbps(256.0)};
  cbr2.start();
  f.run_for(2.0);
  const auto stall = f.ott.longest_stall(
      conn.id(), TimePoint::from_ns(0) + Duration::seconds(1.0),
      TimePoint::from_ns(0) + Duration::seconds(4.5));
  EXPECT_GT(stall.to_seconds(), 0.8);
  EXPECT_LT(stall.to_seconds(), 1.4);
}

TEST(OttService, FirstProgressAfter) {
  Fixture f;
  auto& conn = f.client.connect(f.server_node, transport::TransportConfig{});
  f.sim.schedule(Duration::seconds(2.0), [&] { conn.send(10'000.0); });
  f.run_for(5.0);
  const auto t = f.ott.first_progress_after(
      conn.id(), TimePoint::from_ns(0) + Duration::seconds(1.0));
  EXPECT_GT(t.to_seconds(), 2.0);
  EXPECT_LT(t.to_seconds(), 2.2);
}

TEST(OttService, UnknownConnectionIsEmpty) {
  Fixture f;
  EXPECT_EQ(f.ott.delivered_bytes(ConnectionId{999}), 0.0);
  EXPECT_TRUE(f.ott.progress(ConnectionId{999}).empty());
}

}  // namespace
}  // namespace dlte::workload
