#include "workload/cohort.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace dlte::workload {
namespace {

CohortConfig small_config() {
  CohortConfig config;
  config.ues = 100;
  config.attach_batches = 10;
  config.attach_window = Duration::seconds(1.0);
  config.flow_bytes_per_ue = 100'000;
  return config;
}

TEST(UeCohortTest, AttachesEveryUeWithinTheWindow) {
  sim::Simulator sim;
  UeCohort cohort{sim, small_config(), sim::RngStream::derive(1, "cohort")};
  cohort.start();
  sim.run_until(TimePoint{} + Duration::seconds(1.0));
  EXPECT_EQ(cohort.ues_attached(), 100);
}

TEST(UeCohortTest, DeliversConfiguredBytesPerUe) {
  sim::Simulator sim;
  const CohortConfig config = small_config();
  UeCohort cohort{sim, config, sim::RngStream::derive(1, "cohort")};
  cohort.start();
  sim.run_all();
  EXPECT_TRUE(cohort.all_complete());
  EXPECT_EQ(cohort.bytes_delivered(),
            static_cast<std::uint64_t>(config.ues) *
                config.flow_bytes_per_ue);
  // One aggregate flow per batch, not one per UE.
  EXPECT_EQ(cohort.flows_completed(), config.attach_batches);
}

TEST(UeCohortTest, HooksObserveAttachesAndBytes) {
  sim::Simulator sim;
  obs::MetricsRegistry registry;
  UeCohort::Hooks hooks;
  hooks.attached = &registry.counter("attached");
  hooks.bytes_delivered = &registry.counter("bytes");
  hooks.flows_completed = &registry.counter("flows");
  hooks.attach_ms = &registry.histogram("attach.ms");
  const CohortConfig config = small_config();
  UeCohort cohort{sim, config, sim::RngStream::derive(1, "cohort"), hooks};
  cohort.start();
  sim.run_all();
  EXPECT_EQ(registry.counter("attached").value(), 100u);
  EXPECT_EQ(registry.counter("bytes").value(), 100u * 100'000u);
  EXPECT_EQ(registry.counter("flows").value(), 10u);
  // One latency sample per UE, all inside base..base+jitter.
  EXPECT_EQ(registry.histogram("attach.ms").count(), 100u);
}

TEST(UeCohortTest, EventCountIsBatchesNotUes) {
  sim::Simulator sim;
  CohortConfig config = small_config();
  config.ues = 1000;  // 10x the UEs...
  UeCohort cohort{sim, config, sim::RngStream::derive(1, "cohort")};
  cohort.start();
  sim.run_all();
  EXPECT_EQ(cohort.ues_attached(), 1000);
  // ...but the same number of batches, and each aggregate flow is a
  // handful of epoch events: well under one event per UE.
  EXPECT_LT(sim.events_executed(), 100u);
}

TEST(UeCohortTest, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    UeCohort cohort{sim, small_config(),
                    sim::RngStream::derive(seed, "cohort")};
    cohort.start();
    sim.run_all();
    return sim.events_executed();
  };
  EXPECT_EQ(run(7), run(7));
  // Different seed still attaches everything; schedule may differ.
  EXPECT_GT(run(8), 0u);
}

TEST(UeCohortTest, ZeroFlowBytesAttachOnly) {
  sim::Simulator sim;
  CohortConfig config = small_config();
  config.flow_bytes_per_ue = 0;
  UeCohort cohort{sim, config, sim::RngStream::derive(1, "cohort")};
  cohort.start();
  sim.run_all();
  EXPECT_EQ(cohort.ues_attached(), 100);
  EXPECT_EQ(cohort.bytes_delivered(), 0u);
  EXPECT_TRUE(cohort.all_complete());
}

}  // namespace
}  // namespace dlte::workload
