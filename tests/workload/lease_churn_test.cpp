// LeaseChurnStorm client-side protocol behaviour, driven against a
// hand-rolled registry stub: the storm must re-apply after a partial
// grant fill (an outage flipping mid-batch fills only part of the
// quota), not just after a bounced batch or a reported lapse.
#include "workload/lease_churn.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "sim/simulator.h"

namespace dlte::workload {
namespace {

struct SentMessage {
  std::uint16_t kind{0};
  std::vector<std::uint8_t> payload;
};

struct Fixture {
  sim::Simulator sim;
  std::vector<SentMessage> sent;
  ChurnConfig config;

  Fixture() {
    config.block = 3;
    config.leases = 10;
    config.location = Position{1'000.0, 1'000.0};
    config.regrant_backoff = Duration::seconds(4.0);
    // Long intervals: the test drives grant traffic only.
    config.heartbeat_interval = Duration::seconds(1'000.0);
    config.query_interval = Duration::seconds(1'000.0);
  }

  LeaseChurnStorm make_storm() {
    return LeaseChurnStorm{
        sim, config,
        [this](std::uint16_t kind, std::vector<std::uint8_t> payload) {
          sent.push_back({kind, std::move(payload)});
        },
        LeaseChurnStorm::Hooks{}};
  }

  // Captured grant applications only (heartbeat/query ticks also send).
  std::vector<const SentMessage*> grant_batches() const {
    std::vector<const SentMessage*> out;
    for (const SentMessage& m : sent) {
      if (m.kind == kLeaseGrantBatch) out.push_back(&m);
    }
    return out;
  }

  // Requested lease count of a captured grant batch.
  static std::uint32_t batch_count(const SentMessage& m) {
    ByteReader r{m.payload};
    (void)r.u32();  // block
    return *r.u32();
  }

  static std::vector<std::uint8_t> grant_reply(std::uint32_t block,
                                               std::uint8_t ok,
                                               std::uint64_t first_id,
                                               std::uint32_t count) {
    ByteWriter w;
    w.u32(block);
    w.u8(ok);
    w.u32(count);
    for (std::uint32_t i = 0; i < count; ++i) w.u64(first_id + i);
    return w.take();
  }

  void run_for(double s) { sim.run_until(sim.now() + Duration::seconds(s)); }
};

TEST(LeaseChurnStorm, PartialGrantFillReappliesAfterBackoff) {
  Fixture f;
  LeaseChurnStorm storm = f.make_storm();
  storm.start();
  ASSERT_EQ(f.grant_batches().size(), 1u);
  EXPECT_EQ(Fixture::batch_count(*f.grant_batches()[0]), 10u);

  // Successful-but-short reply: only 6 of 10 landed.
  storm.on_message(kLeaseGrantReply, Fixture::grant_reply(3, 1, 100, 6));
  EXPECT_EQ(storm.leases_held(), 6u);

  // Before the backoff elapses: no re-apply yet.
  f.run_for(3.0);
  EXPECT_EQ(f.grant_batches().size(), 1u);
  // After the backoff: a fresh application for exactly the shortfall.
  f.run_for(2.0);
  ASSERT_EQ(f.grant_batches().size(), 2u);
  EXPECT_EQ(Fixture::batch_count(*f.grant_batches()[1]), 4u);

  // A full fill of the shortfall ends the retry loop.
  storm.on_message(kLeaseGrantReply, Fixture::grant_reply(3, 1, 200, 4));
  EXPECT_EQ(storm.leases_held(), 10u);
  f.run_for(10.0);
  EXPECT_EQ(f.grant_batches().size(), 2u);
}

TEST(LeaseChurnStorm, BouncedBatchStillRetries) {
  Fixture f;
  LeaseChurnStorm storm = f.make_storm();
  storm.start();
  ASSERT_EQ(f.grant_batches().size(), 1u);
  storm.on_message(kLeaseGrantReply, Fixture::grant_reply(3, 0, 0, 0));
  EXPECT_EQ(storm.grant_rejections(), 1u);
  f.run_for(5.0);
  ASSERT_EQ(f.grant_batches().size(), 2u);
  EXPECT_EQ(Fixture::batch_count(*f.grant_batches()[1]), 10u);
}

}  // namespace
}  // namespace dlte::workload
