#include <gtest/gtest.h>

#include "ue/mobility.h"
#include "ue/usim.h"

namespace dlte::ue {
namespace {

SimProfile open_profile() {
  crypto::Key128 k{};
  k[0] = 0x46;
  crypto::Block128 op{};
  op[0] = 0xcd;
  return SimProfile{Imsi{100}, k, crypto::derive_opc(k, op), true, "dlte"};
}

SimProfile carrier_profile() {
  crypto::Key128 k{};
  k[0] = 0x99;
  crypto::Block128 op{};
  return SimProfile{Imsi{200}, k, crypto::derive_opc(k, op), false,
                    "carrier"};
}

TEST(EsimStore, HoldsMultipleIdentities) {
  // §4.2: an open dLTE SIM alongside a secured carrier SIM.
  EsimStore store;
  store.add_profile(open_profile());
  store.add_profile(carrier_profile());
  EXPECT_EQ(store.profile_count(), 2u);
  ASSERT_NE(store.find_open(), nullptr);
  EXPECT_EQ(store.find_open()->imsi, Imsi{100});
  ASSERT_NE(store.find_by_imsi(Imsi{200}), nullptr);
  EXPECT_FALSE(store.find_by_imsi(Imsi{200})->open_identity);
  EXPECT_EQ(store.find_by_label("carrier")->imsi, Imsi{200});
  EXPECT_EQ(store.find_by_label("nope"), nullptr);
  EXPECT_EQ(store.find_by_imsi(Imsi{300}), nullptr);
}

TEST(EsimStore, NoOpenProfile) {
  EsimStore store;
  store.add_profile(carrier_profile());
  EXPECT_EQ(store.find_open(), nullptr);
}

TEST(Usim, RejectsForgedAutn) {
  Usim usim{open_profile()};
  crypto::Rand128 rand{};
  lte::Autn forged{};  // All zeros: MAC cannot match.
  auto result = usim.run_aka(rand, forged, "net");
  EXPECT_FALSE(result.ok());
}

TEST(StaticMobility, NeverMoves) {
  StaticMobility m{Position{10.0, 20.0}};
  m.advance(Duration::seconds(100.0));
  EXPECT_EQ(m.position(), (Position{10.0, 20.0}));
}

TEST(LinearMobility, MovesAtConfiguredSpeed) {
  LinearMobility m{Position{0.0, 0.0}, 10.0, 0.0};
  m.advance(Duration::seconds(5.0));
  EXPECT_NEAR(m.position().x_m, 50.0, 1e-9);
  EXPECT_NEAR(m.position().y_m, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.speed_mps(), 10.0);
}

TEST(LinearMobility, DiagonalSpeed) {
  LinearMobility m{Position{0.0, 0.0}, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(m.speed_mps(), 5.0);
  m.advance(Duration::seconds(2.0));
  EXPECT_NEAR(m.position().x_m, 6.0, 1e-9);
  EXPECT_NEAR(m.position().y_m, 8.0, 1e-9);
}

TEST(RandomWaypoint, StaysInBounds) {
  RandomWaypointMobility m{Position{100.0, 200.0}, 500.0, 300.0, 1.5,
                           sim::RngStream{5}};
  for (int i = 0; i < 1000; ++i) {
    const Position p = m.advance(Duration::seconds(1.0));
    EXPECT_GE(p.x_m, 100.0 - 1e-9);
    EXPECT_LE(p.x_m, 600.0 + 1e-9);
    EXPECT_GE(p.y_m, 200.0 - 1e-9);
    EXPECT_LE(p.y_m, 500.0 + 1e-9);
  }
}

TEST(RandomWaypoint, CoversDistanceAtSpeed) {
  RandomWaypointMobility m{Position{0.0, 0.0}, 10000.0, 10000.0, 2.0,
                           sim::RngStream{6}};
  const Position start = m.position();
  m.advance(Duration::seconds(10.0));
  // Moves at most speed*dt (can be less only when waypoints force turns;
  // in a huge area the first leg is almost surely straight).
  EXPECT_LE(distance_m(start, m.position()), 20.0 + 1e-6);
  EXPECT_GT(distance_m(start, m.position()), 1.0);
}

TEST(RandomWaypoint, DeterministicPerSeed) {
  RandomWaypointMobility a{Position{0, 0}, 100, 100, 1.0,
                           sim::RngStream{7}};
  RandomWaypointMobility b{Position{0, 0}, 100, 100, 1.0,
                           sim::RngStream{7}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.advance(Duration::seconds(1.0)),
              b.advance(Duration::seconds(1.0)));
  }
}

}  // namespace
}  // namespace dlte::ue
