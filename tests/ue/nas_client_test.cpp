// Client-side NAS state machine edge cases.
#include "ue/nas_client.h"

#include <gtest/gtest.h>

namespace dlte::ue {
namespace {

SimProfile profile() {
  crypto::Key128 k{};
  k[0] = 0x46;
  crypto::Block128 op{};
  op[0] = 0xcd;
  return SimProfile{Imsi{77}, k, crypto::derive_opc(k, op), true, "p"};
}

TEST(NasClient, StartAttachEmitsRequest) {
  NasClient c{Usim{profile()}, "net"};
  EXPECT_EQ(c.state(), NasClientState::kIdle);
  const auto msg = c.start_attach();
  ASSERT_TRUE(std::holds_alternative<lte::AttachRequest>(msg));
  EXPECT_EQ(std::get<lte::AttachRequest>(msg).imsi, Imsi{77});
  EXPECT_EQ(c.state(), NasClientState::kAwaitingAuth);
}

TEST(NasClient, IgnoresMessagesInWrongState) {
  NasClient c{Usim{profile()}, "net"};
  // Accept before any attach: ignored.
  EXPECT_FALSE(c.handle(lte::NasMessage{lte::AttachAccept{}}).has_value());
  EXPECT_EQ(c.state(), NasClientState::kIdle);

  (void)c.start_attach();
  // SecurityModeCommand while awaiting auth: ignored.
  EXPECT_FALSE(
      c.handle(lte::NasMessage{lte::SecurityModeCommand{}}).has_value());
  EXPECT_EQ(c.state(), NasClientState::kAwaitingAuth);
}

TEST(NasClient, RejectDuringAuthTerminates) {
  NasClient c{Usim{profile()}, "net"};
  (void)c.start_attach();
  EXPECT_FALSE(c.handle(lte::NasMessage{lte::AttachReject{15}}).has_value());
  EXPECT_EQ(c.state(), NasClientState::kRejected);
  // Further messages do nothing.
  EXPECT_FALSE(
      c.handle(lte::NasMessage{lte::AuthenticationRequest{}}).has_value());
}

TEST(NasClient, ForgedAuthRequestRejected) {
  NasClient c{Usim{profile()}, "net"};
  (void)c.start_attach();
  // All-zero AUTN cannot carry a valid MAC-A for this K.
  const auto reply =
      c.handle(lte::NasMessage{lte::AuthenticationRequest{}});
  EXPECT_FALSE(reply.has_value());
  EXPECT_EQ(c.state(), NasClientState::kRejected);
}

TEST(NasClient, ResetAllowsFreshAttachAtNewNetwork) {
  NasClient c{Usim{profile()}, "net-a"};
  (void)c.start_attach();
  c.reset("net-b");
  EXPECT_EQ(c.state(), NasClientState::kIdle);
  EXPECT_EQ(c.ue_ip(), 0u);
  const auto msg = c.start_attach();
  EXPECT_TRUE(std::holds_alternative<lte::AttachRequest>(msg));
}

TEST(AttachRetryPolicy, BackoffGrowsExponentiallyAndClamps) {
  AttachRetryPolicy p;
  p.initial_backoff = Duration::millis(500);
  p.multiplier = 2.0;
  p.max_backoff = Duration::seconds(8.0);
  p.jitter = 0.0;  // Deterministic midpoint for this test.
  sim::RngStream rng{1};
  EXPECT_DOUBLE_EQ(p.backoff(1, rng).to_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(p.backoff(2, rng).to_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(p.backoff(3, rng).to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(p.backoff(4, rng).to_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(p.backoff(5, rng).to_seconds(), 8.0);
  // Clamped at max_backoff from here on.
  EXPECT_DOUBLE_EQ(p.backoff(9, rng).to_seconds(), 8.0);
}

TEST(AttachRetryPolicy, JitterStaysInsideBandAndIsSeedDeterministic) {
  AttachRetryPolicy p;
  p.jitter = 0.2;
  sim::RngStream a{99};
  sim::RngStream b{99};
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const auto wa = p.backoff(attempt, a);
    const auto wb = p.backoff(attempt, b);
    EXPECT_EQ(wa.ns(), wb.ns());  // Same stream, same schedule.
    sim::RngStream probe{7};
    const double base =
        AttachRetryPolicy{p.initial_backoff, p.multiplier, p.max_backoff,
                          0.0, p.max_attempts}
            .backoff(attempt, probe)
            .to_seconds();
    EXPECT_GE(wa.to_seconds(), base * 0.8 - 1e-9);
    EXPECT_LE(wa.to_seconds(), base * 1.2 + 1e-9);
  }
}

}  // namespace
}  // namespace dlte::ue
