// Client-side NAS state machine edge cases.
#include "ue/nas_client.h"

#include <gtest/gtest.h>

namespace dlte::ue {
namespace {

SimProfile profile() {
  crypto::Key128 k{};
  k[0] = 0x46;
  crypto::Block128 op{};
  op[0] = 0xcd;
  return SimProfile{Imsi{77}, k, crypto::derive_opc(k, op), true, "p"};
}

TEST(NasClient, StartAttachEmitsRequest) {
  NasClient c{Usim{profile()}, "net"};
  EXPECT_EQ(c.state(), NasClientState::kIdle);
  const auto msg = c.start_attach();
  ASSERT_TRUE(std::holds_alternative<lte::AttachRequest>(msg));
  EXPECT_EQ(std::get<lte::AttachRequest>(msg).imsi, Imsi{77});
  EXPECT_EQ(c.state(), NasClientState::kAwaitingAuth);
}

TEST(NasClient, IgnoresMessagesInWrongState) {
  NasClient c{Usim{profile()}, "net"};
  // Accept before any attach: ignored.
  EXPECT_FALSE(c.handle(lte::NasMessage{lte::AttachAccept{}}).has_value());
  EXPECT_EQ(c.state(), NasClientState::kIdle);

  (void)c.start_attach();
  // SecurityModeCommand while awaiting auth: ignored.
  EXPECT_FALSE(
      c.handle(lte::NasMessage{lte::SecurityModeCommand{}}).has_value());
  EXPECT_EQ(c.state(), NasClientState::kAwaitingAuth);
}

TEST(NasClient, RejectDuringAuthTerminates) {
  NasClient c{Usim{profile()}, "net"};
  (void)c.start_attach();
  EXPECT_FALSE(c.handle(lte::NasMessage{lte::AttachReject{15}}).has_value());
  EXPECT_EQ(c.state(), NasClientState::kRejected);
  // Further messages do nothing.
  EXPECT_FALSE(
      c.handle(lte::NasMessage{lte::AuthenticationRequest{}}).has_value());
}

TEST(NasClient, ForgedAuthRequestRejected) {
  NasClient c{Usim{profile()}, "net"};
  (void)c.start_attach();
  // All-zero AUTN cannot carry a valid MAC-A for this K.
  const auto reply =
      c.handle(lte::NasMessage{lte::AuthenticationRequest{}});
  EXPECT_FALSE(reply.has_value());
  EXPECT_EQ(c.state(), NasClientState::kRejected);
}

TEST(NasClient, ResetAllowsFreshAttachAtNewNetwork) {
  NasClient c{Usim{profile()}, "net-a"};
  (void)c.start_attach();
  c.reset("net-b");
  EXPECT_EQ(c.state(), NasClientState::kIdle);
  EXPECT_EQ(c.ue_ip(), 0u);
  const auto msg = c.start_attach();
  EXPECT_TRUE(std::holds_alternative<lte::AttachRequest>(msg));
}

}  // namespace
}  // namespace dlte::ue
