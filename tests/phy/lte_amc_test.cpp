#include "phy/lte_amc.h"

#include <gtest/gtest.h>

namespace dlte::phy {
namespace {

TEST(CqiSelection, BelowRangeIsZero) {
  EXPECT_EQ(select_cqi(Decibels{-10.0}), 0);
}

TEST(CqiSelection, MonotoneInSinr) {
  int prev = 0;
  for (double s = -8.0; s <= 25.0; s += 0.5) {
    const int cqi = select_cqi(Decibels{s});
    EXPECT_GE(cqi, prev);
    prev = cqi;
  }
  EXPECT_EQ(prev, 15);
}

TEST(CqiSelection, ThresholdBoundaries) {
  // Exactly at a threshold selects that CQI.
  EXPECT_EQ(select_cqi(Decibels{-6.7}), 1);
  EXPECT_EQ(select_cqi(Decibels{22.7}), 15);
  EXPECT_EQ(select_cqi(Decibels{22.6}), 14);
}

TEST(CqiTable, EfficienciesStrictlyIncrease) {
  for (int c = 2; c <= 15; ++c) {
    EXPECT_GT(cqi_entry(c).efficiency, cqi_entry(c - 1).efficiency);
  }
}

TEST(PrbCounts, StandardBandwidths) {
  EXPECT_EQ(prbs_for_bandwidth(Hertz::mhz(1.4)), 6);
  EXPECT_EQ(prbs_for_bandwidth(Hertz::mhz(3.0)), 15);
  EXPECT_EQ(prbs_for_bandwidth(Hertz::mhz(5.0)), 25);
  EXPECT_EQ(prbs_for_bandwidth(Hertz::mhz(10.0)), 50);
  EXPECT_EQ(prbs_for_bandwidth(Hertz::mhz(15.0)), 75);
  EXPECT_EQ(prbs_for_bandwidth(Hertz::mhz(20.0)), 100);
}

TEST(TransportBlock, ZeroForNoCqiOrNoPrbs) {
  EXPECT_EQ(transport_block_bits(0, 50), 0);
  EXPECT_EQ(transport_block_bits(10, 0), 0);
}

TEST(TransportBlock, ScalesLinearlyWithPrbs) {
  const int one = transport_block_bits(10, 1);
  const int fifty = transport_block_bits(10, 50);
  EXPECT_NEAR(fifty, one * 50, 50);  // Integer truncation slack.
}

TEST(TransportBlock, PeakRateAtTenMhzIsRealistic) {
  // CQI 15 over 50 PRBs ≈ 35 Mb/s with our 25% overhead — the right
  // ballpark for SISO 10 MHz LTE.
  const auto rate = peak_rate(Decibels{30.0}, Hertz::mhz(10.0));
  EXPECT_GT(rate.to_mbps(), 30.0);
  EXPECT_LT(rate.to_mbps(), 40.0);
}

TEST(Bler, TenPercentAtThreshold) {
  for (int c : {1, 7, 15}) {
    EXPECT_NEAR(bler(c, Decibels{cqi_entry(c).snr_threshold_db}), 0.1, 1e-6);
  }
}

TEST(Bler, FallsWithSinr) {
  const int cqi = 7;
  const double thr = cqi_entry(cqi).snr_threshold_db;
  EXPECT_LT(bler(cqi, Decibels{thr + 2.0}), 0.01);
  EXPECT_GT(bler(cqi, Decibels{thr - 2.0}), 0.5);
  EXPECT_EQ(bler(0, Decibels{100.0}), 1.0);
}

TEST(TimingAdvance, HundredKmCell) {
  EXPECT_TRUE(within_timing_advance(99'000.0));
  EXPECT_FALSE(within_timing_advance(101'000.0));
}

// Parameterized sweep: transport block bits are monotone in CQI for any
// PRB allocation.
class TbsMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(TbsMonotoneTest, MonotoneInCqi) {
  const int prbs = GetParam();
  int prev = -1;
  for (int c = 1; c <= 15; ++c) {
    const int tbs = transport_block_bits(c, prbs);
    EXPECT_GT(tbs, prev);
    prev = tbs;
  }
}

INSTANTIATE_TEST_SUITE_P(PrbSweep, TbsMonotoneTest,
                         ::testing::Values(1, 6, 25, 50, 100));

}  // namespace
}  // namespace dlte::phy
