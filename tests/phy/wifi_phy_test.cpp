#include "phy/wifi_phy.h"

#include <gtest/gtest.h>

namespace dlte::phy {
namespace {

TEST(WifiRates, LadderIsMonotone) {
  for (int i = 1; i < kWifiRateCount; ++i) {
    EXPECT_GT(wifi_rate(i).phy_rate.bps(), wifi_rate(i - 1).phy_rate.bps());
    EXPECT_GT(wifi_rate(i).snr_threshold_db,
              wifi_rate(i - 1).snr_threshold_db);
  }
}

TEST(WifiRateSelection, BelowFloorIsNoLink) {
  EXPECT_EQ(select_wifi_rate(Decibels{0.0}), -1);
}

TEST(WifiRateSelection, PicksHighestFeasible) {
  EXPECT_EQ(select_wifi_rate(Decibels{2.0}), 0);
  EXPECT_EQ(select_wifi_rate(Decibels{15.0}), 4);
  EXPECT_EQ(select_wifi_rate(Decibels{40.0}), kWifiRateCount - 1);
}

TEST(WifiAirtime, IncludesOverheads) {
  // A zero-byte payload still costs preamble + header bits + SIFS + ACK.
  const auto t = wifi_frame_airtime(8, 0);
  EXPECT_GT(t.to_micros(), 80.0);
}

TEST(WifiAirtime, FasterRateShorterFrame) {
  const auto slow = wifi_frame_airtime(1, 1500);
  const auto fast = wifi_frame_airtime(8, 1500);
  EXPECT_LT(fast.ns(), slow.ns());
}

TEST(WifiAirtime, EfficiencyDropsForSmallFrames) {
  // Per-byte cost at 64B must exceed per-byte cost at 1500B (fixed
  // overhead amortization) — the reason WiFi struggles with small VoIP
  // packets while LTE schedules them natively.
  const double small = wifi_frame_airtime(8, 64).to_micros() / 64.0;
  const double large = wifi_frame_airtime(8, 1500).to_micros() / 1500.0;
  EXPECT_GT(small, 3.0 * large);
}

TEST(WifiFer, TenPercentAtThreshold) {
  for (int r : {0, 4, 8}) {
    EXPECT_NEAR(wifi_frame_error_rate(r, Decibels{
                    wifi_rate(r).snr_threshold_db}), 0.1, 1e-6);
  }
}

TEST(WifiAckRange, StockEquipmentCapsAtTwoKm) {
  EXPECT_FALSE(beyond_ack_range(1500.0));
  EXPECT_TRUE(beyond_ack_range(2500.0));
}

// The contrast the paper draws (§3.2): LTE's timing advance serves links
// an order of magnitude beyond WiFi's ACK ceiling.
TEST(RangeCeilings, LteTimingAdvanceFarExceedsWifiAck) {
  EXPECT_GE(100'000.0 / kWifiAckRangeM, 10.0);
}

}  // namespace
}  // namespace dlte::phy
