#include "phy/propagation.h"

#include <gtest/gtest.h>

namespace dlte::phy {
namespace {

const LinkGeometry kRuralGeo{.distance_m = 5000.0,
                             .base_height_m = 30.0,
                             .mobile_height_m = 1.5};

TEST(FreeSpace, KnownValueAt1Km2Ghz) {
  // FSPL(1 km, 2 GHz) ≈ 98.5 dB.
  FreeSpaceModel m;
  const auto loss = m.path_loss(
      Hertz::ghz(2.0), LinkGeometry{.distance_m = 1000.0});
  EXPECT_NEAR(loss.value(), 98.5, 0.2);
}

TEST(FreeSpace, SixDbPerDoubling) {
  FreeSpaceModel m;
  const auto l1 =
      m.path_loss(Hertz::ghz(1.0), LinkGeometry{.distance_m = 1000.0});
  const auto l2 =
      m.path_loss(Hertz::ghz(1.0), LinkGeometry{.distance_m = 2000.0});
  EXPECT_NEAR(l2.value() - l1.value(), 6.02, 0.05);
}

TEST(LogDistance, ExponentControlsSlope) {
  LogDistanceModel m{3.5, 100.0};
  const auto l1 =
      m.path_loss(Hertz::ghz(2.4), LinkGeometry{.distance_m = 1000.0});
  const auto l2 =
      m.path_loss(Hertz::ghz(2.4), LinkGeometry{.distance_m = 10000.0});
  EXPECT_NEAR(l2.value() - l1.value(), 35.0, 0.1);
}

TEST(LogDistance, MatchesFreeSpaceAtReference) {
  LogDistanceModel m{3.0, 50.0};
  FreeSpaceModel fs;
  const LinkGeometry at_ref{.distance_m = 50.0};
  EXPECT_NEAR(m.path_loss(Hertz::ghz(5.8), at_ref).value(),
              fs.path_loss(Hertz::ghz(5.8), at_ref).value(), 1e-9);
}

TEST(OkumuraHata, OpenRuralLessLossThanUrban) {
  OkumuraHataModel open_m{Environment::kOpenRural};
  OkumuraHataModel urban{Environment::kUrban};
  const auto lo = open_m.path_loss(Hertz::mhz(850.0), kRuralGeo);
  const auto lu = urban.path_loss(Hertz::mhz(850.0), kRuralGeo);
  EXPECT_LT(lo.value(), lu.value() - 20.0);
}

TEST(OkumuraHata, KnownBallparkAt850Mhz10Km) {
  // Urban Hata, hb=30, hm=1.5, f=850 MHz, d=10 km → ~161 dB.
  OkumuraHataModel m{Environment::kUrban};
  const auto loss = m.path_loss(
      Hertz::mhz(850.0), LinkGeometry{10'000.0, 30.0, 1.5});
  EXPECT_NEAR(loss.value(), 161.0, 2.0);
}

TEST(OkumuraHata, LossGrowsWithDistance) {
  OkumuraHataModel m{Environment::kOpenRural};
  double prev = 0.0;
  for (double d : {1000.0, 2000.0, 5000.0, 10000.0, 20000.0}) {
    const auto loss =
        m.path_loss(Hertz::mhz(850.0), LinkGeometry{d, 30.0, 1.5});
    EXPECT_GT(loss.value(), prev);
    prev = loss.value();
  }
}

TEST(OkumuraHata, TallerBaseStationReducesLoss) {
  OkumuraHataModel m{Environment::kOpenRural};
  const auto low =
      m.path_loss(Hertz::mhz(850.0), LinkGeometry{10'000.0, 15.0, 1.5});
  const auto high =
      m.path_loss(Hertz::mhz(850.0), LinkGeometry{10'000.0, 45.0, 1.5});
  EXPECT_LT(high.value(), low.value());
}

TEST(Cost231, HigherFrequencyCostsMore) {
  Cost231HataModel m{Environment::kSuburban};
  const auto l18 = m.path_loss(Hertz::mhz(1800.0), kRuralGeo);
  const auto l26 = m.path_loss(Hertz::mhz(2600.0), kRuralGeo);
  EXPECT_GT(l26.value(), l18.value());
}

// The §3.2 band argument in one assertion: at rural distances, propagation
// alone already favors 850 MHz over 2.4 GHz by several dB (the rest of the
// LTE advantage — EIRP, SC-FDMA headroom, HARQ — is measured in bench C1).
TEST(RuralModels, Band5BeatsIsmAtDistance) {
  const auto lte = make_rural_model(Hertz::mhz(850.0));
  const auto wifi = make_rural_model(Hertz::ghz(2.4));
  const auto l_lte = lte->path_loss(Hertz::mhz(850.0), kRuralGeo);
  const auto l_wifi = wifi->path_loss(Hertz::ghz(2.4), kRuralGeo);
  EXPECT_LT(l_lte.value() + 5.0, l_wifi.value());
}

TEST(RuralModelSelector, PicksByFrequency) {
  EXPECT_STREQ(make_rural_model(Hertz::mhz(850.0))->name(), "okumura-hata");
  EXPECT_STREQ(make_rural_model(Hertz::mhz(1800.0))->name(), "cost231-hata");
  EXPECT_STREQ(make_rural_model(Hertz::ghz(5.8))->name(), "log-distance");
}

TEST(Shadowing, RedrawChangesValue) {
  ShadowingProcess s{8.0, sim::RngStream{42}};
  EXPECT_DOUBLE_EQ(s.current().value(), 0.0);  // Before first draw.
  s.redraw();
  const double v1 = s.current().value();
  s.redraw();
  const double v2 = s.current().value();
  EXPECT_NE(v1, v2);
}

TEST(Shadowing, RoughlyZeroMean) {
  ShadowingProcess s{8.0, sim::RngStream{43}};
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    s.redraw();
    sum += s.current().value();
  }
  EXPECT_NEAR(sum / 5000.0, 0.0, 0.5);
}

}  // namespace
}  // namespace dlte::phy
