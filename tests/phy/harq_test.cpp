#include "phy/harq.h"

#include <gtest/gtest.h>

#include "phy/lte_amc.h"

namespace dlte::phy {
namespace {

TEST(Harq, StrongSignalDeliversFirstTry) {
  HarqProcess h{HarqConfig{}, sim::RngStream{1}};
  int multi_tx = 0;
  for (int i = 0; i < 200; ++i) {
    const auto out = h.transmit_block(7, Decibels{20.0});
    EXPECT_TRUE(out.delivered);
    if (out.transmissions > 1) ++multi_tx;
  }
  EXPECT_LE(multi_tx, 2);
}

TEST(Harq, HopelessSignalExhaustsAttempts) {
  HarqProcess h{HarqConfig{.max_transmissions = 4}, sim::RngStream{2}};
  const auto out = h.transmit_block(15, Decibels{-30.0});
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.transmissions, 4);
}

TEST(Harq, ChaseCombiningAccumulatesSinr) {
  HarqProcess h{HarqConfig{.max_transmissions = 4, .chase_combining = true},
                sim::RngStream{3}};
  // Repeat until we observe a 2-transmission delivery; combined SINR must
  // be 3 dB above the per-transmission SINR.
  for (int i = 0; i < 1000; ++i) {
    const auto out = h.transmit_block(7, Decibels{4.5});
    if (out.transmissions == 2 && out.delivered) {
      EXPECT_NEAR(out.effective_sinr_db, 4.5 + 3.01, 0.05);
      return;
    }
  }
  FAIL() << "never observed a 2-transmission delivery";
}

TEST(Harq, CombiningBeatsNoCombiningAtWeakSnr) {
  // At SINR well below the CQI threshold, plain repetition rarely
  // succeeds but Chase combining usually does within 4 attempts.
  const int cqi = 7;  // Threshold 5.9 dB.
  const Decibels weak{2.0};
  int chase_ok = 0, plain_ok = 0;
  HarqProcess chase{HarqConfig{4, true}, sim::RngStream{10}};
  HarqProcess plain{HarqConfig{4, false}, sim::RngStream{11}};
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    if (chase.transmit_block(cqi, weak).delivered) ++chase_ok;
    if (plain.transmit_block(cqi, weak).delivered) ++plain_ok;
  }
  EXPECT_GT(chase_ok, plain_ok + trials / 10);
}

TEST(Harq, SingleShotConfigDisablesRetransmission) {
  HarqProcess h{HarqConfig{.max_transmissions = 1}, sim::RngStream{4}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(h.transmit_block(7, Decibels{0.0}).transmissions, 1);
  }
}

// Property sweep: delivery probability is monotone in max_transmissions.
class HarqRetxSweep : public ::testing::TestWithParam<int> {};

TEST_P(HarqRetxSweep, MoreAttemptsNeverHurt) {
  const int max_tx = GetParam();
  HarqProcess fewer{HarqConfig{max_tx, true}, sim::RngStream{20}};
  HarqProcess more{HarqConfig{max_tx + 1, true}, sim::RngStream{20}};
  int fewer_ok = 0, more_ok = 0;
  for (int i = 0; i < 400; ++i) {
    if (fewer.transmit_block(7, Decibels{3.0}).delivered) ++fewer_ok;
    if (more.transmit_block(7, Decibels{3.0}).delivered) ++more_ok;
  }
  EXPECT_GE(more_ok + 20, fewer_ok);  // Allow small sampling noise.
}

INSTANTIATE_TEST_SUITE_P(MaxTx, HarqRetxSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dlte::phy
