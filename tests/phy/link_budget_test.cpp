#include "phy/link_budget.h"

#include <gtest/gtest.h>

#include "phy/lte_amc.h"

namespace dlte::phy {
namespace {

TEST(LinkBudget, ReceivedPowerFollowsBudget) {
  FreeSpaceModel fs;
  RadioProfile tx{.tx_power = PowerDbm{30.0},
                  .tx_antenna_gain = Decibels{10.0},
                  .rx_antenna_gain = Decibels{0.0},
                  .noise_figure = Decibels{7.0},
                  .bandwidth = Hertz::mhz(10.0),
                  .antenna_height_m = 30.0};
  RadioProfile rx = DeviceProfiles::lte_ue();
  const PowerDbm p =
      received_power(tx, rx, fs, Hertz::ghz(1.0), 1000.0);
  // 30 + 10 + 0 - FSPL(1km, 1GHz 92.4dB) ≈ -52.4 dBm.
  EXPECT_NEAR(p.value(), -52.4, 0.3);
}

TEST(LinkBudget, ShadowingSubtracts) {
  FreeSpaceModel fs;
  const auto tx = DeviceProfiles::lte_enb_rural();
  const auto rx = DeviceProfiles::lte_ue();
  const auto p0 = received_power(tx, rx, fs, Hertz::mhz(850.0), 5000.0);
  const auto p1 = received_power(tx, rx, fs, Hertz::mhz(850.0), 5000.0,
                                 Decibels{10.0});
  EXPECT_NEAR(p0.value() - p1.value(), 10.0, 1e-9);
}

TEST(LinkBudget, UplinkReciprocity) {
  // Uplink (UE→eNB) and downlink (eNB→UE) see the same path loss; the
  // received power difference equals the EIRP difference.
  const auto enb = DeviceProfiles::lte_enb_rural();
  const auto ue = DeviceProfiles::lte_ue();
  OkumuraHataModel m{Environment::kOpenRural};
  const auto dl = received_power(enb, ue, m, Hertz::mhz(850.0), 8000.0);
  const auto ul = received_power(ue, enb, m, Hertz::mhz(850.0), 8000.0);
  const double chain_delta =
      (enb.tx_power.value() + enb.tx_antenna_gain.value() +
       ue.rx_antenna_gain.value()) -
      (ue.tx_power.value() + ue.tx_antenna_gain.value() +
       enb.rx_antenna_gain.value());
  EXPECT_NEAR(dl.value() - ul.value(), chain_delta, 1e-9);
}

TEST(LinkBudget, SnrAtCellEdgeIsUsable) {
  // The §5 deployment claim: one band-5 site covers a town. At 5 km in
  // open terrain the downlink SNR must support at least mid CQI.
  const auto enb = DeviceProfiles::lte_enb_rural();
  const auto ue = DeviceProfiles::lte_ue();
  OkumuraHataModel m{Environment::kOpenRural};
  const auto snr = link_snr(enb, ue, m, Hertz::mhz(850.0), 5000.0);
  EXPECT_GT(snr.value(), 10.0);
  EXPECT_GE(select_cqi(snr), 7);
}

TEST(Sinr, NoInterferenceEqualsSnr) {
  const PowerDbm desired{-80.0};
  const PowerDbm noise{-100.0};
  EXPECT_NEAR(sinr(desired, {}, noise).value(), 20.0, 1e-9);
}

TEST(Sinr, EqualInterfererDominatesNoise) {
  const PowerDbm desired{-80.0};
  const PowerDbm noise{-120.0};
  const auto s = sinr(desired, {PowerDbm{-80.0}}, noise);
  EXPECT_NEAR(s.value(), 0.0, 0.05);  // Desired ≈ interference.
}

TEST(Sinr, MultipleInterferersSumLinearly) {
  const PowerDbm desired{-80.0};
  const PowerDbm noise{-150.0};
  // Two equal interferers at -90: total interference -87.
  const auto s = sinr(desired, {PowerDbm{-90.0}, PowerDbm{-90.0}}, noise);
  EXPECT_NEAR(s.value(), 7.0, 0.05);
}

TEST(Profiles, WifiClientHasLessUplinkEirpThanLteUe) {
  // §3.2 uplink asymmetry: SC-FDMA keeps full PA headroom, OFDM backs off.
  const auto lte = DeviceProfiles::lte_ue();
  const auto wifi = DeviceProfiles::wifi_client();
  EXPECT_GT(lte.tx_power.value() + lte.tx_antenna_gain.value(),
            wifi.tx_power.value() + wifi.tx_antenna_gain.value());
}

}  // namespace
}  // namespace dlte::phy
