#include "obs/prof_export.h"

#include <gtest/gtest.h>

#include <string>

#include "common/time.h"
#include "obs/prof.h"
#include "obs/span.h"

namespace dlte::obs {
namespace {

struct FakeClock {
  TimePoint now{};
  [[nodiscard]] SpanTracer::NowFn fn() {
    return [this] { return now; };
  }
  void advance(Duration d) { now = now + d; }
};

EventProfiler sample_profiler() {
  EventProfiler p;
  const std::uint32_t hop = p.intern("net.hop");
  const std::uint32_t mme = p.intern("epc.mme");
  p.on_schedule(hop, 200'000);
  p.on_schedule(hop, 200'000);
  p.on_execute(hop);
  p.on_schedule(mme, 1'000'000);
  p.on_execute(mme);
  p.on_past_clamp(mme);
  return p;
}

TEST(ProfExport, FullDocumentCarriesBothSections) {
  ProfileDoc doc;
  doc.attribution = sample_profiler();
  doc.shard_profile.shards = 2;
  doc.shard_profile.threads = 2;
  doc.shard_profile.windows = 4;
  doc.shard_profile.messages = 6;
  doc.shard_profile.lookahead_s = 0.005;
  doc.shard_profile.lanes = {{100, 0.01, 0.002}, {80, 0.008, 0.004}};
  doc.shard_profile.matrix = {{0, 1, 4, 512}, {1, 0, 2, 128}};
  doc.shard_profile.samples = {{0.005, {50, 40}, 3}, {0.010, {100, 80}, 6}};

  const std::string json = ProfExporter::to_json(doc, "unit");
  EXPECT_NE(json.find("\"schema\":\"dlte-prof-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"source\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"event_attribution\""), std::string::npos);
  EXPECT_NE(json.find(
                "\"epc.mme\":{\"schedules\":1,\"executed\":1,"
                "\"past_clamps\":1,\"residency_ns\":1000000}"),
            std::string::npos);
  EXPECT_NE(json.find("\"totals\":{\"labels\":3,\"schedules\":3,"
                      "\"executed\":2,\"past_clamps\":1,"
                      "\"residency_ns\":1400000}"),
            std::string::npos);
  EXPECT_NE(json.find("\"shard_profile\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\":2"), std::string::npos);
  EXPECT_NE(json.find("\"src\":0,\"dst\":1,\"messages\":4,\"bytes\":512"),
            std::string::npos);
  // per_shard lanes derive events_per_window from the window count.
  EXPECT_NE(json.find("\"events_per_window\":25"), std::string::npos);
  // Labels appear in sorted-name order (the byte-compare contract).
  EXPECT_LT(json.find("\"epc.mme\""), json.find("\"net.hop\""));
  EXPECT_LT(json.find("\"net.hop\""), json.find("\"sim.unlabeled\""));
}

TEST(ProfExport, AttributionJsonIsDeterministicAndShardFree) {
  const std::string a =
      ProfExporter::event_attribution_json(sample_profiler());
  const std::string b =
      ProfExporter::event_attribution_json(sample_profiler());
  EXPECT_EQ(a, b);
  // The deterministic section must not leak wall-clock material.
  EXPECT_EQ(a.find("shard_profile"), std::string::npos);
  EXPECT_EQ(a.find("source"), std::string::npos);
  EXPECT_NE(a.find("\"schema\":\"dlte-prof-v1\""), std::string::npos);
}

TEST(ProfExport, AttributionJsonInvariantToInternOrder) {
  // Two profilers observing the same stream through different intern
  // orders (= different shard partitions) export identical bytes.
  EventProfiler forward, reverse;
  const std::uint32_t fa = forward.intern("a");
  const std::uint32_t fb = forward.intern("b");
  const std::uint32_t rb = reverse.intern("b");
  const std::uint32_t ra = reverse.intern("a");
  for (EventProfiler* p : {&forward, &reverse}) {
    const std::uint32_t a = (p == &forward) ? fa : ra;
    const std::uint32_t b = (p == &forward) ? fb : rb;
    p->on_schedule(a, 100);
    p->on_execute(a);
    p->on_schedule(b, 300);
  }
  EXPECT_EQ(ProfExporter::event_attribution_json(forward),
            ProfExporter::event_attribution_json(reverse));
}

TEST(ProfExport, CounterTraceEmitsSampleAndLabelTracks) {
  ProfileDoc doc;
  doc.attribution = sample_profiler();
  doc.shard_profile.shards = 2;
  doc.shard_profile.samples = {{0.005, {50, 40}, 3}};
  const std::string trace = ProfExporter::to_counter_trace(doc, "unit");
  // One counter event per shard per sample, in microseconds.
  EXPECT_NE(trace.find("\"name\":\"shard0.events\",\"ph\":\"C\",\"ts\":5000"),
            std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"shard1.events\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"par.messages\""), std::string::npos);
  // Per-label executed totals land as prof.* counter tracks.
  EXPECT_NE(trace.find("\"name\":\"prof.net.hop\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"prof.epc.mme\""), std::string::npos);
  // Valid trace-event envelope.
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"generator\":\"dlte-prof\""), std::string::npos);
}

TEST(ProfExport, CollapsedStacksChargeSelfTimeOnly) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  const SpanId root = t.begin("attach", "ran", kNoSpan);
  const SpanId child = t.begin("aka", "epc", root);
  clock.advance(Duration::millis(10));
  t.end(child);  // child: 10 ms self.
  clock.advance(Duration::millis(20));
  t.end(root);  // root: 30 ms total - 10 ms child = 20 ms self.
  EXPECT_EQ(ProfExporter::to_collapsed(t),
            "attach 20000\n"
            "attach;aka 10000\n");
}

TEST(ProfExport, CollapsedStacksCloseOpenSpansAtLatest) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  t.begin("run", "bench", kNoSpan);
  clock.advance(Duration::millis(5));
  // Still open — but tick() has seen t=5ms via a later begin.
  const SpanId probe = t.begin("probe", "bench", kNoSpan);
  t.end(probe);
  EXPECT_NE(ProfExporter::to_collapsed(t).find("run 5000"),
            std::string::npos);
}

TEST(ProfExport, CollapsedStacksSanitizeFrameNames) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  const SpanId s = t.begin("x2 round;1", "coord", kNoSpan);
  clock.advance(Duration::millis(1));
  t.end(s);
  // ';' would corrupt the stack separator, ' ' the count separator.
  EXPECT_EQ(ProfExporter::to_collapsed(t), "x2_round_1 1000\n");
}

TEST(ProfExport, CollapsedStacksSkipFullyCoveredParents) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  const SpanId root = t.begin("outer", "x", kNoSpan);
  const SpanId child = t.begin("inner", "x", root);
  clock.advance(Duration::millis(4));
  t.end(child);
  t.end(root);  // Zero self time: omitted from the folded output.
  EXPECT_EQ(ProfExporter::to_collapsed(t), "outer;inner 4000\n");
}

}  // namespace
}  // namespace dlte::obs
