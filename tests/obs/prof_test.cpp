#include "obs/prof.h"

#include <gtest/gtest.h>

#include <vector>

namespace dlte::obs {
namespace {

TEST(EventProfiler, UnlabeledBucketAlwaysPresent) {
  EventProfiler p;
  EXPECT_EQ(p.label_count(), 1u);
  EXPECT_EQ(p.label_name(kUnlabeledEvent), kUnlabeledEventName);
  // Re-interning the reserved name returns id 0, not a new bucket.
  EXPECT_EQ(p.intern(kUnlabeledEventName), kUnlabeledEvent);
  EXPECT_EQ(p.label_count(), 1u);
}

TEST(EventProfiler, InternIsIdempotentAndDense) {
  EventProfiler p;
  const std::uint32_t a = p.intern("ran.enodeb");
  const std::uint32_t b = p.intern("epc.mme");
  EXPECT_NE(a, kUnlabeledEvent);
  EXPECT_NE(a, b);
  EXPECT_EQ(p.intern("ran.enodeb"), a);
  EXPECT_EQ(p.label_count(), 3u);
  EXPECT_EQ(p.label_name(a), "ran.enodeb");
  EXPECT_EQ(p.label_name(b), "epc.mme");
}

TEST(EventProfiler, HooksAccumulatePerLabel) {
  EventProfiler p;
  const std::uint32_t id = p.intern("net.hop");
  p.on_schedule(id, 1'000);
  p.on_schedule(id, 2'000);
  p.on_execute(id);
  p.on_past_clamp(id);
  const EventProfiler::LabelStats& s = p.stats(id);
  EXPECT_EQ(s.schedules, 2u);
  EXPECT_EQ(s.executed, 1u);
  EXPECT_EQ(s.past_clamps, 1u);
  EXPECT_EQ(s.residency_ns, 3'000u);
  // The unlabeled bucket is untouched.
  EXPECT_EQ(p.stats(kUnlabeledEvent).schedules, 0u);
}

TEST(EventProfiler, MergeIsByNameNotById) {
  // Shards intern in whatever order their components construct, so the
  // same label can hold different ids on different shards. Merging must
  // line stats up by NAME — that is the shard-count-invariance the
  // prof-determinism gate relies on.
  EventProfiler a, b;
  const std::uint32_t a_hop = a.intern("net.hop");    // id 1 in a
  const std::uint32_t b_mme = b.intern("epc.mme");    // id 1 in b
  const std::uint32_t b_hop = b.intern("net.hop");    // id 2 in b
  ASSERT_EQ(a_hop, b_mme);  // Same id, different names across profilers.
  a.on_schedule(a_hop, 10);
  a.on_execute(a_hop);
  b.on_schedule(b_hop, 5);
  b.on_schedule(b_mme, 7);
  a.merge_from(b);
  EXPECT_EQ(a.stats(a.intern("net.hop")).schedules, 2u);
  EXPECT_EQ(a.stats(a.intern("net.hop")).residency_ns, 15u);
  EXPECT_EQ(a.stats(a.intern("net.hop")).executed, 1u);
  EXPECT_EQ(a.stats(a.intern("epc.mme")).schedules, 1u);
  EXPECT_EQ(a.stats(a.intern("epc.mme")).residency_ns, 7u);
}

TEST(EventProfiler, MergeOrderIsImmaterial) {
  // Counter merges are associative+commutative, so merging shard
  // profilers in any order gives identical stats.
  auto feed = [](EventProfiler& p, const char* name, std::uint64_t n) {
    const std::uint32_t id = p.intern(name);
    for (std::uint64_t i = 0; i < n; ++i) {
      p.on_schedule(id, 100);
      p.on_execute(id);
    }
  };
  EventProfiler s0, s1, ab, ba;
  feed(s0, "core.s1", 3);
  feed(s0, "net.hop", 2);
  feed(s1, "net.hop", 5);
  ab.merge_from(s0);
  ab.merge_from(s1);
  ba.merge_from(s1);
  ba.merge_from(s0);
  for (EventProfiler* m : {&ab, &ba}) {
    EXPECT_EQ(m->stats(m->intern("core.s1")).schedules, 3u);
    EXPECT_EQ(m->stats(m->intern("net.hop")).schedules, 7u);
    EXPECT_EQ(m->stats(m->intern("net.hop")).residency_ns, 700u);
  }
}

TEST(EventProfiler, SortedIdsOrderByName) {
  EventProfiler p;
  (void)p.intern("zz.late");
  (void)p.intern("aa.early");
  std::vector<std::string> names;
  for (const std::uint32_t id : p.sorted_ids()) {
    names.push_back(p.label_name(id));
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"aa.early", "sim.unlabeled", "zz.late"}));
}

TEST(EventProfiler, TotalsSumEveryLabel) {
  EventProfiler p;
  const std::uint32_t a = p.intern("a");
  const std::uint32_t b = p.intern("b");
  p.on_schedule(a, 10);
  p.on_schedule(b, 20);
  p.on_execute(a);
  p.on_past_clamp(b);
  p.on_schedule(kUnlabeledEvent, 5);
  const EventProfiler::LabelStats t = p.totals();
  EXPECT_EQ(t.schedules, 3u);
  EXPECT_EQ(t.executed, 1u);
  EXPECT_EQ(t.past_clamps, 1u);
  EXPECT_EQ(t.residency_ns, 35u);
}

TEST(EventProfiler, ExportMetricsWritesFourCountersPerLabel) {
  EventProfiler p;
  const std::uint32_t id = p.intern("core.s1");
  p.on_schedule(id, 250);
  p.on_schedule(id, 750);
  p.on_execute(id);
  MetricsRegistry reg;
  p.export_metrics(reg);
  EXPECT_EQ(reg.counter("prof.core.s1.schedules").value(), 2u);
  EXPECT_EQ(reg.counter("prof.core.s1.executed").value(), 1u);
  EXPECT_EQ(reg.counter("prof.core.s1.past_clamps").value(), 0u);
  EXPECT_EQ(reg.counter("prof.core.s1.residency_ns").value(), 1'000u);
  // The unlabeled bucket exports too — it is part of the contract.
  EXPECT_NE(reg.find_counter("prof.sim.unlabeled.schedules"), nullptr);
}

}  // namespace
}  // namespace dlte::obs
