#include "obs/openmetrics.h"

#include <gtest/gtest.h>

#include <string>

namespace dlte::obs {
namespace {

TEST(OpenMetrics, SanitizeMapsDotsAndLeadingDigits) {
  EXPECT_EQ(OpenMetricsExporter::sanitize("c8.dlte.epc.attach_latency_ms"),
            "c8_dlte_epc_attach_latency_ms");
  EXPECT_EQ(OpenMetricsExporter::sanitize("x2:rounds"), "x2:rounds");
  EXPECT_EQ(OpenMetricsExporter::sanitize("8ball"), "_8ball");
  EXPECT_EQ(OpenMetricsExporter::sanitize(""), "_");
}

TEST(OpenMetrics, RendersAllInstrumentKinds) {
  MetricsRegistry reg;
  reg.counter("net.pkts").inc(42);
  reg.gauge("ap1.up").set(1.0);
  Histogram& lat = reg.histogram("attach.ms");
  lat.record(10.0);
  lat.record(20.0);

  const std::string text = OpenMetricsExporter::render(reg);
  EXPECT_NE(text.find("# TYPE net_pkts counter\n"), std::string::npos);
  EXPECT_NE(text.find("net_pkts_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ap1_up gauge\n"), std::string::npos);
  EXPECT_NE(text.find("ap1_up 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE attach_ms summary\n"), std::string::npos);
  EXPECT_NE(text.find("attach_ms{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(text.find("attach_ms_sum 30\n"), std::string::npos);
  EXPECT_NE(text.find("attach_ms_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("attach_ms_min 10\n"), std::string::npos);
  EXPECT_NE(text.find("attach_ms_max 20\n"), std::string::npos);
  // Spec: the exposition ends with the EOF marker.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, FamiliesSortedByName) {
  MetricsRegistry reg;
  // Registered out of order; snapshot maps sort them.
  reg.counter("zz.last").inc();
  reg.counter("aa.first").inc();
  const std::string text = OpenMetricsExporter::render(reg);
  EXPECT_LT(text.find("aa_first_total"), text.find("zz_last_total"));
}

TEST(OpenMetrics, RenderIsDeterministic) {
  auto build = [] {
    MetricsRegistry reg;
    reg.counter("a").inc(7);
    reg.gauge("b").set(0.125);
    Histogram& h = reg.histogram("c");
    for (int i = 1; i <= 1'000; ++i) h.record(static_cast<double>(i) * 0.1);
    return OpenMetricsExporter::render(reg);
  };
  EXPECT_EQ(build(), build());
}

TEST(OpenMetrics, EmptyRegistryIsJustEof) {
  MetricsRegistry reg;
  EXPECT_EQ(OpenMetricsExporter::render(reg), "# EOF\n");
}

}  // namespace
}  // namespace dlte::obs
