#include "obs/openmetrics.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/prof.h"

namespace dlte::obs {
namespace {

TEST(OpenMetrics, SanitizeMapsDotsAndLeadingDigits) {
  EXPECT_EQ(OpenMetricsExporter::sanitize("c8.dlte.epc.attach_latency_ms"),
            "c8_dlte_epc_attach_latency_ms");
  EXPECT_EQ(OpenMetricsExporter::sanitize("x2:rounds"), "x2:rounds");
  EXPECT_EQ(OpenMetricsExporter::sanitize("8ball"), "_8ball");
  EXPECT_EQ(OpenMetricsExporter::sanitize(""), "_");
}

TEST(OpenMetrics, RendersAllInstrumentKinds) {
  MetricsRegistry reg;
  reg.counter("net.pkts").inc(42);
  reg.gauge("ap1.up").set(1.0);
  Histogram& lat = reg.histogram("attach.ms");
  lat.record(10.0);
  lat.record(20.0);

  const std::string text = OpenMetricsExporter::render(reg);
  EXPECT_NE(text.find("# TYPE net_pkts counter\n"), std::string::npos);
  EXPECT_NE(text.find("net_pkts_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ap1_up gauge\n"), std::string::npos);
  EXPECT_NE(text.find("ap1_up 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE attach_ms summary\n"), std::string::npos);
  EXPECT_NE(text.find("attach_ms{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(text.find("attach_ms_sum 30\n"), std::string::npos);
  EXPECT_NE(text.find("attach_ms_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("attach_ms_min 10\n"), std::string::npos);
  EXPECT_NE(text.find("attach_ms_max 20\n"), std::string::npos);
  // Spec: the exposition ends with the EOF marker.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, FamiliesSortedByName) {
  MetricsRegistry reg;
  // Registered out of order; snapshot maps sort them.
  reg.counter("zz.last").inc();
  reg.counter("aa.first").inc();
  const std::string text = OpenMetricsExporter::render(reg);
  EXPECT_LT(text.find("aa_first_total"), text.find("zz_last_total"));
}

TEST(OpenMetrics, RenderIsDeterministic) {
  auto build = [] {
    MetricsRegistry reg;
    reg.counter("a").inc(7);
    reg.gauge("b").set(0.125);
    Histogram& h = reg.histogram("c");
    for (int i = 1; i <= 1'000; ++i) h.record(static_cast<double>(i) * 0.1);
    return OpenMetricsExporter::render(reg);
  };
  EXPECT_EQ(build(), build());
}

TEST(OpenMetrics, EmptyRegistryIsJustEof) {
  MetricsRegistry reg;
  EXPECT_EQ(OpenMetricsExporter::render(reg), "# EOF\n");
}

TEST(OpenMetrics, SanitizeEscapesEveryDisallowedByte) {
  // Anything outside [a-zA-Z0-9_:] must collapse to '_' — profiler
  // labels carry dots, benches have used '-' and '/' in prefixes.
  EXPECT_EQ(OpenMetricsExporter::sanitize("prof.net.hop.residency_ns"),
            "prof_net_hop_residency_ns");
  EXPECT_EQ(OpenMetricsExporter::sanitize("ap-1/ran"), "ap_1_ran");
  EXPECT_EQ(OpenMetricsExporter::sanitize("a b\tc"), "a_b_c");
  EXPECT_EQ(OpenMetricsExporter::sanitize("λ.load"), "___load");
}

TEST(OpenMetrics, QuantileLabelsRenderInAscendingOrder) {
  // The summary's quantile labels are part of the exposition contract:
  // fixed set, ascending, each on its own line before _sum/_count.
  MetricsRegistry reg;
  reg.histogram("lat.ms").record(5.0);
  const std::string text = OpenMetricsExporter::render(reg);
  const std::size_t q50 = text.find("lat_ms{quantile=\"0.5\"}");
  const std::size_t q90 = text.find("lat_ms{quantile=\"0.9\"}");
  const std::size_t q95 = text.find("lat_ms{quantile=\"0.95\"}");
  const std::size_t q99 = text.find("lat_ms{quantile=\"0.99\"}");
  ASSERT_NE(q50, std::string::npos);
  EXPECT_LT(q50, q90);
  EXPECT_LT(q90, q95);
  EXPECT_LT(q95, q99);
  EXPECT_LT(q99, text.find("lat_ms_sum"));
  EXPECT_LT(text.find("lat_ms_sum"), text.find("lat_ms_count"));
}

TEST(OpenMetrics, ProfilerCountersExposeOnTheMetricsPath) {
  // EventProfiler::export_metrics lands prof.* counters in a registry;
  // the OpenMetrics render must carry them with dots sanitized — that is
  // the "profiles reachable from the scrape endpoint" satellite.
  EventProfiler prof;
  const std::uint32_t id = prof.intern("net.hop");
  prof.on_schedule(id, 1'000);
  prof.on_execute(id);
  MetricsRegistry reg;
  prof.export_metrics(reg);
  const std::string text = OpenMetricsExporter::render(reg);
  EXPECT_NE(text.find("# TYPE prof_net_hop_schedules counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("prof_net_hop_schedules_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("prof_net_hop_executed_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("prof_net_hop_residency_ns_total 1000\n"),
            std::string::npos);
  EXPECT_NE(text.find("prof_sim_unlabeled_schedules_total 0\n"),
            std::string::npos);
  // Families stay name-sorted with prof.* interleaved alphabetically.
  EXPECT_LT(text.find("prof_net_hop_executed_total"),
            text.find("prof_net_hop_schedules_total"));
}

}  // namespace
}  // namespace dlte::obs
