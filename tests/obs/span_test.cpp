#include "obs/span.h"

#include <gtest/gtest.h>

#include <string>

#include "common/time.h"
#include "obs/metrics.h"

namespace dlte::obs {
namespace {

// A hand-cranked clock: the tests advance simulated time explicitly.
struct FakeClock {
  TimePoint now{};
  [[nodiscard]] SpanTracer::NowFn fn() {
    return [this] { return now; };
  }
  void advance(Duration d) { now = now + d; }
};

TEST(SpanKey, DeterministicAndInputSensitive) {
  // Both sides of a handoff must derive the same key from the same
  // protocol-visible values — and nothing else may collide cheaply.
  static_assert(span_key("gtpu", 5000, 2) == span_key("gtpu", 5000, 2));
  EXPECT_EQ(span_key("attach", 7, 31), span_key("attach", 7, 31));
  EXPECT_NE(span_key("attach", 7, 31), span_key("attach", 7, 32));
  EXPECT_NE(span_key("attach", 7, 31), span_key("attach", 8, 31));
  EXPECT_NE(span_key("attach", 7, 31), span_key("x2", 7, 31));
  EXPECT_NE(span_key("gtpu", 0), span_key("gtpd", 0));
}

TEST(SpanTracer, BeginAssignsSequentialIdsAndStampsClock) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  const SpanId a = t.begin("attach", "ran", kNoSpan);
  clock.advance(Duration::millis(3.0));
  const SpanId b = t.begin("aka", "epc", kNoSpan);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  ASSERT_NE(t.find(b), nullptr);
  EXPECT_EQ(t.find(a)->start, TimePoint{});
  EXPECT_EQ(t.find(b)->start, TimePoint{} + Duration::millis(3.0));
  EXPECT_TRUE(t.find(a)->open);
  EXPECT_EQ(t.open_count(), 2u);
}

TEST(SpanTracer, ActivationStackAutoParents) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  const SpanId root = t.begin("attach", "ran", kNoSpan);
  t.activate(root);
  // kCurrentSpan (the default) adopts the active span.
  const SpanId child = t.begin("aka", "epc");
  EXPECT_EQ(t.find(child)->parent, root);
  // An explicit kNoSpan forces a root even while something is active.
  const SpanId other = t.begin("x2_round", "coord", kNoSpan);
  EXPECT_EQ(t.find(other)->parent, kNoSpan);
  // An explicit parent wins over the stack.
  t.activate(child);
  const SpanId leaf = t.begin("net_delivery", "net", root);
  EXPECT_EQ(t.find(leaf)->parent, root);
  EXPECT_EQ(t.current(), child);
}

TEST(SpanTracer, EndIsIdempotentAndSafeOutOfOrder) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  const SpanId parent = t.begin("handover", "ho", kNoSpan);
  t.activate(parent);
  const SpanId child = t.begin("rrc_reconfiguration", "ho");
  t.activate(child);
  clock.advance(Duration::millis(10.0));
  // Parent ends first: the child survives, and the stack drops every
  // occurrence of the ended span (so the child is no longer "current"
  // through a dead ancestor).
  t.end(parent);
  EXPECT_FALSE(t.find(parent)->open);
  EXPECT_EQ(t.find(parent)->duration(), Duration::millis(10.0));
  EXPECT_EQ(t.current(), child);
  clock.advance(Duration::millis(5.0));
  t.end(child);
  EXPECT_EQ(t.find(child)->duration(), Duration::millis(15.0));
  EXPECT_EQ(t.current(), kNoSpan);
  // Idempotent: a second end must not move the recorded end time.
  clock.advance(Duration::millis(100.0));
  t.end(parent);
  EXPECT_EQ(t.find(parent)->duration(), Duration::millis(10.0));
  // Unknown / kNoSpan ids are ignored.
  t.end(kNoSpan);
  t.end(999);
  EXPECT_EQ(t.open_count(), 0u);
}

TEST(SpanTracer, CapacityOverflowDropsAndCounts) {
  FakeClock clock;
  SpanTracer t{clock.fn(), 2};
  EXPECT_NE(t.begin("a", "c", kNoSpan), kNoSpan);
  EXPECT_NE(t.begin("b", "c", kNoSpan), kNoSpan);
  EXPECT_EQ(t.begin("c", "c", kNoSpan), kNoSpan);
  EXPECT_EQ(t.begin("d", "c", kNoSpan), kNoSpan);
  EXPECT_EQ(t.dropped_spans(), 2u);
  EXPECT_EQ(t.spans().size(), 2u);
  // Every entry point must accept the kNoSpan it just handed out.
  t.annotate(kNoSpan, "k", "v");
  t.end(kNoSpan);
  t.activate(kNoSpan);
  EXPECT_EQ(t.current(), kNoSpan);
}

TEST(SpanTracer, AnnotationsCapPerSpan) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  const SpanId id = t.begin("attach", "ran", kNoSpan);
  for (std::size_t i = 0; i < SpanTracer::kMaxAnnotationsPerSpan + 5; ++i) {
    t.annotate(id, "k" + std::to_string(i), "v");
  }
  EXPECT_EQ(t.find(id)->annotations.size(),
            SpanTracer::kMaxAnnotationsPerSpan);
  EXPECT_EQ(t.dropped_annotations(), 5u);
}

TEST(SpanTracer, AnnotateCurrentTargetsInnermostActiveSpan) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  // No active span: a silent no-op (fault hooks fire outside procedures).
  t.annotate_current("fault", "ap-crash");
  const SpanId outer = t.begin("attach", "ran", kNoSpan);
  t.activate(outer);
  const SpanId inner = t.begin("aka", "epc");
  t.activate(inner);
  clock.advance(Duration::millis(2.0));
  t.annotate_current("fault", "registry outage");
  EXPECT_TRUE(t.find(outer)->annotations.empty());
  ASSERT_EQ(t.find(inner)->annotations.size(), 1u);
  EXPECT_EQ(t.find(inner)->annotations[0].key, "fault");
  EXPECT_EQ(t.find(inner)->annotations[0].value, "registry outage");
  EXPECT_EQ(t.find(inner)->annotations[0].when,
            TimePoint{} + Duration::millis(2.0));
}

TEST(SpanTracer, StashedPeeksAndTakeClaims) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  const SpanId id = t.begin("gtp_uplink", "gtp", kNoSpan);
  const std::uint64_t key = span_key("gtpu", 5000, 0);
  t.stash(key, id);
  EXPECT_EQ(t.stashed(key), id);
  EXPECT_EQ(t.stashed(key), id);  // Peeking does not consume.
  EXPECT_EQ(t.take(key), id);
  EXPECT_EQ(t.take(key), kNoSpan);  // Claimed exactly once.
  EXPECT_EQ(t.stashed(key), kNoSpan);
  EXPECT_EQ(t.take(span_key("gtpu", 5000, 1)), kNoSpan);
  // Stashing kNoSpan (tracing off upstream) leaves the slot empty.
  t.stash(key, kNoSpan);
  EXPECT_EQ(t.stashed(key), kNoSpan);
}

TEST(SpanTracer, MetricsRollupOnFirstEndOnly) {
  FakeClock clock;
  MetricsRegistry reg;
  SpanTracer t{clock.fn(), 2};
  t.set_metrics(&reg, "bench.");
  const SpanId id = t.begin("attach", "ran", kNoSpan);
  clock.advance(Duration::millis(31.0));
  t.end(id);
  t.end(id);  // Idempotent end must not double-record.
  const Histogram* h = reg.find_histogram("bench.span.attach");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 31.0);
  EXPECT_EQ(reg.counter("bench.span.total").value(), 1u);
  // Overflow past capacity lands in span.dropped.
  t.begin("b", "c", kNoSpan);
  t.begin("c", "c", kNoSpan);
  EXPECT_EQ(reg.counter("bench.span.total").value(), 2u);
  EXPECT_EQ(reg.counter("bench.span.dropped").value(), 1u);
}

TEST(SpanTracer, ClocklessTracerFreezesAtLatestSeen) {
  // The bench harness constructs its tracer before any Simulator exists;
  // until set_clock(), timestamps freeze at the latest observed.
  SpanTracer t;
  const SpanId early = t.begin("warmup", "bench", kNoSpan);
  EXPECT_EQ(t.find(early)->start, TimePoint{});
  FakeClock clock;
  clock.advance(Duration::millis(8.0));
  t.set_clock(clock.fn());
  const SpanId late = t.begin("attach", "ran", kNoSpan);
  EXPECT_EQ(t.find(late)->start, TimePoint{} + Duration::millis(8.0));
  EXPECT_EQ(t.latest(), TimePoint{} + Duration::millis(8.0));
  // Detaching the clock again freezes at the high-water mark rather
  // than rewinding.
  t.set_clock({});
  t.end(late);
  EXPECT_EQ(t.find(late)->end, TimePoint{} + Duration::millis(8.0));
}

TEST(NullSafeHelpers, IgnoreNullTracer) {
  EXPECT_EQ(span_begin(nullptr, "attach", "ran"), kNoSpan);
  span_end(nullptr, 1);        // Must not crash.
  span_annotate(nullptr, 1, "k", "v");
  ScopedSpan scoped{nullptr, "attach", "ran"};
  EXPECT_EQ(scoped.id(), kNoSpan);
  scoped.annotate("k", "v");
  ScopedActivation activation{nullptr, kNoSpan};
}

TEST(ScopedSpan, EndsOnDestruction) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  SpanId id = kNoSpan;
  {
    ScopedSpan scoped{&t, "registry_query", "registry"};
    id = scoped.id();
    scoped.annotate("grants", "2");
    clock.advance(Duration::millis(4.0));
  }
  ASSERT_NE(t.find(id), nullptr);
  EXPECT_FALSE(t.find(id)->open);
  EXPECT_EQ(t.find(id)->duration(), Duration::millis(4.0));
  ASSERT_EQ(t.find(id)->annotations.size(), 1u);
  EXPECT_EQ(t.find(id)->annotations[0].key, "grants");
}

TEST(ScopedActivation, RestoresPreviousCurrent) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  const SpanId outer = t.begin("x2_round", "coord", kNoSpan);
  t.activate(outer);
  {
    const SpanId inner = t.begin("net_delivery", "net");
    ScopedActivation act{&t, inner};
    EXPECT_EQ(t.current(), inner);
    {
      // kNoSpan activation is a no-op, not a stack entry.
      ScopedActivation noop{&t, kNoSpan};
      EXPECT_EQ(t.current(), inner);
    }
  }
  EXPECT_EQ(t.current(), outer);
}

TEST(SpanTracer, ActivateRejectsClosedSpans) {
  FakeClock clock;
  SpanTracer t{clock.fn()};
  const SpanId id = t.begin("attach", "ran", kNoSpan);
  t.end(id);
  t.activate(id);
  EXPECT_EQ(t.current(), kNoSpan);
}

}  // namespace
}  // namespace dlte::obs
