#include "obs/json.h"

#include <gtest/gtest.h>

#include <limits>

namespace dlte::obs {
namespace {

TEST(JsonWriter, ObjectWithMixedValues) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("hi");
  w.key("i").value(std::int64_t{-3});
  w.key("u").value(std::uint64_t{7});
  w.key("b").value(true);
  w.key("n").null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"s":"hi","i":-3,"u":7,"b":true,"n":null})");
}

TEST(JsonWriter, NestedContainersCommaPlacement) {
  JsonWriter w;
  w.begin_object();
  w.key("a").begin_array();
  w.value(1).value(2);
  w.begin_object();
  w.key("x").value(3);
  w.end_object();
  w.end_array();
  w.key("b").value(4);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":[1,2,{"x":3}],"b":4})");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("o").begin_object().end_object();
  w.key("a").begin_array().end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"o":{},"a":[]})");
}

TEST(JsonWriter, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape("cr\rlf"), "cr\\rlf");
  EXPECT_EQ(JsonWriter::escape(std::string{"\x01", 1}), "\\u0001");
  EXPECT_EQ(JsonWriter::escape(std::string{"\x1f", 1}), "\\u001f");
}

TEST(JsonWriter, EscapedStringValueRoundsThroughWriter) {
  JsonWriter w;
  w.begin_object();
  w.key("msg\"key").value("a\nb");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"msg\\\"key\":\"a\\nb\"}");
}

TEST(JsonWriter, FormatDoubleIntegralValuesPrintAsIntegers) {
  EXPECT_EQ(JsonWriter::format_double(0.0), "0");
  EXPECT_EQ(JsonWriter::format_double(1.0), "1");
  EXPECT_EQ(JsonWriter::format_double(-42.0), "-42");
  EXPECT_EQ(JsonWriter::format_double(1e6), "1000000");
}

TEST(JsonWriter, FormatDoubleShortestRoundTrip) {
  EXPECT_EQ(JsonWriter::format_double(0.5), "0.5");
  EXPECT_EQ(JsonWriter::format_double(-2.25), "-2.25");
  // Shortest form that round-trips, not a fixed precision.
  EXPECT_EQ(JsonWriter::format_double(0.1), "0.1");
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(JsonWriter::format_double(
                std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(JsonWriter::format_double(
                std::numeric_limits<double>::infinity()),
            "null");
  JsonWriter w;
  w.begin_object();
  w.key("v").value(std::numeric_limits<double>::infinity());
  w.end_object();
  EXPECT_EQ(w.str(), R"({"v":null})");
}

}  // namespace
}  // namespace dlte::obs
