#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/time.h"
#include "obs/span.h"

namespace dlte::obs {
namespace {

bool contains(const std::string& doc, const std::string& needle) {
  return doc.find(needle) != std::string::npos;
}

// Drives a tracer through a representative attach + data slice. Taking
// the tracer by reference lets the determinism test run the exact same
// schedule twice against two independent instances.
void drive(SpanTracer& t) {
  TimePoint now{};
  t.set_clock([&now] { return now; });
  const SpanId attach = t.begin("attach", "ap1/ran", kNoSpan);
  t.activate(attach);
  now = now + Duration::millis(2.0);
  const SpanId aka = t.begin("aka", "ap1/epc");
  t.annotate(aka, "rand", "deadbeef");
  now = now + Duration::millis(31.0);
  t.end(aka);
  now = now + Duration::millis(1.0);
  t.end(attach);
  const SpanId up = t.begin("gtp_uplink", "core/gtp", kNoSpan);
  now = now + Duration::millis(15.0);
  t.end(up);
}

TEST(ChromeTraceExporter, ByteIdenticalForIdenticalRuns) {
  // The determinism contract CI leans on: same schedule, same bytes.
  SpanTracer a;
  SpanTracer b;
  drive(a);
  drive(b);
  EXPECT_EQ(ChromeTraceExporter::to_json(a), ChromeTraceExporter::to_json(b));
}

TEST(ChromeTraceExporter, DocumentShapeAndMetadata) {
  SpanTracer t;
  drive(t);
  const std::string doc = ChromeTraceExporter::to_json(t);
  EXPECT_TRUE(contains(doc, "\"displayTimeUnit\":\"ms\""));
  EXPECT_TRUE(contains(doc, "\"generator\":\"dlte-span-tracer\""));
  EXPECT_TRUE(contains(doc, "\"span_count\":3"));
  EXPECT_TRUE(contains(doc, "\"open_spans\":0"));
  EXPECT_TRUE(contains(doc, "\"dropped_spans\":0"));
  EXPECT_TRUE(contains(doc, "\"process_name\""));
  // One named track per category, so Perfetto shows components apart.
  EXPECT_TRUE(contains(doc, "\"name\":\"ap1/ran\""));
  EXPECT_TRUE(contains(doc, "\"name\":\"ap1/epc\""));
  EXPECT_TRUE(contains(doc, "\"name\":\"core/gtp\""));
  EXPECT_TRUE(contains(doc, "\"ph\":\"X\""));
}

TEST(ChromeTraceExporter, CausalityRidesInArgs) {
  SpanTracer t;
  drive(t);
  const std::string doc = ChromeTraceExporter::to_json(t);
  // Span 2 (aka) is parented under span 1 (attach); annotations are
  // plain args keys.
  EXPECT_TRUE(contains(doc, "\"id\":2,\"parent\":1,\"rand\":\"deadbeef\""));
  EXPECT_TRUE(contains(doc, "\"id\":1,\"parent\":0"));
}

TEST(ChromeTraceExporter, OpenSpansCloseAtLatestAndAreFlagged) {
  TimePoint now{};
  SpanTracer t{[&now] { return now; }};
  const SpanId id = t.begin("x2_round", "coord", kNoSpan);
  now = now + Duration::millis(40.0);
  t.annotate(id, "peers", "1");  // Advances latest() without ending.
  const std::string doc = ChromeTraceExporter::to_json(t);
  EXPECT_TRUE(contains(doc, "\"open\":\"true\""));
  EXPECT_TRUE(contains(doc, "\"open_spans\":1"));
  // 40 ms of simulated time, exported in microseconds.
  EXPECT_TRUE(contains(doc, "\"dur\":40000"));
  EXPECT_TRUE(t.find(id)->open);  // Export must not mutate the tracer.
}

TEST(ChromeTraceExporter, ReservedAndDuplicateKeysGetSuffixed) {
  SpanTracer t;
  const SpanId id = t.begin("attach", "ran", kNoSpan);
  t.annotate(id, "id", "spoof");      // Collides with the reserved key.
  t.annotate(id, "retry", "first");
  t.annotate(id, "retry", "second");  // Duplicate annotation key.
  const std::string doc = ChromeTraceExporter::to_json(t);
  EXPECT_TRUE(contains(doc, "\"id#1\":\"spoof\""));
  EXPECT_TRUE(contains(doc, "\"retry\":\"first\""));
  EXPECT_TRUE(contains(doc, "\"retry#2\":\"second\""));
}

TEST(ChromeTraceExporter, EscapesAnnotationStrings) {
  SpanTracer t;
  const SpanId id = t.begin("attach", "ran", kNoSpan);
  t.annotate(id, "msg", "quote \" backslash \\ newline \n done");
  const std::string doc = ChromeTraceExporter::to_json(t);
  EXPECT_TRUE(
      contains(doc, "\"msg\":\"quote \\\" backslash \\\\ newline \\n done\""));
}

TEST(ChromeTraceExporter, WriteFileMatchesToJson) {
  SpanTracer t;
  drive(t);
  const std::string path =
      testing::TempDir() + "/dlte_trace_export_test.json";
  ASSERT_TRUE(ChromeTraceExporter::write_file(t, path));
  std::ifstream in{path, std::ios::binary};
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), ChromeTraceExporter::to_json(t) + "\n");
  std::remove(path.c_str());
}

TEST(ChromeTraceExporter, FailsCleanlyOnUnwritablePath) {
  SpanTracer t;
  drive(t);
  EXPECT_FALSE(
      ChromeTraceExporter::write_file(t, "/nonexistent-dir/trace.json"));
}

}  // namespace
}  // namespace dlte::obs
