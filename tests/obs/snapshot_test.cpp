#include "obs/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace dlte::obs {
namespace {

// Deterministic pseudo-random stream standing in for a seeded run.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  double next_double() {
    return static_cast<double>(next() % 1'000'000) / 997.0;
  }

 private:
  std::uint64_t state_;
};

// One "seeded run": the kind of mixed-metric activity a scenario drives.
void seeded_run(MetricsRegistry& reg, std::uint64_t seed) {
  Lcg rng{seed};
  for (int i = 0; i < 500; ++i) {
    reg.counter("epc.messages_processed").inc(rng.next() % 5);
    reg.histogram("epc.attach_latency_ms").record(rng.next_double());
    reg.gauge("sim.max_queue_depth").set_max(rng.next_double());
  }
  reg.counter("net.packets_sent").inc(rng.next());
  reg.gauge("x2.share").set(rng.next_double());
}

TEST(MetricsSnapshot, SameSeedSnapshotsAreByteIdentical) {
  MetricsRegistry a;
  MetricsRegistry b;
  seeded_run(a, 2018);
  seeded_run(b, 2018);
  const std::string ja = MetricsSnapshot{a}.to_json();
  const std::string jb = MetricsSnapshot{b}.to_json();
  EXPECT_EQ(ja, jb);
  EXPECT_FALSE(ja.empty());
}

TEST(MetricsSnapshot, DifferentSeedSnapshotsDiffer) {
  MetricsRegistry a;
  MetricsRegistry b;
  seeded_run(a, 2018);
  seeded_run(b, 2019);
  EXPECT_NE(MetricsSnapshot{a}.to_json(), MetricsSnapshot{b}.to_json());
}

TEST(MetricsSnapshot, InsertionOrderDoesNotAffectOutput) {
  MetricsRegistry a;
  a.counter("zebra").inc(1);
  a.counter("apple").inc(2);
  a.gauge("mid").set(3.0);
  MetricsRegistry b;
  b.gauge("mid").set(3.0);
  b.counter("apple").inc(2);
  b.counter("zebra").inc(1);
  EXPECT_EQ(MetricsSnapshot{a}.to_json(), MetricsSnapshot{b}.to_json());
  // Names serialize sorted, so diffs are stable across code motion.
  const std::string j = MetricsSnapshot{a}.to_json();
  EXPECT_LT(j.find("apple"), j.find("zebra"));
}

TEST(MetricsSnapshot, EmptyRegistrySerializesAllSections) {
  MetricsRegistry reg;
  EXPECT_EQ(MetricsSnapshot{reg}.to_json(),
            R"({"counters":{},"gauges":{},"histograms":{}})");
}

TEST(MetricsSnapshot, HistogramSectionCarriesSummary) {
  MetricsRegistry reg;
  for (int i = 1; i <= 100; ++i) {
    reg.histogram("lat").record(static_cast<double>(i));
  }
  const std::string j = MetricsSnapshot{reg}.to_json();
  EXPECT_NE(j.find(R"("lat":{"count":100)"), std::string::npos);
  EXPECT_NE(j.find("\"p99\":"), std::string::npos);
  EXPECT_NE(j.find("\"mean\":"), std::string::npos);
}

}  // namespace
}  // namespace dlte::obs
