#include "obs/merge.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <iterator>
#include <vector>

#include "obs/series_export.h"
#include "obs/snapshot.h"

namespace dlte::obs {
namespace {

TEST(HistogramMerge, MergedEqualsSingleRecorder) {
  // The shard-invariance property: recording a stream into one histogram
  // or splitting it across two and merging must give identical stats.
  Histogram whole, left, right;
  for (int i = 0; i < 200; ++i) {
    const double v = 0.5 + static_cast<double>(i % 37);
    whole.record(v);
    (i % 2 == 0 ? left : right).record(v);
  }
  left.merge_from(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  EXPECT_DOUBLE_EQ(left.quantile(0.5), whole.quantile(0.5));
  EXPECT_DOUBLE_EQ(left.quantile(0.95), whole.quantile(0.95));
}

TEST(HistogramMerge, EmptySidesAreNeutral) {
  Histogram a, b;
  a.record(3.0);
  a.merge_from(b);  // Empty source: no-op.
  EXPECT_EQ(a.count(), 1u);
  b.merge_from(a);  // Empty destination: copies extrema.
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.min(), 3.0);
  EXPECT_DOUBLE_EQ(b.max(), 3.0);
}

TEST(HistogramMerge, MismatchedBucketLayoutsUnion) {
  // Shards observing disjoint value ranges occupy disjoint sparse-bucket
  // sets; merging must union them, not assume aligned layouts. Include
  // the underflow bucket (zero/negative samples) on one side only.
  Histogram whole, tiny, huge;
  const double small_vals[] = {0.001, 0.002, -1.0};
  const double big_vals[] = {1e6, 2e6, 4e6};
  for (const double v : small_vals) {
    whole.record(v);
    tiny.record(v);
  }
  for (const double v : big_vals) {
    whole.record(v);
    huge.record(v);
  }
  tiny.merge_from(huge);
  EXPECT_EQ(tiny.count(), whole.count());
  EXPECT_DOUBLE_EQ(tiny.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(tiny.min(), whole.min());
  EXPECT_DOUBLE_EQ(tiny.max(), whole.max());
  for (const double q : {0.25, 0.5, 0.95}) {
    EXPECT_DOUBLE_EQ(tiny.quantile(q), whole.quantile(q));
  }
}

TEST(MergeRegistry, EmptyRegistryFoldsAreNeutral) {
  MetricsRegistry populated, empty;
  populated.counter("c").inc(5);
  populated.gauge("g").set(2.5);
  populated.histogram("h").record(1.0);
  // Folding an empty source changes nothing.
  merge_registry(populated, empty);
  EXPECT_EQ(populated.counter("c").value(), 5u);
  EXPECT_DOUBLE_EQ(populated.gauge("g").value(), 2.5);
  EXPECT_EQ(populated.histogram("h").count(), 1u);
  // Folding into an empty destination copies everything.
  MetricsRegistry dst;
  merge_registry(dst, populated);
  EXPECT_EQ(dst.counter("c").value(), 5u);
  EXPECT_DOUBLE_EQ(dst.gauge("g").value(), 2.5);
  EXPECT_EQ(dst.histogram("h").count(), 1u);
}

TEST(MergeRegistry, GaugeMaxInvariantAcrossShardCounts) {
  // The same observation stream split over 1, 2, or 4 shard registries
  // must fold to the same "worst observed" gauge — the property that
  // lets per-shard sim.max_queue_depth merge into one compared value.
  const double observations[] = {3.0, 11.0, 7.0, 2.0, 9.0, 5.0, 8.0, 1.0};
  for (const std::size_t shard_count : {1u, 2u, 4u}) {
    std::vector<MetricsRegistry> shards(shard_count);
    for (std::size_t i = 0; i < std::size(observations); ++i) {
      shards[i % shard_count].gauge("worst").set_max(observations[i]);
    }
    MetricsRegistry merged;
    for (const MetricsRegistry& shard : shards) {
      merge_registry(merged, shard);
    }
    EXPECT_DOUBLE_EQ(merged.gauge("worst").value(), 11.0)
        << "shard_count=" << shard_count;
  }
}

TEST(MergeRegistry, CountersAddGaugesMaxHistogramsMerge) {
  MetricsRegistry a, b, merged;
  a.counter("shared.count").inc(3);
  b.counter("shared.count").inc(4);
  a.gauge("shared.worst").set(2.0);
  b.gauge("shared.worst").set(9.0);
  a.histogram("ap0.lat").record(1.0);
  b.histogram("ap1.lat").record(5.0);
  merge_registry(merged, a);
  merge_registry(merged, b);
  EXPECT_EQ(merged.counter("shared.count").value(), 7u);
  EXPECT_DOUBLE_EQ(merged.gauge("shared.worst").value(), 9.0);
  EXPECT_EQ(merged.histogram("ap0.lat").count(), 1u);
  EXPECT_EQ(merged.histogram("ap1.lat").count(), 1u);
}

TEST(MergeRegistry, PrefixRelocatesNames) {
  MetricsRegistry src, dst;
  src.counter("sim.events_executed").inc(11);
  merge_registry(dst, src, "par.shard0.");
  EXPECT_EQ(dst.counter("par.shard0.sim.events_executed").value(), 11u);
  EXPECT_EQ(dst.find_counter("sim.events_executed"), nullptr);
}

TEST(MergedSeriesJson, SingleSamplerMatchesSeriesExporter) {
  MetricsRegistry reg;
  reg.counter("ap0.x2.tx").inc(2);
  reg.gauge("ap0.load").set(0.5);
  TimeSeriesSampler sampler{reg};
  sampler.sample(TimePoint::from_ns(0) + Duration::millis(500));
  reg.counter("ap0.x2.tx").inc(3);
  sampler.sample(TimePoint::from_ns(0) + Duration::millis(1000));

  EXPECT_EQ(merged_series_json({&sampler}, "t"),
            SeriesExporter::to_json(sampler, nullptr, "t"));
}

TEST(MergedSeriesJson, UnionOfDisjointSamplersEqualsCombinedRun) {
  // Two registries holding disjoint halves of the metric namespace,
  // sampled at the same instants, must merge into the same document a
  // single combined registry produces — the 1-vs-N shard series check.
  MetricsRegistry whole, part0, part1;
  whole.counter("ap0.c").inc(1);
  whole.counter("ap1.c").inc(2);
  part0.counter("ap0.c").inc(1);
  part1.counter("ap1.c").inc(2);
  TimeSeriesSampler sw{whole}, s0{part0}, s1{part1};
  for (int k = 1; k <= 3; ++k) {
    const TimePoint t = TimePoint::from_ns(0) + Duration::millis(500 * k);
    sw.sample(t);
    s0.sample(t);
    s1.sample(t);
  }
  EXPECT_EQ(merged_series_json({&s0, &s1}, "t"),
            merged_series_json({&sw}, "t"));
}

}  // namespace
}  // namespace dlte::obs
