#include "obs/timer.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace dlte::obs {
namespace {

// A hand-cranked simulated clock: tests advance it explicitly, exactly
// how ScopedTimer consumes sim::Simulator::now() in the stack.
struct FakeClock {
  TimePoint now{};
  void advance(Duration d) { now = now + d; }
  [[nodiscard]] ScopedTimer::NowFn fn() {
    return [this] { return now; };
  }
};

TEST(ScopedTimer, RecordsElapsedSimulatedMillis) {
  FakeClock clock;
  Histogram h;
  {
    ScopedTimer t{h, clock.fn()};
    clock.advance(Duration::millis(250));
  }  // Destructor records.
  ASSERT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 250.0);
}

TEST(ScopedTimer, StopIsIdempotent) {
  FakeClock clock;
  Histogram h;
  ScopedTimer t{h, clock.fn()};
  clock.advance(Duration::millis(10));
  t.stop();
  clock.advance(Duration::millis(90));
  t.stop();  // No second sample.
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
}

TEST(ScopedTimer, CancelRecordsNothing) {
  FakeClock clock;
  Histogram h;
  {
    ScopedTimer t{h, clock.fn()};
    clock.advance(Duration::millis(10));
    t.cancel();
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(ScopedTimer, NestedTimersMeasureTheirOwnSpans) {
  FakeClock clock;
  Histogram outer;
  Histogram inner;
  {
    ScopedTimer to{outer, clock.fn()};
    clock.advance(Duration::millis(100));
    {
      ScopedTimer ti{inner, clock.fn()};
      clock.advance(Duration::millis(40));
    }
    clock.advance(Duration::millis(60));
  }
  ASSERT_EQ(inner.count(), 1u);
  ASSERT_EQ(outer.count(), 1u);
  EXPECT_DOUBLE_EQ(inner.sum(), 40.0);
  EXPECT_DOUBLE_EQ(outer.sum(), 200.0);
}

TEST(ScopedTimer, CustomScaleRecordsSeconds) {
  FakeClock clock;
  Histogram h;
  {
    ScopedTimer t{h, clock.fn(), 1e-9};  // Nanoseconds -> seconds.
    clock.advance(Duration::seconds(3.0));
  }
  ASSERT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.0);
}

TEST(ScopedTimer, SameSimulatedInstantRecordsZero) {
  FakeClock clock;
  Histogram h;
  { ScopedTimer t{h, clock.fn()}; }
  ASSERT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

}  // namespace
}  // namespace dlte::obs
