// Determinism audit plane, layer 1 (DESIGN.md §15): the digest algebra
// the whole localization story rests on. The merged section is only
// partition-invariant if MultisetDigest folds commute, the per-shard
// chains only catch reorders if the chain fold does NOT commute, and
// build_audit_doc must treat an idle shard as an identity fold — the
// same contracts the par-level determinism tests then exercise end to
// end.
#include "obs/audit.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/merge.h"
#include "obs/metrics.h"
#include "obs/prof.h"

namespace dlte::obs {
namespace {

TEST(FnvDigest, BytesMatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors: the empty string hashes to the
  // offset basis, "a" and "abc" to their well-known values.
  EXPECT_EQ(fnv_bytes("", 0), kFnvOffset);
  EXPECT_EQ(fnv_bytes("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv_bytes("abc", 3), 0xe71fa2190541574bull);
}

TEST(FnvDigest, MixIsOrderSensitive) {
  const std::uint64_t ab = fnv_mix(fnv_mix(kFnvOffset, 1), 2);
  const std::uint64_t ba = fnv_mix(fnv_mix(kFnvOffset, 2), 1);
  EXPECT_NE(ab, ba);  // Chains must see pure reorders.
}

TEST(MultisetDigest, AddCommutesAndMergeEqualsUnion) {
  MultisetDigest forward, backward, left, right;
  const std::vector<std::uint64_t> hashes{7, 42, 42, 9001, 1u << 20};
  for (const std::uint64_t h : hashes) forward.add(h);
  for (auto it = hashes.rbegin(); it != hashes.rend(); ++it)
    backward.add(*it);
  EXPECT_EQ(forward, backward);  // Add order never matters.
  for (std::size_t i = 0; i < hashes.size(); ++i)
    (i % 2 == 0 ? left : right).add(hashes[i]);
  left.merge(right);  // Partitioning + merge == observing the union.
  EXPECT_EQ(left, forward);
}

TEST(MultisetDigest, EmptyMergeIsIdentityAndDuplicatesCount) {
  MultisetDigest digest, empty;
  digest.add(13);
  const MultisetDigest before = digest;
  digest.merge(empty);  // An idle shard folds in as a no-op.
  EXPECT_EQ(digest, before);
  // xor alone would cancel a duplicated hash; count/sum must not.
  MultisetDigest once, twice;
  once.add(13);
  twice.add(13);
  twice.add(13);
  EXPECT_NE(once, twice);
}

DigestTimeline labeled_timeline() {
  DigestTimeline timeline{1000};  // 1 us windows.
  timeline.register_label(0, "sim.unlabeled");
  timeline.register_label(1, "test.alpha");
  timeline.register_label(2, "test.beta");
  return timeline;
}

TEST(DigestTimeline, WindowsOnTheFixedGrid) {
  DigestTimeline timeline = labeled_timeline();
  timeline.on_execute(0, 0, 1);
  timeline.on_execute(999, 1, 1);    // Still window 0: [0, 1000).
  timeline.on_execute(1000, 2, 2);   // First tick of window 1.
  timeline.on_execute(3500, 3, 2);   // Window 3; window 2 stays empty.
  ASSERT_EQ(timeline.windows().size(), 4u);
  EXPECT_EQ(timeline.windows()[0].events, 2u);
  EXPECT_EQ(timeline.windows()[1].events, 1u);
  EXPECT_EQ(timeline.windows()[2].events, 0u);
  EXPECT_EQ(timeline.windows()[3].events, 1u);
  EXPECT_EQ(timeline.windows()[2].chain, kFnvOffset);  // Untouched basis.
  EXPECT_EQ(timeline.events_total(), 4u);
}

TEST(DigestTimeline, ChainSeesReorderMultisetDoesNot) {
  // Two same-timestamp same-label events swapping execution order: the
  // scenario metrics cannot see it, the order-independent digests must
  // not see it, and the chain MUST.
  DigestTimeline ab = labeled_timeline();
  ab.on_execute(100, 5, 1);
  ab.on_execute(100, 6, 1);
  DigestTimeline ba = labeled_timeline();
  ba.on_execute(100, 6, 1);
  ba.on_execute(100, 5, 1);
  const DigestTimeline::Window& wab = ab.windows()[0];
  const DigestTimeline::Window& wba = ba.windows()[0];
  EXPECT_NE(wab.chain, wba.chain);
  EXPECT_EQ(wab.all, wba.all);
  ASSERT_GT(wab.labels.size(), 1u);
  EXPECT_EQ(wab.labels[1], wba.labels[1]);  // Same {h1} multiset.
}

TEST(DigestTimeline, SeqShiftMovesTheLabelMultiset) {
  // The hold-back failure mode: the same events execute with shifted
  // seq numbers. The seq-free merged digest holds; the seq-inclusive
  // per-label digest is what localizes the label.
  DigestTimeline clean = labeled_timeline();
  clean.on_execute(100, 5, 1);
  DigestTimeline shifted = labeled_timeline();
  shifted.on_execute(100, 6, 1);
  EXPECT_EQ(clean.windows()[0].all, shifted.windows()[0].all);
  EXPECT_NE(clean.windows()[0].labels[1], shifted.windows()[0].labels[1]);
}

TEST(DigestTimeline, UnregisteredLabelFoldsAsUnlabeled) {
  // An id interned before the auditor attached has no name hash; the
  // hot path must clamp to the unlabeled bucket, never read OOB.
  DigestTimeline clamped = labeled_timeline();
  clamped.on_execute(100, 0, 999);
  DigestTimeline unlabeled = labeled_timeline();
  unlabeled.on_execute(100, 0, 0);
  EXPECT_EQ(clamped.windows()[0].chain, unlabeled.windows()[0].chain);
  EXPECT_EQ(clamped.windows()[0].labels[0], unlabeled.windows()[0].labels[0]);
}

TEST(DigestTimeline, RegisterLabelIsIdempotentByIdAndGrows) {
  DigestTimeline timeline{1000};
  timeline.register_label(0, "sim.unlabeled");
  timeline.register_label(3, "test.sparse");  // Ids 1..2 fill as blanks.
  EXPECT_EQ(timeline.label_count(), 4u);
  timeline.on_execute(10, 0, 3);
  const std::uint64_t chain = timeline.windows()[0].chain;
  timeline.register_label(3, "test.sparse");  // Re-intern: no state reset.
  EXPECT_EQ(timeline.label_count(), 4u);
  EXPECT_EQ(timeline.windows()[0].chain, chain);
  EXPECT_EQ(timeline.label_name(3), "test.sparse");
}

TEST(MessageLedger, PairChainsSeeInjectionOrder) {
  const std::uint8_t payload[] = {0xde, 0xad};
  MessageLedger ab{1000};
  ab.on_message(100, 1, 0, 7, payload, sizeof payload, 0, 1);
  ab.on_message(100, 2, 0, 7, payload, sizeof payload, 0, 1);
  MessageLedger ba{1000};
  ba.on_message(100, 2, 0, 7, payload, sizeof payload, 0, 1);
  ba.on_message(100, 1, 0, 7, payload, sizeof payload, 0, 1);
  ASSERT_EQ(ab.windows().size(), 1u);
  const MessageLedger::Window& wab = ab.windows().at(0);
  const MessageLedger::Window& wba = ba.windows().at(0);
  EXPECT_EQ(wab.all, wba.all);  // Same multiset: merged section agrees.
  const MessageLedger::PairCell& cab = wab.pairs.at({0, 1});
  const MessageLedger::PairCell& cba = wba.pairs.at({0, 1});
  EXPECT_EQ(cab.messages, 2u);
  EXPECT_NE(cab.chain, cba.chain);  // The per-shard section does not.
}

TEST(MessageLedger, WindowsByDeliveryTimeAndPayloadMatters) {
  const std::uint8_t pay_a[] = {1};
  const std::uint8_t pay_b[] = {2};
  MessageLedger ledger{1000};
  ledger.on_message(500, 1, 0, 7, pay_a, sizeof pay_a, 0, 1);
  ledger.on_message(2500, 1, 1, 7, pay_a, sizeof pay_a, 1, 0);
  ASSERT_EQ(ledger.windows().size(), 2u);
  EXPECT_EQ(ledger.windows().count(0), 1u);
  EXPECT_EQ(ledger.windows().count(2), 1u);  // Sparse: window 1 absent.
  EXPECT_EQ(ledger.messages_total(), 2u);
  MessageLedger other{1000};
  other.on_message(500, 1, 0, 7, pay_b, sizeof pay_b, 0, 1);
  EXPECT_NE(ledger.windows().at(0).all, other.windows().at(0).all);
}

TEST(RegistryDigest, PartitionInvariantUnderMerge) {
  // The metric-window digest contract: folding per-shard registry
  // digests must equal digesting the merged registry, because the merge
  // naming contract keeps every instrument name in exactly one shard.
  MetricsRegistry left, right, merged;
  left.counter("a.attaches").inc(3);
  left.gauge("a.load").set(0.25);
  left.histogram("a.rtt").record(1.5);
  right.counter("b.attaches").inc(5);
  right.histogram("b.rtt").record(2.5);
  merge_registry(merged, left);
  merge_registry(merged, right);
  MultisetDigest folded = digest_registry(left);
  folded.merge(digest_registry(right));
  EXPECT_EQ(folded, digest_registry(merged));
}

TEST(RegistryDigest, SeesValueTypeAndNameChanges) {
  MetricsRegistry base;
  base.counter("x").inc(1);
  MetricsRegistry bumped;
  bumped.counter("x").inc(2);
  EXPECT_NE(digest_registry(base), digest_registry(bumped));
  MetricsRegistry renamed;
  renamed.counter("y").inc(1);
  EXPECT_NE(digest_registry(base), digest_registry(renamed));
  MetricsRegistry retyped;  // Same name, gauge holding the same number.
  retyped.gauge("x").set(1.0);
  EXPECT_NE(digest_registry(base), digest_registry(retyped));
  EXPECT_EQ(digest_registry(MetricsRegistry{}).count, 0u);
}

TEST(AuditDoc, EmptyShardsFoldAsIdentity) {
  // A shard that executed nothing must not perturb the merged section —
  // the same neutrality EventProfiler::merge_from grants an empty
  // profiler in the prof plane.
  DigestTimeline busy = labeled_timeline();
  busy.on_execute(100, 0, 1);
  busy.on_execute(1200, 1, 2);
  DigestTimeline idle{1000};
  idle.register_label(0, "sim.unlabeled");
  const AuditDoc solo = build_audit_doc({&busy}, nullptr, {});
  const AuditDoc with_idle = build_audit_doc({&busy, &idle}, nullptr, {});
  EXPECT_EQ(with_idle.shards, 2u);
  EXPECT_EQ(with_idle.events_total, solo.events_total);
  ASSERT_EQ(with_idle.merged.size(), solo.merged.size());
  for (std::size_t i = 0; i < solo.merged.size(); ++i) {
    EXPECT_EQ(with_idle.merged[i].events, solo.merged[i].events);
    EXPECT_EQ(with_idle.merged[i].events_digest, solo.merged[i].events_digest);
  }
}

TEST(AuditDoc, BuildCoversLedgerLabelsAndMetricWindows) {
  DigestTimeline timeline = labeled_timeline();
  timeline.on_execute(100, 0, 1);
  MessageLedger ledger{1000};
  const std::uint8_t payload[] = {9};
  ledger.on_message(100, 1, 0, 7, payload, sizeof payload, 0, 1);
  std::vector<AuditDoc::MetricWindow> metrics(1);
  metrics[0].index = 0;
  metrics[0].t_ns = 1000;
  metrics[0].digest.add(42);
  const AuditDoc doc = build_audit_doc({&timeline}, &ledger,
                                       std::move(metrics));
  EXPECT_EQ(doc.window_ns, 1000);
  EXPECT_EQ(doc.events_total, 1u);
  EXPECT_EQ(doc.messages_total, 1u);
  ASSERT_EQ(doc.merged.size(), 1u);
  EXPECT_EQ(doc.merged[0].messages, 1u);
  ASSERT_EQ(doc.metric_windows.size(), 1u);
  EXPECT_EQ(doc.metric_windows[0].t_ns, 1000);
  ASSERT_EQ(doc.shard_timelines.size(), 1u);
  ASSERT_EQ(doc.shard_timelines[0].windows.size(), 1u);
  // Zero-count labels elide: only test.alpha shows up, by name.
  ASSERT_EQ(doc.shard_timelines[0].windows[0].labels.size(), 1u);
  EXPECT_EQ(doc.shard_timelines[0].windows[0].labels[0].name, "test.alpha");
  ASSERT_EQ(doc.ledger.size(), 1u);
  ASSERT_EQ(doc.ledger[0].pairs.size(), 1u);
  EXPECT_EQ(doc.ledger[0].pairs[0].src_shard, 0u);
  EXPECT_EQ(doc.ledger[0].pairs[0].dst_shard, 1u);
}

TEST(AuditDoc, EmptyProfilerMergeStaysNeutralBesideTheAudit) {
  // The audit doc and the attribution profile ride out of the same
  // runtime fold; an idle shard must be neutral in BOTH planes.
  EventProfiler busy, idle;
  const std::uint32_t id = busy.intern("test.alpha");
  busy.on_schedule(id, 500);
  busy.on_execute(id);
  const std::size_t labels_before = busy.label_count();
  busy.merge_from(idle);
  EXPECT_EQ(busy.label_count(), labels_before);
}

}  // namespace
}  // namespace dlte::obs
