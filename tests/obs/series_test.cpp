#include "obs/series.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/series_export.h"
#include "obs/slo.h"

namespace dlte::obs {
namespace {

TimePoint at(double t_s) { return TimePoint{} + Duration::seconds(t_s); }

TEST(TimeSeries, RingDropsOldestAndCounts) {
  TimeSeries s{SeriesKind::kGauge, 3};
  for (int i = 0; i < 5; ++i) {
    s.push(static_cast<double>(i), static_cast<double>(i * 10));
  }
  ASSERT_EQ(s.points().size(), 3u);
  EXPECT_EQ(s.dropped(), 2u);
  // The two oldest points fell out of the window.
  EXPECT_DOUBLE_EQ(s.points().front().t_s, 2.0);
  EXPECT_DOUBLE_EQ(s.points().front().value, 20.0);
  EXPECT_DOUBLE_EQ(s.latest(), 40.0);
}

TEST(TimeSeriesSampler, CounterSeriesCumulativeAndRate) {
  MetricsRegistry reg;
  Counter& c = reg.counter("pkts");
  TimeSeriesSampler sampler{reg};

  c.inc(10);
  sampler.sample(at(1.0));
  c.inc(30);
  sampler.sample(at(3.0));
  sampler.sample(at(4.0));

  const TimeSeries* cumulative = sampler.find("pkts");
  ASSERT_NE(cumulative, nullptr);
  EXPECT_EQ(cumulative->kind(), SeriesKind::kCounter);
  ASSERT_EQ(cumulative->points().size(), 3u);
  EXPECT_DOUBLE_EQ(cumulative->points()[0].value, 10.0);
  EXPECT_DOUBLE_EQ(cumulative->points()[1].value, 40.0);
  EXPECT_DOUBLE_EQ(cumulative->points()[2].value, 40.0);

  const TimeSeries* rate = sampler.find("pkts.rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->kind(), SeriesKind::kCounterRate);
  ASSERT_EQ(rate->points().size(), 3u);
  EXPECT_DOUBLE_EQ(rate->points()[0].value, 0.0);  // No previous sample.
  EXPECT_DOUBLE_EQ(rate->points()[1].value, 15.0);  // +30 over 2 s.
  EXPECT_DOUBLE_EQ(rate->points()[2].value, 0.0);
  EXPECT_EQ(sampler.samples(), 3u);
}

TEST(TimeSeriesSampler, GaugeAndHistogramDerivedSeries) {
  MetricsRegistry reg;
  reg.gauge("load").set(0.25);
  Histogram& h = reg.histogram("lat_ms");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  TimeSeriesSampler sampler{reg};
  sampler.sample(at(0.5));

  const TimeSeries* load = sampler.find("load");
  ASSERT_NE(load, nullptr);
  EXPECT_EQ(load->kind(), SeriesKind::kGauge);
  EXPECT_DOUBLE_EQ(load->latest(), 0.25);

  const TimeSeries* count = sampler.find("lat_ms.count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->kind(), SeriesKind::kHistogramCount);
  EXPECT_DOUBLE_EQ(count->latest(), 100.0);
  const TimeSeries* p95 = sampler.find("lat_ms.p95");
  ASSERT_NE(p95, nullptr);
  EXPECT_EQ(p95->kind(), SeriesKind::kHistogramQuantile);
  EXPECT_NEAR(p95->latest(), 95.0, 95.0 / Histogram::kSubBuckets);
  EXPECT_NE(sampler.find("lat_ms.p50"), nullptr);
  EXPECT_NE(sampler.find("lat_ms.p99"), nullptr);
}

TEST(TimeSeriesSampler, MetricAppearingMidRunStartsLate) {
  MetricsRegistry reg;
  reg.counter("early").inc();
  TimeSeriesSampler sampler{reg};
  sampler.sample(at(1.0));
  reg.gauge("late").set(7.0);
  sampler.sample(at(2.0));

  ASSERT_NE(sampler.find("late"), nullptr);
  ASSERT_EQ(sampler.find("late")->points().size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.find("late")->points()[0].t_s, 2.0);
  EXPECT_EQ(sampler.find("early")->points().size(), 2u);
}

TEST(TimeSeriesSampler, CapacityBoundsEverySeries) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  SamplerConfig config;
  config.capacity = 4;
  TimeSeriesSampler sampler{reg, config};
  for (int i = 1; i <= 10; ++i) {
    c.inc();
    sampler.sample(at(static_cast<double>(i)));
  }
  const TimeSeries* s = sampler.find("c");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->points().size(), 4u);
  EXPECT_EQ(s->dropped(), 6u);
  EXPECT_DOUBLE_EQ(s->points().front().t_s, 7.0);
}

TEST(SeriesKindNames, MatchToolingContract) {
  // tools/health_report.py validates against these exact strings.
  EXPECT_STREQ(series_kind_name(SeriesKind::kCounter), "counter");
  EXPECT_STREQ(series_kind_name(SeriesKind::kCounterRate), "rate");
  EXPECT_STREQ(series_kind_name(SeriesKind::kGauge), "gauge");
  EXPECT_STREQ(series_kind_name(SeriesKind::kHistogramCount), "hist_count");
  EXPECT_STREQ(series_kind_name(SeriesKind::kHistogramQuantile),
               "hist_quantile");
}

TEST(SeriesExporter, JsonHasSchemaAndSortedSeries) {
  MetricsRegistry reg;
  reg.counter("b.count").inc(2);
  reg.gauge("a.load").set(1.5);
  TimeSeriesSampler sampler{reg};
  sampler.sample(at(0.5));
  sampler.sample(at(1.0));

  const std::string json =
      SeriesExporter::to_json(sampler, nullptr, "unit_test");
  EXPECT_NE(json.find("\"schema\":\"dlte-series-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"source\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\":2"), std::string::npos);
  // std::map iteration: a.load before b.count.
  EXPECT_LT(json.find("\"a.load\""), json.find("\"b.count\""));
  // Null monitor renders the health sections empty but present.
  EXPECT_NE(json.find("\"rules\""), std::string::npos);
  EXPECT_NE(json.find("\"alerts\""), std::string::npos);
  EXPECT_NE(json.find("\"health\""), std::string::npos);
}

TEST(SeriesExporter, ByteIdenticalAcrossIdenticalRuns) {
  auto render = [] {
    MetricsRegistry reg;
    SloMonitor monitor{reg};
    SloRule rule;
    rule.name = "load_high";
    rule.scope = "node";
    rule.metric = "load";
    rule.predicate = SloPredicate::kGaugeAtMost;
    rule.threshold = 1.0;
    monitor.add_rule(rule);
    TimeSeriesSampler sampler{reg};
    Gauge& load = reg.gauge("load");
    for (int i = 1; i <= 20; ++i) {
      load.set(i >= 10 && i < 15 ? 2.0 : 0.5);
      const TimePoint now = at(0.5 * i);
      monitor.evaluate(now);
      sampler.sample(now);
    }
    return SeriesExporter::to_json(sampler, &monitor, "determinism");
  };
  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"event\":\"fire\""), std::string::npos);
  EXPECT_NE(first.find("\"event\":\"resolve\""), std::string::npos);
}

}  // namespace
}  // namespace dlte::obs
