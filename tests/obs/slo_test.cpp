#include "obs/slo.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/span.h"

namespace dlte::obs {
namespace {

TimePoint at(double t_s) { return TimePoint{} + Duration::seconds(t_s); }

TEST(SloRule, DescribeIsDeterministic) {
  SloRule rule;
  rule.name = "attach_p95";
  rule.scope = "core";
  rule.metric = "epc.attach_latency_ms";
  rule.predicate = SloPredicate::kQuantileBelow;
  rule.threshold = 250.0;
  rule.quantile = 0.95;
  EXPECT_EQ(rule.describe(),
            "attach_p95 [core]: quantile_below(epc.attach_latency_ms p95) "
            "< 250 over 5s");
  SloRule up;
  up.name = "ap1_down";
  up.scope = "ap1";
  up.metric = "ap1.up";
  up.predicate = SloPredicate::kGaugeAtLeast;
  up.threshold = 1.0;
  EXPECT_EQ(up.describe(), "ap1_down [ap1]: gauge_at_least(ap1.up) >= 1");
}

TEST(SloMonitor, GaugeRuleFiresAndResolvesImmediately) {
  MetricsRegistry reg;
  Gauge& up = reg.gauge("ap1.up");
  up.set(1.0);
  SloMonitor monitor{reg};
  SloRule rule;
  rule.name = "ap1_down";
  rule.scope = "ap1";
  rule.metric = "ap1.up";
  rule.predicate = SloPredicate::kGaugeAtLeast;
  rule.threshold = 1.0;
  monitor.add_rule(rule);

  monitor.evaluate(at(1.0));
  EXPECT_FALSE(monitor.alert_active("ap1_down"));
  up.set(0.0);
  monitor.evaluate(at(2.0));
  EXPECT_TRUE(monitor.alert_active("ap1_down"));
  EXPECT_TRUE(monitor.ever_fired("ap1_down"));
  EXPECT_DOUBLE_EQ(monitor.health("ap1"), 0.0);
  up.set(1.0);
  monitor.evaluate(at(3.0));
  EXPECT_FALSE(monitor.alert_active("ap1_down"));
  EXPECT_TRUE(monitor.ever_fired("ap1_down"));
  EXPECT_DOUBLE_EQ(monitor.health("ap1"), 1.0);

  ASSERT_EQ(monitor.events().size(), 2u);
  EXPECT_TRUE(monitor.events()[0].fire);
  EXPECT_DOUBLE_EQ(monitor.events()[0].t_s, 2.0);
  EXPECT_FALSE(monitor.events()[1].fire);
  EXPECT_DOUBLE_EQ(monitor.events()[1].t_s, 3.0);
  EXPECT_EQ(monitor.events()[0].describe(),
            "t=2s FIRE ap1_down [ap1] ap1.up value=0 threshold=1");
}

TEST(SloMonitor, FireAfterAndResolveAfterStreaks) {
  MetricsRegistry reg;
  Gauge& load = reg.gauge("load");
  load.set(0.0);
  SloMonitor monitor{reg};
  SloRule rule;
  rule.name = "overload";
  rule.scope = "node";
  rule.metric = "load";
  rule.predicate = SloPredicate::kGaugeAtMost;
  rule.threshold = 1.0;
  rule.fire_after = 3;
  rule.resolve_after = 2;
  monitor.add_rule(rule);

  load.set(5.0);
  monitor.evaluate(at(1.0));
  monitor.evaluate(at(2.0));
  EXPECT_FALSE(monitor.alert_active("overload"));  // Streak of 2 < 3.
  // A healthy tick resets the breach streak.
  load.set(0.5);
  monitor.evaluate(at(3.0));
  load.set(5.0);
  monitor.evaluate(at(4.0));
  monitor.evaluate(at(5.0));
  EXPECT_FALSE(monitor.alert_active("overload"));
  monitor.evaluate(at(6.0));
  EXPECT_TRUE(monitor.alert_active("overload"));

  load.set(0.5);
  monitor.evaluate(at(7.0));
  EXPECT_TRUE(monitor.alert_active("overload"));  // Streak of 1 < 2.
  monitor.evaluate(at(8.0));
  EXPECT_FALSE(monitor.alert_active("overload"));
}

TEST(SloMonitor, RateBelowFiresOnWindowedDelta) {
  MetricsRegistry reg;
  Counter& failed = reg.counter("hb_failed");
  SloMonitor monitor{reg};
  SloRule rule;
  rule.name = "outage";
  rule.scope = "registry";
  rule.metric = "hb_failed";
  rule.predicate = SloPredicate::kRateBelow;
  rule.threshold = 0.5;  // Healthy under 0.5 failures/s.
  rule.window = Duration::seconds(4.0);
  monitor.add_rule(rule);

  // Quiet counter: healthy.
  for (int i = 1; i <= 4; ++i) monitor.evaluate(at(static_cast<double>(i)));
  EXPECT_FALSE(monitor.alert_active("outage"));

  // 2 failures/s over the window: breach.
  failed.inc(2);
  monitor.evaluate(at(5.0));
  EXPECT_TRUE(monitor.alert_active("outage"));

  // The burst ages out of the 4 s window: resolve.
  for (int i = 6; i <= 10; ++i) monitor.evaluate(at(static_cast<double>(i)));
  EXPECT_FALSE(monitor.alert_active("outage"));
}

TEST(SloMonitor, RateAtLeastLivenessNeedsFullWindow) {
  MetricsRegistry reg;
  Counter& beats = reg.counter("hb_ok");
  SloMonitor monitor{reg};
  SloRule rule;
  rule.name = "starved";
  rule.scope = "registry";
  rule.metric = "hb_ok";
  rule.predicate = SloPredicate::kRateAtLeast;
  rule.threshold = 0.1;
  rule.window = Duration::seconds(3.0);
  monitor.add_rule(rule);

  // Warmup: no full window of data yet, so starvation cannot be asserted.
  monitor.evaluate(at(0.0));
  monitor.evaluate(at(1.0));
  monitor.evaluate(at(2.0));
  EXPECT_FALSE(monitor.alert_active("starved"));
  // A full silent window: liveness violated.
  monitor.evaluate(at(3.0));
  monitor.evaluate(at(4.0));
  EXPECT_TRUE(monitor.alert_active("starved"));
  // Traffic resumes: resolves.
  beats.inc(10);
  monitor.evaluate(at(5.0));
  EXPECT_FALSE(monitor.alert_active("starved"));
}

TEST(SloMonitor, QuantileBelowSeesOnlyTheWindow) {
  MetricsRegistry reg;
  Histogram& lat = reg.histogram("attach_ms");
  SloMonitor monitor{reg};
  SloRule rule;
  rule.name = "slow_attach";
  rule.scope = "core";
  rule.metric = "attach_ms";
  rule.predicate = SloPredicate::kQuantileBelow;
  rule.threshold = 100.0;
  rule.quantile = 0.95;
  rule.window = Duration::seconds(2.0);
  monitor.add_rule(rule);

  // Fast traffic: healthy.
  for (int i = 0; i < 50; ++i) lat.record(10.0);
  monitor.evaluate(at(1.0));
  EXPECT_FALSE(monitor.alert_active("slow_attach"));

  // A burst of slow attaches dominates the window's p95.
  for (int i = 0; i < 50; ++i) lat.record(500.0);
  monitor.evaluate(at(2.0));
  EXPECT_TRUE(monitor.alert_active("slow_attach"));

  // No new traffic: the breach ages out (vacuously healthy window) even
  // though the lifetime p95 is still far over threshold.
  monitor.evaluate(at(5.0));
  EXPECT_GT(lat.p95(), 100.0);
  EXPECT_FALSE(monitor.alert_active("slow_attach"));
}

TEST(SloMonitor, MissingMetricIsHealthy) {
  MetricsRegistry reg;
  SloMonitor monitor{reg};
  SloRule rule;
  rule.name = "ghost";
  rule.scope = "x";
  rule.metric = "does.not.exist";
  rule.predicate = SloPredicate::kGaugeAtLeast;
  rule.threshold = 1.0;
  monitor.add_rule(rule);
  for (int i = 0; i < 10; ++i) monitor.evaluate(at(static_cast<double>(i)));
  EXPECT_FALSE(monitor.ever_fired("ghost"));
  EXPECT_DOUBLE_EQ(monitor.health("x"), 1.0);
  EXPECT_DOUBLE_EQ(monitor.health("unknown_scope"), 1.0);
}

TEST(SloMonitor, SetMetricsRollsAlertsIntoRegistry) {
  MetricsRegistry reg;
  Gauge& up = reg.gauge("ap1.up");
  up.set(1.0);
  SloMonitor monitor{reg};
  // Self-referential wiring (the bench harness does exactly this): the
  // monitor writes slo.* / health.* back into the registry it watches.
  monitor.set_metrics(&reg);
  SloRule rule;
  rule.name = "ap1_down";
  rule.scope = "ap1";
  rule.metric = "ap1.up";
  rule.predicate = SloPredicate::kGaugeAtLeast;
  rule.threshold = 1.0;
  monitor.add_rule(rule);

  ASSERT_NE(reg.find_gauge("health.ap1"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_gauge("health.ap1")->value(), 1.0);

  up.set(0.0);
  monitor.evaluate(at(1.0));
  EXPECT_EQ(reg.find_counter("slo.alerts_fired")->value(), 1u);
  EXPECT_DOUBLE_EQ(reg.find_gauge("slo.active_alerts")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("health.ap1")->value(), 0.0);

  up.set(1.0);
  monitor.evaluate(at(2.0));
  EXPECT_EQ(reg.find_counter("slo.alerts_resolved")->value(), 1u);
  EXPECT_DOUBLE_EQ(reg.find_gauge("slo.active_alerts")->value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("health.ap1")->value(), 1.0);
}

TEST(SloMonitor, TransitionsEmitMarkerSpans) {
  MetricsRegistry reg;
  Gauge& up = reg.gauge("ap1.up");
  up.set(0.0);
  double now_s = 4.0;
  SpanTracer tracer{
      [&now_s] { return TimePoint{} + Duration::seconds(now_s); }};
  SloMonitor monitor{reg};
  monitor.set_tracer(&tracer);
  SloRule rule;
  rule.name = "ap1_down";
  rule.scope = "ap1";
  rule.metric = "ap1.up";
  rule.predicate = SloPredicate::kGaugeAtLeast;
  rule.threshold = 1.0;
  monitor.add_rule(rule);

  monitor.evaluate(at(4.0));
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].name, "slo_fire");
  EXPECT_EQ(tracer.spans()[0].category, "slo");
  now_s = 5.0;
  up.set(1.0);
  monitor.evaluate(at(5.0));
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[1].name, "slo_resolve");
}

TEST(SloMonitor, ScopesAndRuleDescriptionsOrdered) {
  MetricsRegistry reg;
  SloMonitor monitor{reg};
  for (const char* scope : {"zebra", "alpha", "zebra"}) {
    SloRule rule;
    rule.name = std::string{scope} + "_rule";
    rule.scope = scope;
    rule.metric = "m";
    monitor.add_rule(rule);
  }
  const std::vector<std::string> scopes = monitor.scopes();
  ASSERT_EQ(scopes.size(), 2u);  // Deduplicated.
  EXPECT_EQ(scopes[0], "alpha");
  EXPECT_EQ(scopes[1], "zebra");
  // Descriptions stay in registration order (the export contract).
  const std::vector<std::string> rules = monitor.rule_descriptions();
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].rfind("zebra_rule", 0), 0u);
  EXPECT_EQ(rules[1].rfind("alpha_rule", 0), 0u);
}

}  // namespace
}  // namespace dlte::obs
