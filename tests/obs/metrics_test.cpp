#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace dlte::obs {
namespace {

TEST(Counter, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddAndSetMax) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(4.0);  // Lower value: ignored.
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Gauge, SetMaxFirstValueAlwaysSticks) {
  // Regression: set_max used to compare the first observation against
  // the 0.0 default, silently discarding negative firsts (e.g. a dB
  // margin or a clock skew gauge).
  Gauge g;
  g.set_max(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
  g.set_max(-7.0);  // Lower than the max seen: ignored.
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
  g.set_max(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Gauge, SetMaxAfterSetKeepsMaxSemantics) {
  Gauge g;
  g.set(10.0);
  g.set_max(4.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(Histogram, BasicStatsExact) {
  Histogram h;
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(Histogram, EmptyReportsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
}

// The log-linear layout guarantees every bucket's relative width is at
// most 1/kSubBuckets, so a midpoint quantile estimate sits within
// ~1/(2*kSubBuckets) of the true sample quantile.
TEST(Histogram, QuantileAccuracyWithinBucketBound) {
  Histogram h;
  for (int i = 1; i <= 10'000; ++i) {
    h.record(static_cast<double>(i));
  }
  const double tol = 1.0 / Histogram::kSubBuckets;  // 2x midpoint error.
  EXPECT_NEAR(h.p50(), 5000.0, 5000.0 * tol);
  EXPECT_NEAR(h.p90(), 9000.0, 9000.0 * tol);
  EXPECT_NEAR(h.p95(), 9500.0, 9500.0 * tol);
  EXPECT_NEAR(h.p99(), 9900.0, 9900.0 * tol);
}

TEST(Histogram, QuantileAccuracyAcrossMagnitudes) {
  Histogram h;
  // Values spanning nine decades: 1e-3 .. 1e6.
  for (int e = -3; e <= 6; ++e) {
    h.record(std::pow(10.0, e));
  }
  // Ten samples: rank(0.05) = 1 -> smallest sample's bucket.
  EXPECT_NEAR(h.quantile(0.05), 1e-3, 1e-3 / Histogram::kSubBuckets);
  EXPECT_NEAR(h.quantile(1.0), 1e6, 1e6 / Histogram::kSubBuckets);
}

TEST(Histogram, QuantileClampedToObservedRange) {
  Histogram h;
  h.record(100.0);
  // Single sample: every quantile is that sample, not a bucket midpoint
  // outside [min, max].
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.p50(), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, ZeroAndNegativeShareUnderflowBucket) {
  Histogram h;
  h.record(0.0);
  h.record(-5.0);
  h.record(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  // Low quantiles land in the underflow bucket, reported as the observed
  // minimum (negative here).
  EXPECT_DOUBLE_EQ(h.quantile(0.1), -5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, NonFiniteSamplesIgnored) {
  Histogram h;
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 0u);
  h.record(1.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0);
}

TEST(Histogram, QuantileSinceSeesOnlyTrafficAfterBaseline) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(10.0);
  const Histogram baseline = h;  // Snapshot: the SLO window boundary.
  for (int i = 0; i < 100; ++i) h.record(500.0);

  EXPECT_EQ(h.count_since(baseline), 100u);
  // Lifetime p50 straddles both bursts, the windowed p50 is pure 500s.
  EXPECT_NEAR(h.quantile_since(baseline, 0.5), 500.0,
              500.0 / Histogram::kSubBuckets);
  EXPECT_NEAR(h.quantile_since(baseline, 0.99), 500.0,
              500.0 / Histogram::kSubBuckets);
}

TEST(Histogram, QuantileSinceEmptyWindowReportsZero) {
  Histogram h;
  h.record(42.0);
  const Histogram baseline = h;
  EXPECT_EQ(h.count_since(baseline), 0u);
  EXPECT_DOUBLE_EQ(h.quantile_since(baseline, 0.95), 0.0);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a");
  c.inc();
  // Creating other metrics must not invalidate the first reference
  // (node-based storage) — instrumented components cache these pointers.
  for (int i = 0; i < 100; ++i) {
    reg.counter("n" + std::to_string(i)).inc(0);
  }
  c.inc();
  EXPECT_EQ(reg.counter("a").value(), 2u);
  EXPECT_EQ(reg.size(), 101u);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
  EXPECT_EQ(reg.size(), 0u);
  reg.counter("present").inc(3);
  ASSERT_NE(reg.find_counter("present"), nullptr);
  EXPECT_EQ(reg.find_counter("present")->value(), 3u);
}

TEST(NullSafeHelpers, NoopOnNullptr) {
  inc(nullptr);
  observe(nullptr, 1.0);  // Must not crash.
  set(nullptr, 3.0);
  MetricsRegistry reg;
  Counter* c = &reg.counter("c");
  Gauge* g = &reg.gauge("g");
  Histogram* h = &reg.histogram("h");
  inc(c, 2);
  set(g, 3.0);
  observe(h, 5.0);
  EXPECT_EQ(c->value(), 2u);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);
  EXPECT_EQ(h->count(), 1u);
}

}  // namespace
}  // namespace dlte::obs
