#include "spectrum/fair_share.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/stats.h"

namespace dlte::spectrum {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(MaxMinFair, EqualDemandsSplitEqually) {
  std::vector<double> d{1.0, 1.0, 1.0, 1.0};
  const auto s = max_min_fair_shares(d);
  for (double x : s) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(MaxMinFair, LightDemandFullySatisfied) {
  std::vector<double> d{0.1, 1.0, 1.0};
  const auto s = max_min_fair_shares(d);
  EXPECT_NEAR(s[0], 0.1, 1e-12);
  EXPECT_NEAR(s[1], 0.45, 1e-12);
  EXPECT_NEAR(s[2], 0.45, 1e-12);
}

TEST(MaxMinFair, UndersubscribedEveryoneSatisfied) {
  std::vector<double> d{0.2, 0.3, 0.1};
  const auto s = max_min_fair_shares(d);
  EXPECT_NEAR(s[0], 0.2, 1e-12);
  EXPECT_NEAR(s[1], 0.3, 1e-12);
  EXPECT_NEAR(s[2], 0.1, 1e-12);
  EXPECT_LE(sum(s), 1.0 + 1e-12);
}

TEST(MaxMinFair, NeverExceedsCapacityOrDemand) {
  std::vector<double> d{0.9, 0.8, 0.7, 0.05};
  const auto s = max_min_fair_shares(d);
  EXPECT_LE(sum(s), 1.0 + 1e-12);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_LE(s[i], d[i] + 1e-12);
  }
}

TEST(MaxMinFair, EmptyAndSingle) {
  EXPECT_TRUE(max_min_fair_shares({}).empty());
  std::vector<double> one{0.6};
  EXPECT_NEAR(max_min_fair_shares(one)[0], 0.6, 1e-12);
  std::vector<double> greedy{5.0};
  EXPECT_NEAR(max_min_fair_shares(greedy)[0], 1.0, 1e-12);
}

TEST(MaxMinFair, FairnessIndexIsHighUnderSaturation) {
  // The §4.3 claim: fairness characteristics similar to WiFi's — under
  // equal saturating demand, Jain's index must be 1.
  std::vector<double> d(8, 1.0);
  const auto s = max_min_fair_shares(d);
  EXPECT_NEAR(jain_fairness(s), 1.0, 1e-12);
}

TEST(Proportional, SplitsByDemand) {
  std::vector<double> d{0.6, 0.2, 0.2};
  const auto s = proportional_shares(d);
  EXPECT_NEAR(s[0], 0.6, 1e-12);
  EXPECT_NEAR(s[1], 0.2, 1e-12);
  EXPECT_NEAR(s[2], 0.2, 1e-12);
}

TEST(Proportional, OversubscribedScalesDown) {
  std::vector<double> d{1.0, 1.0, 2.0};
  const auto s = proportional_shares(d);
  EXPECT_NEAR(s[0], 0.25, 1e-12);
  EXPECT_NEAR(s[1], 0.25, 1e-12);
  EXPECT_NEAR(s[2], 0.5, 1e-12);
  EXPECT_NEAR(sum(s), 1.0, 1e-12);
}

TEST(Proportional, IdleCapacityLeftForBusyPeer) {
  // Cooperative fusion: a busy AP next to an idle one gets nearly all.
  std::vector<double> d{1.0, 0.05};
  const auto s = proportional_shares(d);
  EXPECT_GT(s[0], 0.9);
  EXPECT_NEAR(s[1], 0.05, 0.01);
}

TEST(Proportional, ZeroDemandsZeroShares) {
  std::vector<double> d{0.0, 0.0};
  const auto s = proportional_shares(d);
  EXPECT_EQ(s[0], 0.0);
  EXPECT_EQ(s[1], 0.0);
}

// Property sweep: for any demand mix, max-min fair dominates proportional
// on Jain fairness, while proportional matches demand better.
class ShareProperties : public ::testing::TestWithParam<int> {};

TEST_P(ShareProperties, FairnessVsEfficiencyTradeoff) {
  // Deterministic pseudo-random demand vectors per parameter.
  std::vector<double> d;
  unsigned seed = static_cast<unsigned>(GetParam()) * 2654435761u + 1;
  for (int i = 0; i < 6; ++i) {
    seed = seed * 1664525u + 1013904223u;
    d.push_back(0.05 + static_cast<double>(seed % 1000) / 1000.0);
  }
  const auto mm = max_min_fair_shares(d);
  const auto pr = proportional_shares(d);
  EXPECT_LE(sum(mm), 1.0 + 1e-9);
  EXPECT_LE(sum(pr), 1.0 + 1e-9);
  EXPECT_GE(jain_fairness(mm) + 1e-9, jain_fairness(pr));
}

INSTANTIATE_TEST_SUITE_P(DemandMixes, ShareProperties,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace dlte::spectrum
