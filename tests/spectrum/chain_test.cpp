// The blockchain registry variant (Kotobi & Bilén [27] / dHSS [25]).
#include "spectrum/chain.h"

#include <gtest/gtest.h>

#include "spectrum/registry.h"

namespace dlte::spectrum {
namespace {

ChainRecord grant_record(std::uint8_t tag) {
  return ChainRecord{ChainRecordKind::kGrant, {tag, 0x01, 0x02}};
}

TEST(SpectrumChain, GenesisOnly) {
  sim::Simulator sim;
  SpectrumChain chain{sim, Duration::seconds(60.0)};
  EXPECT_EQ(chain.block_count(), 1u);
  EXPECT_TRUE(chain.verify());
}

TEST(SpectrumChain, InclusionWaitsForBlockInterval) {
  sim::Simulator sim;
  SpectrumChain chain{sim, Duration::seconds(60.0)};
  chain.start();
  std::uint64_t included_height = 0;
  TimePoint included_at;
  chain.submit(grant_record(1), [&](std::uint64_t h) {
    included_height = h;
    included_at = sim.now();
  });
  EXPECT_EQ(chain.pending_count(), 1u);
  sim.run_until(sim.now() + Duration::seconds(120.0));
  EXPECT_EQ(included_height, 1u);
  EXPECT_NEAR(included_at.to_seconds(), 60.0, 0.1);
  EXPECT_EQ(chain.pending_count(), 0u);
}

TEST(SpectrumChain, BatchesRecordsPerBlock) {
  sim::Simulator sim;
  SpectrumChain chain{sim, Duration::seconds(60.0)};
  chain.start();
  for (std::uint8_t i = 0; i < 5; ++i) chain.submit(grant_record(i));
  sim.run_until(sim.now() + Duration::seconds(61.0));
  EXPECT_EQ(chain.block_count(), 2u);
  EXPECT_EQ(chain.block(1).records.size(), 5u);
}

TEST(SpectrumChain, NoEmptyBlocks) {
  sim::Simulator sim;
  SpectrumChain chain{sim, Duration::seconds(60.0)};
  chain.start();
  sim.run_until(sim.now() + Duration::seconds(600.0));
  EXPECT_EQ(chain.block_count(), 1u);  // Only genesis.
}

TEST(SpectrumChain, HashChainLinksBlocks) {
  sim::Simulator sim;
  SpectrumChain chain{sim, Duration::seconds(10.0)};
  chain.start();
  chain.submit(grant_record(1));
  sim.run_until(sim.now() + Duration::seconds(11.0));
  chain.submit(grant_record(2));
  sim.run_until(sim.now() + Duration::seconds(11.0));
  ASSERT_EQ(chain.block_count(), 3u);
  EXPECT_EQ(chain.block(1).previous_hash, chain.block(0).hash);
  EXPECT_EQ(chain.block(2).previous_hash, chain.block(1).hash);
  EXPECT_TRUE(chain.verify());
}

TEST(SpectrumChain, TamperingIsDetected) {
  sim::Simulator sim;
  SpectrumChain chain{sim, Duration::seconds(10.0)};
  chain.start();
  chain.submit(grant_record(7));
  sim.run_until(sim.now() + Duration::seconds(11.0));
  ASSERT_TRUE(chain.verify());
  // An operator quietly rewrites a sealed grant record…
  chain.mutable_block(1).records[0].payload[0] ^= 0xff;
  EXPECT_FALSE(chain.verify());
}

TEST(SpectrumChain, RecordsQueryableByKind) {
  sim::Simulator sim;
  SpectrumChain chain{sim, Duration::seconds(10.0)};
  chain.start();
  chain.submit(grant_record(1));
  chain.submit(ChainRecord{ChainRecordKind::kSubscriberKey, {0xaa}});
  sim.run_until(sim.now() + Duration::seconds(11.0));
  int grants = 0, keys = 0;
  chain.for_each_record(ChainRecordKind::kGrant,
                        [&](const ChainRecord&) { ++grants; });
  chain.for_each_record(ChainRecordKind::kSubscriberKey,
                        [&](const ChainRecord&) { ++keys; });
  EXPECT_EQ(grants, 1);
  EXPECT_EQ(keys, 1);
}

TEST(ChainBackedRegistry, GrantCommitsAtBlockInclusion) {
  sim::Simulator sim;
  SpectrumChain chain{sim, Duration::seconds(60.0)};
  Registry reg{sim, RegistryKind::kBlockchain};
  reg.attach_chain(&chain);
  EXPECT_TRUE(reg.chain_backed());

  GrantRequest req;
  req.ap = ApId{1};
  req.center_frequency = Hertz::mhz(850.0);
  req.bandwidth = Hertz::mhz(10.0);
  req.operator_contact = "op@example.net";
  bool granted = false;
  TimePoint when;
  reg.request_grant(req, [&](Result<SpectrumGrant> g) {
    granted = g.ok();
    when = sim.now();
  });
  sim.run_until(sim.now() + Duration::seconds(120.0));
  EXPECT_TRUE(granted);
  EXPECT_NEAR(when.to_seconds(), 60.0, 0.5);  // One block, not 200 ms.
  EXPECT_EQ(reg.grant_count(), 1u);
  EXPECT_TRUE(chain.verify());
}

TEST(ChainBackedRegistry, KeyPublicationLeavesAuditRecord) {
  sim::Simulator sim;
  SpectrumChain chain{sim, Duration::seconds(10.0)};
  Registry reg{sim, RegistryKind::kBlockchain};
  reg.attach_chain(&chain);
  epc::PublishedKeys keys;
  keys.imsi = Imsi{777};
  reg.publish_subscriber(keys);
  sim.run_until(sim.now() + Duration::seconds(11.0));
  int key_records = 0;
  chain.for_each_record(ChainRecordKind::kSubscriberKey,
                        [&](const ChainRecord&) { ++key_records; });
  EXPECT_EQ(key_records, 1);
  // Lookup still works through the registry facade.
  EXPECT_TRUE(reg.lookup_subscriber(Imsi{777}).ok());
}

}  // namespace
}  // namespace dlte::spectrum
