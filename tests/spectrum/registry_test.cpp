#include "spectrum/registry.h"

#include <gtest/gtest.h>

#include <vector>

#include "registry/cache.h"

namespace dlte::spectrum {
namespace {

GrantRequest band5_request(std::uint32_t ap, Position pos,
                           double freq_mhz = 850.0) {
  GrantRequest r;
  r.ap = ApId{ap};
  r.location = pos;
  r.center_frequency = Hertz::mhz(freq_mhz);
  r.bandwidth = Hertz::mhz(10.0);
  r.max_eirp = PowerDbm{52.0};
  r.operator_contact = "op" + std::to_string(ap) + "@example.net";
  r.coordination_node = NodeId{ap};
  return r;
}

TEST(Registry, OpenAdmission) {
  // §4.3: "New APs are free to join at any time."
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  for (std::uint32_t i = 0; i < 20; ++i) {
    auto g = reg.grant_now(band5_request(i, Position{i * 1000.0, 0.0}));
    EXPECT_TRUE(g.ok());
  }
  EXPECT_EQ(reg.grant_count(), 20u);
}

TEST(Registry, ContactIsMandatory) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  auto req = band5_request(1, Position{});
  req.operator_contact.clear();
  EXPECT_FALSE(reg.grant_now(req).ok());
}

TEST(Registry, ZeroBandwidthRejected) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  auto req = band5_request(1, Position{});
  req.bandwidth = Hertz{0.0};
  EXPECT_FALSE(reg.grant_now(req).ok());
}

TEST(Registry, ContentionDomainByDistanceAndChannel) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  auto a = reg.grant_now(band5_request(1, Position{0.0, 0.0}));
  auto near_cochannel =
      reg.grant_now(band5_request(2, Position{5'000.0, 0.0}));
  auto far_cochannel =
      reg.grant_now(band5_request(3, Position{500'000.0, 0.0}));
  auto near_other_band =
      reg.grant_now(band5_request(4, Position{5'000.0, 0.0}, 900.0));
  ASSERT_TRUE(a.ok());

  const auto domain = reg.contention_domain(*a);
  std::vector<std::uint32_t> members;
  for (const auto& g : domain) members.push_back(g.ap.value());
  EXPECT_EQ(members, (std::vector<std::uint32_t>{2}));
  (void)near_cochannel;
  (void)far_cochannel;
  (void)near_other_band;
}

TEST(Registry, AdjacentChannelsWithOverlapContend) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  auto a = reg.grant_now(band5_request(1, Position{0.0, 0.0}, 850.0));
  // 855 MHz with 10 MHz bandwidth overlaps [845,855]x[850,860].
  auto b = reg.grant_now(band5_request(2, Position{1'000.0, 0.0}, 855.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(reg.contention_domain(*a).size(), 1u);
}

TEST(Registry, InterferenceRangeLargerAtLowerFrequency) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  auto low = reg.grant_now(band5_request(1, Position{}, 850.0));
  auto high = reg.grant_now(band5_request(2, Position{}, 2400.0));
  EXPECT_GT(interference_range_m(*low), interference_range_m(*high));
  // Sub-GHz at 52 dBm EIRP carries for tens of km.
  EXPECT_GT(interference_range_m(*low), 10'000.0);
}

TEST(Registry, RevokeRemovesGrant) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  auto g = reg.grant_now(band5_request(1, Position{}));
  ASSERT_TRUE(g.ok());
  reg.revoke(g->id);
  EXPECT_EQ(reg.grant_count(), 0u);
}

TEST(Registry, QueryRegionFindsReachableGrants) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  (void)reg.grant_now(band5_request(1, Position{0.0, 0.0}));
  (void)reg.grant_now(band5_request(2, Position{800'000.0, 0.0}));
  const auto near = reg.grants_near(Position{2'000.0, 0.0});
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0].ap, ApId{1});
}

TEST(RegistryLatencies, OrderedByDecentralization) {
  const auto sas = registry_latency(RegistryKind::kCentralizedSas);
  const auto fed = registry_latency(RegistryKind::kFederated);
  const auto chain = registry_latency(RegistryKind::kBlockchain);
  EXPECT_LT(sas.query.ns(), fed.query.ns());
  EXPECT_LT(fed.query.ns(), chain.query.ns());
  EXPECT_LT(sas.commit.ns(), chain.commit.ns());
  // Blockchain commit is dominated by block inclusion — tens of seconds.
  EXPECT_GE(chain.commit.to_seconds(), 10.0);
}

TEST(Registry, AsyncGrantArrivesAfterCommitLatency) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  bool granted = false;
  TimePoint when;
  reg.request_grant(band5_request(1, Position{}),
                    [&](Result<SpectrumGrant> g) {
                      granted = g.ok();
                      when = sim.now();
                    });
  EXPECT_FALSE(granted);
  sim.run_all();
  EXPECT_TRUE(granted);
  EXPECT_NEAR(when.to_millis(), 200.0, 1.0);
}

TEST(Registry, AsyncQueryUsesQueryLatency) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kBlockchain};
  (void)reg.grant_now(band5_request(1, Position{}));
  TimePoint when;
  std::size_t found = 0;
  reg.query_region(Position{1000.0, 0.0},
                   [&](std::vector<SpectrumGrant> grants) {
                     found = grants.size();
                     when = sim.now();
                   });
  sim.run_all();
  EXPECT_EQ(found, 1u);
  EXPECT_NEAR(when.to_millis(), 400.0, 1.0);
}

TEST(Registry, SubscriberKeyPublication) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  epc::PublishedKeys keys;
  keys.imsi = Imsi{12345};
  keys.k[0] = 0xaa;
  reg.publish_subscriber(keys);
  EXPECT_EQ(reg.published_subscriber_count(), 1u);
  auto got = reg.lookup_subscriber(Imsi{12345});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->k[0], 0xaa);
  EXPECT_FALSE(reg.lookup_subscriber(Imsi{999}).ok());
  // Re-publication replaces.
  keys.k[0] = 0xbb;
  reg.publish_subscriber(keys);
  EXPECT_EQ(reg.published_subscriber_count(), 1u);
  EXPECT_EQ(reg.lookup_subscriber(Imsi{12345})->k[0], 0xbb);
}


TEST(Registry, LeasedGrantLapsesWithoutHeartbeat) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  reg.set_grant_lifetime(Duration::seconds(60.0));
  auto g = reg.grant_now(band5_request(1, Position{}));
  ASSERT_TRUE(g.ok());
  sim.run_until(sim.now() + Duration::seconds(30.0));
  EXPECT_EQ(reg.grants_near(Position{}).size(), 1u);  // Still alive.
  sim.run_until(sim.now() + Duration::seconds(40.0));  // 70 s total.
  EXPECT_TRUE(reg.grants_near(Position{}).empty());
  EXPECT_EQ(reg.grants_lapsed(), 1u);
  // A heartbeat on a lapsed grant is refused: the operator re-applies.
  EXPECT_FALSE(reg.heartbeat(g->id).ok());
}

TEST(Registry, HeartbeatKeepsGrantAlive) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  reg.set_grant_lifetime(Duration::seconds(60.0));
  auto g = reg.grant_now(band5_request(1, Position{}));
  ASSERT_TRUE(g.ok());
  for (int i = 0; i < 10; ++i) {
    sim.run_until(sim.now() + Duration::seconds(20.0));
    EXPECT_TRUE(reg.heartbeat(g->id).ok());
  }
  EXPECT_EQ(reg.grants_near(Position{}).size(), 1u);
  EXPECT_EQ(reg.grants_lapsed(), 0u);
}

TEST(Registry, DeadApVanishesFromContentionDomain) {
  // §7 ecosystem health: a neighbour that dies stops constraining the
  // domain once its lease runs out.
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  reg.set_grant_lifetime(Duration::seconds(60.0));
  auto alive = reg.grant_now(band5_request(1, Position{0.0, 0.0}));
  auto dead = reg.grant_now(band5_request(2, Position{5'000.0, 0.0}));
  ASSERT_TRUE(alive.ok());
  ASSERT_TRUE(dead.ok());
  EXPECT_EQ(reg.contention_domain(*alive).size(), 1u);
  // Only AP1 heartbeats.
  for (int i = 0; i < 6; ++i) {
    sim.run_until(sim.now() + Duration::seconds(20.0));
    (void)reg.heartbeat(alive->id);
  }
  EXPECT_TRUE(reg.contention_domain(*alive).empty());
  EXPECT_EQ(reg.grant_count(), 1u);
}

TEST(Registry, SharedBandRecordsWifiOccupancy) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  const Hertz unlicensed = Hertz::ghz(2.4);
  // Unknown bands report zero occupants (exclusive licensed spectrum).
  EXPECT_EQ(reg.wifi_occupants(unlicensed), 0u);
  reg.mark_band_shared(unlicensed, 3);
  EXPECT_EQ(reg.wifi_occupants(unlicensed), 3u);
  EXPECT_EQ(reg.wifi_occupants(Hertz::ghz(5.8)), 0u);
  // A fresh survey overwrites the previous count.
  reg.mark_band_shared(unlicensed, 1);
  EXPECT_EQ(reg.wifi_occupants(unlicensed), 1u);
}

TEST(Registry, PerpetualGrantsNeverLapse) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};  // No lifetime set.
  (void)reg.grant_now(band5_request(1, Position{}));
  sim.run_until(sim.now() + Duration::seconds(1e6));
  EXPECT_EQ(reg.grants_near(Position{}).size(), 1u);
}

TEST(Registry, GrantSurvivesZoneOutageShorterThanGrace) {
  // Federated zone failure × heartbeat grace: heartbeats fail while the
  // zone is dark, but if it recovers inside the grace window the next
  // heartbeat fully renews the lease — no lapse, no re-grant.
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kFederated};
  reg.set_grant_lifetime(Duration::seconds(60.0));
  reg.set_heartbeat_grace(Duration::seconds(60.0));
  const Position pos{1'000.0, 1'000.0};
  auto g = reg.grant_now(band5_request(1, pos));
  ASSERT_TRUE(g.ok());

  reg.set_zone_offline(Registry::zone_of(pos), true);
  sim.run_until(sim.now() + Duration::seconds(70.0));  // Past expiry.
  const auto hb = reg.heartbeat(g->id);
  ASSERT_FALSE(hb.ok());
  EXPECT_EQ(hb.error(), "registry unreachable");  // NOT "lapsed".
  // In grace the grant is still listed, degraded.
  const auto visible = reg.grants_near(pos);
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_TRUE(visible[0].degraded);

  // Zone recovers at expiry+50 s, inside the 60 s grace.
  sim.run_until(sim.now() + Duration::seconds(40.0));
  reg.set_zone_offline(Registry::zone_of(pos), false);
  EXPECT_TRUE(reg.heartbeat(g->id).ok());
  sim.run_until(sim.now() + Duration::seconds(30.0));
  EXPECT_EQ(reg.grants_near(pos).size(), 1u);
  EXPECT_FALSE(reg.grants_near(pos)[0].degraded);
  EXPECT_EQ(reg.grants_lapsed(), 0u);
}

TEST(Registry, ZoneOutageLongerThanGraceForcesRegrant) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kFederated};
  reg.set_grant_lifetime(Duration::seconds(30.0));
  reg.set_heartbeat_grace(Duration::seconds(10.0));
  const Position pos{1'000.0, 1'000.0};
  auto g = reg.grant_now(band5_request(1, pos));
  ASSERT_TRUE(g.ok());

  reg.set_zone_offline(Registry::zone_of(pos), true);
  sim.run_until(sim.now() + Duration::seconds(45.0));  // Past 30+10 s.
  reg.set_zone_offline(Registry::zone_of(pos), false);
  // The lease lapsed during the outage: the heartbeat now says so (the
  // re-apply signal), and the grant is gone from queries.
  const auto hb = reg.heartbeat(g->id);
  ASSERT_FALSE(hb.ok());
  EXPECT_EQ(hb.error(), "grant lapsed or unknown: re-apply");
  EXPECT_TRUE(reg.grants_near(pos).empty());
  EXPECT_EQ(reg.grants_lapsed(), 1u);
  // The re-grant path: a fresh application on the healed zone succeeds
  // and the new lease renews normally.
  auto fresh = reg.grant_now(band5_request(1, pos));
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh->id, g->id);
  sim.run_until(sim.now() + Duration::seconds(20.0));
  EXPECT_TRUE(reg.heartbeat(fresh->id).ok());
}

TEST(Registry, RevokeKeepsSlotMapsConsistent) {
  // revoke is O(1) swap-pop: the grant moved into the vacated slot must
  // stay addressable by id (heartbeat) and by query.
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  reg.set_grant_lifetime(Duration::seconds(60.0));
  auto a = reg.grant_now(band5_request(1, Position{0.0, 0.0}));
  auto b = reg.grant_now(band5_request(2, Position{1'000.0, 0.0}));
  auto c = reg.grant_now(band5_request(3, Position{2'000.0, 0.0}));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  reg.revoke(a->id);  // c swaps into a's slot.
  EXPECT_EQ(reg.grant_count(), 2u);
  EXPECT_TRUE(reg.heartbeat(b->id).ok());
  EXPECT_TRUE(reg.heartbeat(c->id).ok());
  EXPECT_FALSE(reg.heartbeat(a->id).ok());
  const auto near = reg.grants_near(Position{0.0, 0.0});
  ASSERT_EQ(near.size(), 2u);
  // Canonical order: ascending grant id.
  EXPECT_EQ(near[0].id, b->id);
  EXPECT_EQ(near[1].id, c->id);
}

TEST(Registry, MassExpiryPrunesOnlyTheDead) {
  // The lazy expiry heap: renewals move expires_at without re-pushing,
  // so a mass prune must drop exactly the silent grants.
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  reg.set_grant_lifetime(Duration::seconds(60.0));
  std::vector<GrantId> ids;
  for (std::uint32_t i = 0; i < 200; ++i) {
    auto g = reg.grant_now(band5_request(i, Position{i * 500.0, 0.0}));
    ASSERT_TRUE(g.ok());
    ids.push_back(g->id);
  }
  // Every third grant heartbeats at t=50; the rest go silent.
  sim.run_until(sim.now() + Duration::seconds(50.0));
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(reg.heartbeat(ids[i]).ok());
  }
  sim.run_until(sim.now() + Duration::seconds(30.0));  // t=80.
  reg.prune_expired();
  EXPECT_EQ(reg.grant_count(), (ids.size() + 2) / 3);
  EXPECT_EQ(reg.grants_lapsed(), ids.size() - (ids.size() + 2) / 3);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(reg.heartbeat(ids[i]).ok(), i % 3 == 0) << i;
  }
}

TEST(Registry, CountGrantsNearMatchesQuery) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kCentralizedSas};
  for (std::uint32_t i = 0; i < 40; ++i) {
    (void)reg.grant_now(band5_request(i, Position{i * 3'000.0, 0.0}));
  }
  for (const double x : {0.0, 30'000.0, 90'000.0, 500'000.0}) {
    const Position probe{x, 0.0};
    EXPECT_EQ(reg.count_grants_near(probe), reg.grants_near(probe).size())
        << "probe x=" << x;
  }
}

TEST(Registry, ZoneOccupancyWalksTheCacheHierarchy) {
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kFederated};
  registry::LeaseCache cache;
  reg.attach_cache(&cache);
  const Position pos{1'000.0, 1'000.0};
  (void)reg.grant_now(band5_request(1, pos));
  (void)reg.grant_now(band5_request(2, Position{2'000.0, 1'000.0}));

  // Cold: authoritative serve + refill.
  auto first = reg.zone_occupancy(7, pos);
  EXPECT_EQ(first.tier, registry::CacheTier::kAuthoritative);
  EXPECT_EQ(first.grants, 2u);
  // Warm: the local tier serves the same membership.
  auto second = reg.zone_occupancy(7, pos);
  EXPECT_EQ(second.tier, registry::CacheTier::kLocal);
  EXPECT_FALSE(second.stale);
  EXPECT_EQ(second.grants, 2u);
  // A membership change bumps the zone version: the cached view is now
  // served stale (DNS semantics) until its TTL runs out.
  (void)reg.grant_now(band5_request(3, Position{1'500.0, 1'000.0}));
  auto third = reg.zone_occupancy(7, pos);
  EXPECT_EQ(third.tier, registry::CacheTier::kLocal);
  EXPECT_TRUE(third.stale);
  EXPECT_EQ(third.grants, 2u);  // The stale snapshot's count.
}

TEST(Registry, CachedServeDropsGrantsLapsingBeforeServeTime) {
  // A cached query resolves its snapshot at *serve* time (request +
  // tier latency). A grant whose lapse due falls inside that window must
  // drop out of the reply — the serve-time resolution prunes, it does
  // not trust slot_of_ to have been swept already.
  sim::Simulator sim;
  Registry reg{sim, RegistryKind::kFederated};
  registry::LeaseCache cache;
  reg.attach_cache(&cache);
  reg.set_grant_lifetime(Duration::seconds(1.0));  // No grace.
  const Position pos{1'000.0, 1'000.0};
  ASSERT_TRUE(reg.grant_now(band5_request(1, pos)).ok());

  // Warm the cache through the authoritative path.
  std::vector<SpectrumGrant> warm;
  reg.query_region_as(7, pos, [&](std::vector<SpectrumGrant> g) {
    warm = std::move(g);
  });
  sim.run_until(sim.now() + Duration::millis(500));
  ASSERT_EQ(warm.size(), 1u);

  // Query just before expiry (t=0.998s): the local tier serves, but its
  // 5 ms latency lands the serve at t=1.003s — past the lapse due.
  sim.run_until(TimePoint{} + Duration::millis(998));
  std::vector<SpectrumGrant> served{warm};
  reg.query_region_as(7, pos, [&](std::vector<SpectrumGrant> g) {
    served = std::move(g);
  });
  sim.run_until(sim.now() + Duration::millis(100));
  EXPECT_TRUE(served.empty());
  EXPECT_EQ(reg.grants_lapsed(), 1u);
}

}  // namespace
}  // namespace dlte::spectrum
