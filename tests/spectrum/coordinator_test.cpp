#include "spectrum/coordinator.h"

#include <gtest/gtest.h>

namespace dlte::spectrum {
namespace {

// N APs connected through one Internet router, 10 ms each way.
struct Fixture {
  sim::Simulator sim;
  net::Network net{sim};
  NodeId router = net.add_node("internet");
  std::vector<NodeId> nodes;
  std::vector<std::unique_ptr<PeerCoordinator>> coords;

  void build(int n, lte::DlteMode mode,
             Duration period = Duration::seconds(1.0)) {
    for (int i = 0; i < n; ++i) {
      const NodeId node = net.add_node("ap" + std::to_string(i));
      net.add_link(node, router,
                   net::LinkConfig{DataRate::mbps(10.0),
                                   Duration::millis(10)});
      nodes.push_back(node);
      coords.push_back(std::make_unique<PeerCoordinator>(
          sim, net, node,
          CoordinatorConfig{ApId{static_cast<std::uint32_t>(i + 1)}, mode,
                            period}));
    }
    // Full-mesh peering, as the registry's contention domain would give.
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) {
          coords[static_cast<std::size_t>(i)]->add_peer(
              ApId{static_cast<std::uint32_t>(j + 1)},
              nodes[static_cast<std::size_t>(j)]);
        }
      }
    }
  }

  void start_all() {
    for (auto& c : coords) c->start();
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + Duration::seconds(seconds));
  }
};

TEST(Coordinator, FairShareConvergesToEqualSplit) {
  Fixture f;
  f.build(4, lte::DlteMode::kFairShare);
  for (auto& c : f.coords) c->set_offered_load(1.0);
  f.start_all();
  f.run_for(5.0);
  for (auto& c : f.coords) {
    EXPECT_NEAR(c->current_share(), 0.25, 1e-9);
  }
}

TEST(Coordinator, LightDemandKeepsItsAsk) {
  Fixture f;
  f.build(3, lte::DlteMode::kFairShare);
  f.coords[0]->set_offered_load(0.1);
  f.coords[1]->set_offered_load(1.0);
  f.coords[2]->set_offered_load(1.0);
  f.start_all();
  f.run_for(5.0);
  EXPECT_NEAR(f.coords[0]->current_share(), 0.10, 1e-9);
  EXPECT_NEAR(f.coords[1]->current_share(), 0.45, 1e-9);
  EXPECT_NEAR(f.coords[2]->current_share(), 0.45, 1e-9);
}

TEST(Coordinator, CooperativeModeFollowsDemand) {
  Fixture f;
  f.build(2, lte::DlteMode::kCooperative);
  f.coords[0]->set_offered_load(0.9);
  f.coords[1]->set_offered_load(0.1);
  f.start_all();
  f.run_for(5.0);
  EXPECT_NEAR(f.coords[0]->current_share(), 0.9, 1e-9);
  EXPECT_NEAR(f.coords[1]->current_share(), 0.1, 1e-9);
}

TEST(Coordinator, MixedModeFallsBackToFairShare) {
  // Cooperation requires unanimity; one fair-share member downgrades the
  // round to max-min.
  Fixture f;
  f.build(2, lte::DlteMode::kCooperative);
  f.coords[1]->set_mode(lte::DlteMode::kFairShare);
  f.coords[0]->set_offered_load(0.9);
  f.coords[1]->set_offered_load(0.9);
  f.start_all();
  f.run_for(5.0);
  EXPECT_NEAR(f.coords[0]->current_share(), 0.5, 1e-9);
  EXPECT_NEAR(f.coords[1]->current_share(), 0.5, 1e-9);
}

TEST(Coordinator, IsolatedApDoesNotCoordinate) {
  Fixture f;
  f.build(2, lte::DlteMode::kIsolated);
  f.start_all();
  f.run_for(3.0);
  EXPECT_EQ(f.coords[0]->stats().messages_sent, 0u);
  EXPECT_DOUBLE_EQ(f.coords[0]->current_share(), 1.0);
}

TEST(Coordinator, OnlyLowestApLeadsRounds) {
  Fixture f;
  f.build(3, lte::DlteMode::kFairShare);
  for (auto& c : f.coords) c->set_offered_load(0.5);
  f.start_all();
  f.run_for(4.0);
  EXPECT_GT(f.coords[0]->stats().rounds_led, 0u);
  EXPECT_EQ(f.coords[1]->stats().rounds_led, 0u);
  EXPECT_EQ(f.coords[2]->stats().rounds_led, 0u);
}

TEST(Coordinator, AppliesShareToAttachedCell) {
  Fixture f;
  f.build(2, lte::DlteMode::kFairShare);
  mac::LteCellMac cell{mac::CellMacConfig{}};
  f.coords[0]->attach_cell(&cell);
  for (auto& c : f.coords) c->set_offered_load(1.0);
  f.start_all();
  f.run_for(5.0);
  EXPECT_NEAR(cell.prb_share(), 0.5, 1e-9);
}

TEST(Coordinator, NewPeerJoiningRebalances) {
  // Organic growth: a third AP appears; within a few rounds the split
  // moves from 1/2 to 1/3 with no human in the loop.
  Fixture f;
  f.build(3, lte::DlteMode::kFairShare);
  // Initially only APs 0 and 1 know each other.
  f.coords[0]->set_offered_load(1.0);
  f.coords[1]->set_offered_load(1.0);
  f.coords[2]->set_offered_load(1.0);
  f.start_all();
  f.run_for(5.0);
  EXPECT_NEAR(f.coords[0]->current_share(), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(f.coords[2]->current_share(), 1.0 / 3.0, 1e-9);
}

TEST(Coordinator, StatusMessagesFlowBothWays) {
  Fixture f;
  f.build(2, lte::DlteMode::kFairShare);
  f.coords[0]->set_offered_load(0.7);
  f.start_all();
  f.run_for(3.0);
  const auto* status = f.coords[1]->peer_status(ApId{1});
  ASSERT_NE(status, nullptr);
  EXPECT_DOUBLE_EQ(status->offered_load, 0.7);
  EXPECT_GT(f.coords[1]->stats().messages_received, 0u);
}

TEST(Coordinator, OverheadScalesWithPeersAndPeriod) {
  // C7's mechanism: per-AP X2 byte rate grows with membership, shrinks
  // with a longer reporting period (the paper's backhaul-constrained
  // mitigation).
  auto bytes_for = [](int n, double period_s) {
    Fixture f;
    f.build(n, lte::DlteMode::kFairShare, Duration::seconds(period_s));
    for (auto& c : f.coords) c->set_offered_load(1.0);
    f.start_all();
    f.run_for(10.0);
    return f.coords[0]->stats().bytes_sent;
  };
  EXPECT_GT(bytes_for(8, 1.0), bytes_for(2, 1.0));
  EXPECT_GT(bytes_for(4, 0.5), bytes_for(4, 2.0));
}

TEST(Coordinator, DeadPeerExpiresAndSharesRebalance) {
  // WiFi-like failure semantics: a crashed AP stops reporting, its peers
  // expire it after the liveness timeout, and the next round reclaims its
  // share for the survivors.
  Fixture f;
  f.build(3, lte::DlteMode::kFairShare);
  for (auto& c : f.coords) c->set_offered_load(1.0);
  f.start_all();
  f.run_for(5.0);
  EXPECT_NEAR(f.coords[0]->current_share(), 1.0 / 3.0, 1e-9);

  ApId lost{0};
  f.coords[0]->set_peer_loss_observer([&](ApId dead) { lost = dead; });
  // AP 3 goes dark (crash): no more status reports from it.
  f.coords[2]->set_offline(true);
  f.run_for(6.0);  // Past the 3.5 s liveness timeout + a share round.
  EXPECT_EQ(f.coords[0]->stats().peers_expired, 1u);
  EXPECT_EQ(lost, ApId{3});
  EXPECT_EQ(f.coords[0]->peer_count(), 1u);
  EXPECT_NEAR(f.coords[0]->current_share(), 0.5, 1e-9);
  EXPECT_NEAR(f.coords[1]->current_share(), 0.5, 1e-9);

  // The AP returns: its hello re-establishes peering and the split goes
  // back to thirds.
  f.coords[2]->set_offline(false);
  f.coords[2]->send_hello("ops@example.net");
  f.run_for(6.0);
  EXPECT_NEAR(f.coords[0]->current_share(), 1.0 / 3.0, 1e-9);
}

TEST(Coordinator, ZeroLivenessTimeoutDisablesExpiry) {
  sim::Simulator sim;
  net::Network net{sim};
  const NodeId n1 = net.add_node("a");
  const NodeId n2 = net.add_node("b");
  net.add_link(n1, n2, net::LinkConfig{DataRate::mbps(10.0),
                                       Duration::millis(10)});
  CoordinatorConfig cfg{ApId{1}, lte::DlteMode::kFairShare,
                        Duration::seconds(1.0)};
  cfg.peer_liveness_timeout = Duration{};  // Disabled.
  PeerCoordinator quiet{sim, net, n1, cfg};
  quiet.add_peer(ApId{2}, n2);
  quiet.start();
  sim.run_until(sim.now() + Duration::seconds(30.0));
  EXPECT_EQ(quiet.peer_count(), 1u);  // Never heard from, never expired.
  EXPECT_EQ(quiet.stats().peers_expired, 0u);
}

TEST(Coordinator, X2DuplicatesAreCountedAndHarmless) {
  Fixture f;
  f.build(2, lte::DlteMode::kFairShare);
  f.coords[0]->set_impairment(X2Impairment{0.0, 1.0});  // Duplicate all.
  for (auto& c : f.coords) c->set_offered_load(1.0);
  f.start_all();
  f.run_for(5.0);
  EXPECT_GT(f.coords[0]->stats().x2_dups_injected, 0u);
  // Idempotent protocol: duplicates do not corrupt the share math.
  EXPECT_NEAR(f.coords[0]->current_share(), 0.5, 1e-9);
  EXPECT_NEAR(f.coords[1]->current_share(), 0.5, 1e-9);
}

TEST(Coordinator, CoexistenceModeRefusedWithoutWifiOccupants) {
  // Guard rail: switching into LBT or duty-cycle on a band with no
  // registered WiFi occupants is a misconfiguration — X2 share rounds
  // would silently stop with nobody on the air to defer to.
  Fixture f;
  f.build(2, lte::DlteMode::kFairShare);
  obs::MetricsRegistry reg;
  f.coords[0]->set_metrics(&reg, "ap0.");

  EXPECT_FALSE(f.coords[0]->set_mode(lte::DlteMode::kLbt));
  EXPECT_FALSE(f.coords[0]->set_mode(lte::DlteMode::kDutyCycle));
  EXPECT_EQ(f.coords[0]->mode(), lte::DlteMode::kFairShare);
  EXPECT_EQ(f.coords[0]->stats().mode_rejects, 2u);
  EXPECT_EQ(reg.counter("ap0.spectrum.mode_rejects").value(), 2u);

  // Non-coexistence switches stay unguarded.
  EXPECT_TRUE(f.coords[0]->set_mode(lte::DlteMode::kCooperative));
  EXPECT_EQ(f.coords[0]->mode(), lte::DlteMode::kCooperative);
}

TEST(Coordinator, CoexistenceModeAcceptedOnSharedBand) {
  Fixture f;
  f.build(2, lte::DlteMode::kFairShare);
  f.coords[0]->set_wifi_occupants(3);
  EXPECT_TRUE(f.coords[0]->set_mode(lte::DlteMode::kLbt));
  EXPECT_EQ(f.coords[0]->mode(), lte::DlteMode::kLbt);
  EXPECT_EQ(f.coords[0]->stats().mode_rejects, 0u);
  // On a shared band the coordinator stops claiming a licensed split: the
  // on-air arbitration (src/coex) decides airtime, so the local quota
  // opens to the full carrier.
  EXPECT_DOUBLE_EQ(f.coords[0]->current_share(), 1.0);
}

TEST(Coordinator, CoexistenceModeSuppressesShareRounds) {
  // A coordinator in LBT mode neither leads rounds nor applies proposals;
  // its fair-share peer still reports but cannot move the LBT member.
  Fixture f;
  f.build(2, lte::DlteMode::kFairShare);
  f.coords[0]->set_wifi_occupants(1);
  ASSERT_TRUE(f.coords[0]->set_mode(lte::DlteMode::kLbt));
  const auto applied_at_switch = f.coords[0]->stats().shares_applied;
  for (auto& c : f.coords) c->set_offered_load(1.0);
  f.start_all();
  f.run_for(5.0);
  EXPECT_EQ(f.coords[0]->stats().rounds_led, 0u);
  EXPECT_EQ(f.coords[0]->stats().shares_applied, applied_at_switch);
  EXPECT_DOUBLE_EQ(f.coords[0]->current_share(), 1.0);
}

TEST(Coordinator, X2LoadIsKbitPerSecondScale) {
  // §4.3 [28]: X2 is low-bandwidth. At 1 Hz reporting with 7 peers the
  // per-AP load must be well under 100 kbit/s.
  Fixture f;
  f.build(8, lte::DlteMode::kFairShare);
  for (auto& c : f.coords) c->set_offered_load(1.0);
  f.start_all();
  f.run_for(10.0);
  const double kbps =
      f.coords[0]->stats().bytes_sent * 8.0 / 10.0 / 1000.0;
  EXPECT_LT(kbps, 100.0);
  EXPECT_GT(kbps, 0.1);
}

}  // namespace
}  // namespace dlte::spectrum
