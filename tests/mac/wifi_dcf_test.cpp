#include "mac/wifi_dcf.h"

#include <gtest/gtest.h>

#include "phy/wifi_phy.h"

namespace dlte::mac {
namespace {

TEST(WifiDcf, SingleStationNearsPhyEfficiency) {
  DcfSimulator sim{1};
  const int s = sim.add_station(DcfStationConfig{.rate_index = 4});
  sim.run(Duration::seconds(1.0));
  const auto rate = sim.stats(s).goodput(sim.elapsed());
  // MCS3 = 26 Mb/s PHY; MAC efficiency with DIFS/backoff/ACK ≈ 60–80%.
  EXPECT_GT(rate.to_mbps(), 14.0);
  EXPECT_LT(rate.to_mbps(), 26.0);
  EXPECT_EQ(sim.stats(s).collisions, 0);
}

TEST(WifiDcf, TwoSensingStationsShareFairly) {
  DcfSimulator sim{2};
  const int a = sim.add_station(DcfStationConfig{});
  const int b = sim.add_station(DcfStationConfig{});
  sim.run(Duration::seconds(2.0));
  const double ga = sim.stats(a).goodput(sim.elapsed()).to_mbps();
  const double gb = sim.stats(b).goodput(sim.elapsed()).to_mbps();
  EXPECT_GT(ga, 0.0);
  EXPECT_GT(gb, 0.0);
  EXPECT_NEAR(ga / (ga + gb), 0.5, 0.1);
}

TEST(WifiDcf, ContentionWastesCapacity) {
  // Aggregate of N contending stations is below a lone station's rate.
  auto aggregate = [](int n) {
    DcfSimulator sim{3};
    for (int i = 0; i < n; ++i) sim.add_station(DcfStationConfig{});
    sim.run(Duration::seconds(1.0));
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      total += sim.stats(i).goodput(sim.elapsed()).to_mbps();
    }
    return total;
  };
  const double one = aggregate(1);
  const double eight = aggregate(8);
  EXPECT_LT(eight, one);
}

TEST(WifiDcf, HiddenTerminalsCollideBadly) {
  // a and b cannot sense each other but both corrupt frames at the common
  // receiver — the classic hidden-terminal pathology.
  DcfSimulator hidden{4};
  const int ha = hidden.add_station(DcfStationConfig{});
  const int hb = hidden.add_station(DcfStationConfig{});
  hidden.set_sensing(ha, hb, false);
  hidden.run(Duration::seconds(1.0));

  DcfSimulator exposed{4};
  const int ea = exposed.add_station(DcfStationConfig{});
  const int eb = exposed.add_station(DcfStationConfig{});
  exposed.run(Duration::seconds(1.0));
  (void)ea;
  (void)eb;

  // Exponential backoff adapts, so the pathology shows as a large
  // multiple of collisions and a substantial throughput loss rather than
  // total starvation.
  const auto h_coll = hidden.stats(ha).collisions + hidden.stats(hb).collisions;
  const auto e_coll =
      exposed.stats(ea).collisions + exposed.stats(eb).collisions;
  EXPECT_GT(h_coll, 4 * std::max<std::int64_t>(e_coll, 1));

  const double h_good = hidden.stats(ha).delivered_bits +
                        hidden.stats(hb).delivered_bits;
  const double e_good = exposed.stats(ea).delivered_bits +
                        exposed.stats(eb).delivered_bits;
  EXPECT_LT(h_good, 0.7 * e_good);
}

TEST(WifiDcf, IndependentCollisionDomainsDontInteract) {
  DcfSimulator sim{5};
  const int a = sim.add_station(DcfStationConfig{});
  const int b = sim.add_station(DcfStationConfig{});
  // Fully isolate the two stations (different towns).
  sim.set_sensing(a, b, false);
  sim.set_interference(a, b, false);
  sim.set_interference(b, a, false);
  sim.run(Duration::seconds(1.0));
  // Each performs like a lone station.
  EXPECT_GT(sim.stats(a).goodput(sim.elapsed()).to_mbps(), 14.0);
  EXPECT_GT(sim.stats(b).goodput(sim.elapsed()).to_mbps(), 14.0);
  EXPECT_EQ(sim.stats(a).collisions, 0);
}

TEST(WifiDcf, UnsaturatedStationDeliversOfferedLoad) {
  DcfSimulator sim{6};
  // 100 frames/s of 1500 B = 1.2 Mb/s, far below capacity.
  const int s = sim.add_station(DcfStationConfig{
      .saturated = false, .arrival_fps = 100.0, .frame_bytes = 1500});
  sim.run(Duration::seconds(2.0));
  const auto& st = sim.stats(s);
  EXPECT_NEAR(static_cast<double>(st.delivered_frames), 200.0, 40.0);
  EXPECT_EQ(st.dropped_frames, 0);
}

TEST(WifiDcf, ChannelErrorsCountedSeparatelyFromCollisions) {
  DcfSimulator sim{7};
  const int s = sim.add_station(DcfStationConfig{.channel_fer = 0.3});
  sim.run(Duration::seconds(0.5));
  EXPECT_GT(sim.stats(s).channel_losses, 0);
  EXPECT_EQ(sim.stats(s).collisions, 0);
}

TEST(WifiDcf, RetryLimitDropsFrames) {
  // Two permanently-hidden saturated stations: every frame collides, so
  // frames are eventually dropped at the retry limit.
  DcfSimulator sim{8};
  const int a = sim.add_station(DcfStationConfig{.retry_limit = 2});
  const int b = sim.add_station(DcfStationConfig{.retry_limit = 2});
  sim.set_sensing(a, b, false);
  sim.run(Duration::seconds(1.0));
  EXPECT_GT(sim.stats(a).dropped_frames + sim.stats(b).dropped_frames, 0);
}

TEST(WifiDcf, DeterministicForSameSeed) {
  auto run_once = [] {
    DcfSimulator sim{42};
    sim.add_station(DcfStationConfig{});
    sim.add_station(DcfStationConfig{});
    sim.run(Duration::seconds(0.5));
    return sim.stats(0).delivered_frames;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(WifiDcf, CcaReportsBusyWhileSensedStationTransmits) {
  DcfSimulator sim{10};
  const int a = sim.add_station(DcfStationConfig{});
  const int b = sim.add_station(DcfStationConfig{});
  // Step slot by slot until one station is on the air, then check CCA on
  // both sides of the sensing relation.
  bool observed = false;
  for (int i = 0; i < 2000 && !observed; ++i) {
    sim.run(phy::kSlot);
    if (sim.transmitting(a)) {
      EXPECT_TRUE(sim.medium_busy_for(b));
      EXPECT_FALSE(sim.medium_busy_for(a));  // Own frame is not CCA busy.
      observed = true;
    }
  }
  EXPECT_TRUE(observed);
}

TEST(WifiDcf, CcaIgnoresStationsOutsideSensingRange) {
  DcfSimulator sim{11};
  const int a = sim.add_station(DcfStationConfig{});
  const int b = sim.add_station(DcfStationConfig{});
  sim.set_sensing(a, b, false);
  bool observed = false;
  for (int i = 0; i < 2000 && !observed; ++i) {
    sim.run(phy::kSlot);
    if (sim.transmitting(a) && !sim.transmitting(b)) {
      EXPECT_FALSE(sim.medium_busy_for(b));  // Hidden: b cannot hear a.
      observed = true;
    }
  }
  EXPECT_TRUE(observed);
}

TEST(WifiDcf, HiddenTerminalAccountingIsConsistent) {
  // Every attempt ends exactly one way: delivered, collided, or lost to
  // channel error; drops are a subset of failed attempts.
  DcfSimulator sim{12};
  const int a = sim.add_station(DcfStationConfig{.retry_limit = 3});
  const int b = sim.add_station(DcfStationConfig{.retry_limit = 3});
  sim.set_sensing(a, b, false);
  sim.run(Duration::seconds(1.0));
  for (int s : {a, b}) {
    const auto& st = sim.stats(s);
    // A frame still in flight at the horizon is attempted but unresolved.
    const std::int64_t in_flight = sim.transmitting(s) ? 1 : 0;
    EXPECT_EQ(st.attempts,
              st.delivered_frames + st.collisions + st.channel_losses +
                  in_flight);
    EXPECT_LE(st.dropped_frames, st.collisions + st.channel_losses);
    EXPECT_GT(st.collisions, 0);
  }
}

TEST(DcfBackoff, DrawsAreDeterministicPerDerivedStream) {
  // The backoff discipline the coexistence subsystem reuses: draws from
  // streams derived with the same (seed, component, index) must agree,
  // and distinct indices must give distinct sequences.
  auto draws = [](std::uint64_t index) {
    auto rng = sim::RngStream::derive(7, "coex-lte", index);
    DcfBackoff backoff{BackoffConfig{15, 1023, 7}};
    std::vector<int> out;
    for (int i = 0; i < 32; ++i) {
      out.push_back(backoff.draw(rng));
      (void)backoff.note_failure();  // Widen CW as a losing station would.
    }
    return out;
  };
  EXPECT_EQ(draws(0), draws(0));
  EXPECT_EQ(draws(3), draws(3));
  EXPECT_NE(draws(0), draws(1));
}

TEST(DcfBackoff, WindowDoublesOnFailureAndResetsOnSuccess) {
  DcfBackoff backoff{BackoffConfig{15, 1023, 7}};
  EXPECT_EQ(backoff.contention_window(), 15);
  EXPECT_FALSE(backoff.note_failure());
  EXPECT_EQ(backoff.contention_window(), 31);
  EXPECT_FALSE(backoff.note_failure());
  EXPECT_EQ(backoff.contention_window(), 63);
  backoff.note_success();
  EXPECT_EQ(backoff.contention_window(), 15);
  EXPECT_EQ(backoff.retries(), 0);
}

TEST(DcfBackoff, RetryLimitSignalsDropAndResets) {
  DcfBackoff backoff{BackoffConfig{15, 1023, 2}};
  EXPECT_FALSE(backoff.note_failure());
  EXPECT_FALSE(backoff.note_failure());
  EXPECT_TRUE(backoff.note_failure());  // Third failure exceeds limit 2.
  EXPECT_EQ(backoff.contention_window(), 15);
  EXPECT_EQ(backoff.retries(), 0);
}

TEST(DcfBackoff, WindowIsCappedAtCwMax) {
  DcfBackoff backoff{BackoffConfig{15, 255, 100}};
  for (int i = 0; i < 10; ++i) (void)backoff.note_failure();
  EXPECT_EQ(backoff.contention_window(), 255);
}

// Parameterized: aggregate goodput decreases (or at best saturates) as
// contenders are added — DCF's collision overhead grows with n.
class ContenderSweep : public ::testing::TestWithParam<int> {};

TEST_P(ContenderSweep, AggregateNonIncreasingInContention) {
  const int n = GetParam();
  auto aggregate = [](int k) {
    DcfSimulator sim{9};
    for (int i = 0; i < k; ++i) sim.add_station(DcfStationConfig{});
    sim.run(Duration::seconds(1.0));
    double total = 0.0;
    for (int i = 0; i < k; ++i) total += sim.stats(i).delivered_bits;
    return total;
  };
  EXPECT_LE(aggregate(n + 2), aggregate(n) * 1.03);
}

INSTANTIATE_TEST_SUITE_P(Contenders, ContenderSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace dlte::mac
