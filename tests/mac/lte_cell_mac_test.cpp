#include "mac/lte_cell_mac.h"

#include <gtest/gtest.h>

#include "phy/lte_amc.h"

namespace dlte::mac {
namespace {

SinrProvider fixed(double db) {
  return [db] { return Decibels{db}; };
}

TEST(LteCellMac, FullBufferReachesNearPeakRate) {
  LteCellMac cell{CellMacConfig{}};
  cell.add_ue(UeId{1}, fixed(30.0), UeTrafficConfig{.full_buffer = true});
  cell.run(Duration::seconds(1.0));
  const auto rate = cell.stats(UeId{1}).goodput(cell.elapsed());
  const auto peak = phy::peak_rate(Decibels{30.0}, Hertz::mhz(10.0));
  EXPECT_GT(rate.to_mbps(), 0.9 * peak.to_mbps());
  EXPECT_LE(rate.to_mbps(), peak.to_mbps() * 1.01);
}

TEST(LteCellMac, LightLoadFullyServed) {
  LteCellMac cell{CellMacConfig{}};
  cell.add_ue(UeId{1}, fixed(20.0),
              UeTrafficConfig{.offered = DataRate::mbps(1.0)});
  cell.run(Duration::seconds(2.0));
  const auto& st = cell.stats(UeId{1});
  EXPECT_NEAR(st.delivered_bits, st.offered_bits, st.offered_bits * 0.02);
  EXPECT_LT(st.backlog_bits, 20'000.0);
}

TEST(LteCellMac, CapacitySharedAcrossUes) {
  LteCellMac cell{CellMacConfig{}};
  for (std::uint32_t i = 1; i <= 4; ++i) {
    cell.add_ue(UeId{i}, fixed(25.0), UeTrafficConfig{.full_buffer = true});
  }
  cell.run(Duration::seconds(1.0));
  double total = 0.0;
  for (UeId id : cell.ue_ids()) {
    total += cell.stats(id).goodput(cell.elapsed()).to_mbps();
  }
  const auto peak = phy::peak_rate(Decibels{25.0}, Hertz::mhz(10.0));
  EXPECT_GT(total, 0.85 * peak.to_mbps());
  EXPECT_LE(total, peak.to_mbps() * 1.01);
}

TEST(LteCellMac, PrbShareThrottlesProportionally) {
  LteCellMac full{CellMacConfig{.prb_share = 1.0}};
  LteCellMac half{CellMacConfig{.prb_share = 0.5}};
  for (auto* cell : {&full, &half}) {
    cell->add_ue(UeId{1}, fixed(20.0), UeTrafficConfig{.full_buffer = true});
    cell->run(Duration::seconds(1.0));
  }
  const double r_full = full.stats(UeId{1}).goodput(full.elapsed()).to_mbps();
  const double r_half = half.stats(UeId{1}).goodput(half.elapsed()).to_mbps();
  EXPECT_NEAR(r_half, r_full * 0.5, r_full * 0.05);
}

TEST(LteCellMac, ShareAdjustableMidRun) {
  LteCellMac cell{CellMacConfig{}};
  cell.add_ue(UeId{1}, fixed(20.0), UeTrafficConfig{.full_buffer = true});
  cell.run(Duration::seconds(1.0));
  const double before = cell.stats(UeId{1}).delivered_bits;
  cell.set_prb_share(0.25);
  cell.run(Duration::seconds(1.0));
  const double second = cell.stats(UeId{1}).delivered_bits - before;
  EXPECT_NEAR(second, before * 0.25, before * 0.05);
}

TEST(LteCellMac, UnreachableUeGetsNothing) {
  LteCellMac cell{CellMacConfig{}};
  cell.add_ue(UeId{1}, fixed(-20.0), UeTrafficConfig{.full_buffer = true});
  cell.run(Duration::seconds(0.5));
  EXPECT_EQ(cell.stats(UeId{1}).delivered_bits, 0.0);
}

TEST(LteCellMac, WeakSinrCausesHarqRetransmissions) {
  LteCellMac cell{CellMacConfig{}};
  // Just at the CQI-1 threshold: substantial first-tx BLER.
  cell.add_ue(UeId{1}, fixed(-6.7), UeTrafficConfig{.full_buffer = true});
  cell.run(Duration::seconds(1.0));
  const auto& st = cell.stats(UeId{1});
  EXPECT_GT(st.harq_retransmissions, 0);
  EXPECT_GT(st.delivered_bits, 0.0);
}

TEST(LteCellMac, HarqReducesResidualLossAtCellEdge) {
  // At the CQI-1 operating point the first transmission fails ~10% of the
  // time. Without HARQ those blocks are lost outright; with 4-shot Chase
  // combining residual loss collapses to near zero.
  CellMacConfig no_harq;
  no_harq.harq = phy::HarqConfig{.max_transmissions = 1};
  CellMacConfig with_harq;  // Default: 4 tx, Chase.

  LteCellMac a{no_harq}, b{with_harq};
  for (auto* cell : {&a, &b}) {
    cell->add_ue(UeId{1}, fixed(-6.7), UeTrafficConfig{.full_buffer = true});
    cell->run(Duration::seconds(1.0));
  }
  const auto& sa = a.stats(UeId{1});
  const auto& sb = b.stats(UeId{1});
  const double loss_a = sa.dropped_bits / (sa.delivered_bits + sa.dropped_bits);
  const double loss_b = sb.dropped_bits / (sb.delivered_bits + sb.dropped_bits);
  EXPECT_GT(loss_a, 0.05);
  EXPECT_LT(loss_b, 0.01);
}

TEST(LteCellMac, RemoveUeStopsService) {
  LteCellMac cell{CellMacConfig{}};
  cell.add_ue(UeId{1}, fixed(20.0), UeTrafficConfig{.full_buffer = true});
  cell.add_ue(UeId{2}, fixed(20.0), UeTrafficConfig{.full_buffer = true});
  cell.run(Duration::seconds(0.5));
  EXPECT_TRUE(cell.has_ue(UeId{1}));
  cell.remove_ue(UeId{1});
  EXPECT_FALSE(cell.has_ue(UeId{1}));
  cell.run(Duration::seconds(0.5));
  EXPECT_EQ(cell.ue_ids().size(), 1u);
}

TEST(LteCellMac, DeterministicForSameSeed) {
  auto run_once = [] {
    LteCellMac cell{CellMacConfig{.seed = 99}};
    cell.add_ue(UeId{1}, fixed(3.0), UeTrafficConfig{.full_buffer = true});
    cell.run(Duration::seconds(0.5));
    return cell.stats(UeId{1}).delivered_bits;
  };
  EXPECT_EQ(run_once(), run_once());
}

// Property sweep: goodput is monotone (within noise) in SINR.
class SinrSweep : public ::testing::TestWithParam<double> {};

TEST_P(SinrSweep, GoodputNondecreasingInSinr) {
  const double sinr = GetParam();
  auto goodput_at = [](double db) {
    LteCellMac cell{CellMacConfig{}};
    cell.add_ue(UeId{1}, fixed(db), UeTrafficConfig{.full_buffer = true});
    cell.run(Duration::seconds(0.5));
    return cell.stats(UeId{1}).goodput(cell.elapsed()).to_mbps();
  };
  EXPECT_LE(goodput_at(sinr), goodput_at(sinr + 3.0) * 1.05 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Points, SinrSweep,
                         ::testing::Values(-5.0, 0.0, 5.0, 10.0, 15.0, 20.0));

}  // namespace
}  // namespace dlte::mac
