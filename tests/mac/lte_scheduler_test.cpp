#include "mac/lte_scheduler.h"

#include <gtest/gtest.h>

#include <numeric>

#include "phy/lte_amc.h"

namespace dlte::mac {
namespace {

SchedUe ue(std::uint32_t id, int cqi, double backlog = 1e9,
           double avg = 1.0) {
  return SchedUe{UeId{id}, cqi, backlog, avg};
}

int total_allocated(const std::vector<PrbAllocation>& a) {
  return std::accumulate(a.begin(), a.end(), 0,
                         [](int s, const PrbAllocation& x) {
                           return s + x.prbs;
                         });
}

class AllSchedulers : public ::testing::TestWithParam<SchedulerPolicy> {};

TEST_P(AllSchedulers, NeverExceedsPrbBudget) {
  auto s = make_scheduler(GetParam());
  std::vector<SchedUe> ues{ue(1, 15), ue(2, 7), ue(3, 3), ue(4, 12)};
  for (int round = 0; round < 20; ++round) {
    const auto a = s->schedule(ues, 50);
    EXPECT_LE(total_allocated(a), 50);
  }
}

TEST_P(AllSchedulers, SkipsUnreachableAndIdleUes) {
  auto s = make_scheduler(GetParam());
  std::vector<SchedUe> ues{ue(1, 0, 1e9), ue(2, 10, 0.0), ue(3, 10, 1e9)};
  const auto a = s->schedule(ues, 50);
  for (const auto& g : a) {
    EXPECT_EQ(g.ue, UeId{3});
  }
  EXPECT_FALSE(a.empty());
}

TEST_P(AllSchedulers, EmptyInputsEmptyOutput) {
  auto s = make_scheduler(GetParam());
  EXPECT_TRUE(s->schedule({}, 50).empty());
  std::vector<SchedUe> ues{ue(1, 10)};
  EXPECT_TRUE(s->schedule(ues, 0).empty());
}

TEST_P(AllSchedulers, SingleUeGetsWholeBudgetIfNeeded) {
  auto s = make_scheduler(GetParam());
  std::vector<SchedUe> ues{ue(1, 10)};
  const auto a = s->schedule(ues, 50);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].prbs, 50);
}

TEST_P(AllSchedulers, SmallBacklogGetsOnlyWhatItNeeds) {
  auto s = make_scheduler(GetParam());
  // Backlog of exactly 1 PRB worth of bits.
  const double one_prb = phy::transport_block_bits(10, 1);
  std::vector<SchedUe> ues{ue(1, 10, one_prb)};
  const auto a = s->schedule(ues, 50);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].prbs, 1);
}

INSTANTIATE_TEST_SUITE_P(Policies, AllSchedulers,
                         ::testing::Values(SchedulerPolicy::kRoundRobin,
                                           SchedulerPolicy::kProportionalFair,
                                           SchedulerPolicy::kMaxCi));

TEST(RoundRobin, RotatesServiceOrder) {
  RoundRobinScheduler s;
  // Budget of 1 PRB: only one UE served per subframe; service must rotate.
  std::vector<SchedUe> ues{ue(1, 10), ue(2, 10), ue(3, 10)};
  std::vector<std::uint32_t> served;
  for (int i = 0; i < 6; ++i) {
    const auto a = s.schedule(ues, 1);
    ASSERT_EQ(a.size(), 1u);
    served.push_back(a[0].ue.value());
  }
  EXPECT_EQ(served, (std::vector<std::uint32_t>{1, 2, 3, 1, 2, 3}));
}

TEST(RoundRobin, SplitsEvenlyAmongEqualUes) {
  RoundRobinScheduler s;
  std::vector<SchedUe> ues{ue(1, 10), ue(2, 10)};
  const auto a = s.schedule(ues, 50);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].prbs + a[1].prbs, 50);
  EXPECT_NEAR(a[0].prbs, 25, 1);
}

TEST(MaxCi, ServesBestChannelFirst) {
  MaxCiScheduler s;
  std::vector<SchedUe> ues{ue(1, 5), ue(2, 15), ue(3, 10)};
  const auto a = s.schedule(ues, 10);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a[0].ue, UeId{2});
}

TEST(MaxCi, StarvesEdgeUeUnderLoad) {
  MaxCiScheduler s;
  // Both want everything; the better channel takes the whole budget.
  std::vector<SchedUe> ues{ue(1, 15, 1e12), ue(2, 3, 1e12)};
  const auto a = s.schedule(ues, 50);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].ue, UeId{1});
}

TEST(ProportionalFair, PrefersUnderservedUe) {
  ProportionalFairScheduler s;
  // Same channel, but UE 2 has been served 100x more.
  std::vector<SchedUe> ues{ue(1, 10, 1e12, 1e4), ue(2, 10, 1e12, 1e6)};
  const auto a = s.schedule(ues, 50);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a[0].ue, UeId{1});
}

TEST(ProportionalFair, PrefersBetterChannelAtEqualHistory) {
  ProportionalFairScheduler s;
  std::vector<SchedUe> ues{ue(1, 4, 1e12, 1e5), ue(2, 14, 1e12, 1e5)};
  const auto a = s.schedule(ues, 50);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a[0].ue, UeId{2});
}

}  // namespace
}  // namespace dlte::mac
