// GTP-U user plane over the packet substrate: the Fig.-1 tunnel made of
// actual packets.
#include "epc/gtp_plane.h"

#include <gtest/gtest.h>

namespace dlte::epc {
namespace {

struct Rig {
  sim::Simulator sim;
  net::Network net{sim};
  NodeId enb = net.add_node("enb");
  NodeId gw = net.add_node("pgw");
  NodeId internet = net.add_node("internet");
  Gateway gateway{0x0A2D0000};
  GatewayDataPlane gw_plane{net, gw, gateway};
  EnbDataPlane enb_plane{net, enb, gw};

  Rig() {
    net.add_link(enb, gw,
                 net::LinkConfig{DataRate::mbps(100.0), Duration::millis(25)});
    net.add_link(gw, internet,
                 net::LinkConfig{DataRate::mbps(1000.0), Duration::millis(5)});
  }

  BearerContext& attach_ue(std::uint64_t imsi) {
    BearerContext& b = gateway.create_session(Imsi{imsi}, BearerId{5});
    gateway.complete_session(Imsi{imsi}, Teid{5000 + b.uplink_teid.value()});
    const auto* ctx = gateway.find_by_imsi(Imsi{imsi});
    gw_plane.bind_enb(ctx->downlink_teid, enb);
    enb_plane.configure_bearer(ctx->ue_ip, ctx->uplink_teid);
    return b;
  }
};

TEST(GtpPlane, InnerCodecRoundTrip) {
  InnerDatagram d{net::Ipv4{0x0A2D0001}, NodeId{7}, 1400};
  auto back = decode_inner(encode_inner(d));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ue_ip, d.ue_ip);
  EXPECT_EQ(back->remote, d.remote);
  EXPECT_EQ(back->size_bytes, 1400);
  EXPECT_FALSE(decode_inner({}).ok());
}

TEST(GtpPlane, UplinkDecapsulatesAndForwards) {
  Rig rig;
  rig.attach_ue(1);
  const auto* bearer = rig.gateway.find_by_imsi(Imsi{1});

  int arrived = 0;
  int arrived_size = 0;
  rig.net.set_protocol_handler(rig.internet, kUserIpProtocol,
                               [&](net::Packet&& p) {
                                 ++arrived;
                                 arrived_size = p.size_bytes;
                               });
  rig.enb_plane.send_uplink(bearer->ue_ip, rig.internet, 1200);
  rig.sim.run_all();

  EXPECT_EQ(arrived, 1);
  EXPECT_EQ(arrived_size, 1200);  // Overhead stripped at the gateway.
  EXPECT_EQ(rig.gw_plane.uplink_decapsulated(), 1u);
  EXPECT_EQ(rig.gateway.uplink_packets(), 1u);
  EXPECT_EQ(rig.gateway.uplink_bytes(), 1200u);
  // The tunnel leg carried the overhead.
  EXPECT_EQ(rig.net.link_stats(rig.enb, rig.gw).bytes_sent,
            1200u + static_cast<unsigned>(lte::kGtpTunnelOverheadBytes));
}

TEST(GtpPlane, DownlinkEncapsulatesByUeAddress) {
  Rig rig;
  rig.attach_ue(1);
  const auto* bearer = rig.gateway.find_by_imsi(Imsi{1});

  InnerDatagram seen{};
  rig.enb_plane.set_downlink_handler(
      [&](const InnerDatagram& d) { seen = d; });
  // Internet host sends toward the UE's address (routed to the P-GW).
  rig.net.send(net::Packet{rig.internet, rig.gw, 900, kUserIpProtocol,
                           encode_inner(InnerDatagram{bearer->ue_ip,
                                                      rig.internet, 900})});
  rig.sim.run_all();

  EXPECT_EQ(seen.ue_ip, bearer->ue_ip);
  EXPECT_EQ(seen.size_bytes, 900);
  EXPECT_EQ(rig.gw_plane.downlink_encapsulated(), 1u);
  EXPECT_EQ(rig.gateway.downlink_bytes(), 900u);
  EXPECT_EQ(rig.enb_plane.downlink_received(), 1u);
}

TEST(GtpPlane, UnknownTeidDropped) {
  Rig rig;
  rig.attach_ue(1);
  // Hand-craft a GTP frame with a bogus TEID.
  auto bytes = lte::encode_gtpu(lte::GtpUHeader{Teid{0xbad}, 100, 0});
  const auto inner = encode_inner(
      InnerDatagram{net::Ipv4{1}, rig.internet, 100});
  bytes.insert(bytes.end(), inner.begin(), inner.end());
  rig.net.send(net::Packet{rig.enb, rig.gw, 140, kGtpUProtocol, bytes});
  rig.sim.run_all();
  EXPECT_EQ(rig.gw_plane.unknown_teid_drops(), 1u);
  EXPECT_EQ(rig.gateway.uplink_packets(), 0u);
}

TEST(GtpPlane, UnknownUeAddressDropped) {
  Rig rig;
  rig.attach_ue(1);
  rig.net.send(net::Packet{
      rig.internet, rig.gw, 100, kUserIpProtocol,
      encode_inner(InnerDatagram{net::Ipv4{0xdeadbeef}, rig.internet, 100})});
  rig.sim.run_all();
  EXPECT_EQ(rig.gw_plane.unknown_ue_drops(), 1u);
}

TEST(GtpPlane, UnconfiguredBearerRefusesUplink) {
  Rig rig;
  rig.enb_plane.send_uplink(net::Ipv4{0x01020304}, rig.internet, 500);
  rig.sim.run_all();
  EXPECT_EQ(rig.enb_plane.unconfigured_drops(), 1u);
  EXPECT_EQ(rig.gw_plane.uplink_decapsulated(), 0u);
}

TEST(GtpPlane, MultipleBearersKeptSeparate) {
  Rig rig;
  rig.attach_ue(1);
  rig.attach_ue(2);
  const auto* b1 = rig.gateway.find_by_imsi(Imsi{1});
  const auto* b2 = rig.gateway.find_by_imsi(Imsi{2});
  rig.enb_plane.send_uplink(b1->ue_ip, rig.internet, 100);
  rig.enb_plane.send_uplink(b2->ue_ip, rig.internet, 200);
  rig.enb_plane.send_uplink(b2->ue_ip, rig.internet, 200);
  rig.sim.run_all();
  EXPECT_EQ(rig.gateway.uplink_packets(), 3u);
  EXPECT_EQ(rig.gateway.uplink_bytes(), 500u);
}

TEST(GtpPlane, TromboneLatencyIsVisible) {
  // Downlink internet→gw is 5 ms; tunnel gw→enb is 25 ms. The UE-visible
  // arrival reflects both legs — the measured trombone.
  Rig rig;
  rig.attach_ue(1);
  const auto* bearer = rig.gateway.find_by_imsi(Imsi{1});
  TimePoint arrival;
  rig.enb_plane.set_downlink_handler(
      [&](const InnerDatagram&) { arrival = rig.sim.now(); });
  rig.net.send(net::Packet{rig.internet, rig.gw, 1000, kUserIpProtocol,
                           encode_inner(InnerDatagram{bearer->ue_ip,
                                                      rig.internet, 1000})});
  rig.sim.run_all();
  EXPECT_GT(arrival.to_millis(), 30.0);
  EXPECT_LT(arrival.to_millis(), 32.0);
}

}  // namespace
}  // namespace dlte::epc
