#include "epc/hss.h"

#include <gtest/gtest.h>

namespace dlte::epc {
namespace {

crypto::Key128 test_key() {
  crypto::Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) k[i] = static_cast<std::uint8_t>(i);
  return k;
}

crypto::Block128 test_op() {
  crypto::Block128 op{};
  op[0] = 0xcd;
  return op;
}

TEST(Hss, ProvisionAndCount) {
  Hss hss{sim::RngStream{1}};
  EXPECT_EQ(hss.subscriber_count(), 0u);
  hss.provision(Imsi{1001}, test_key(), test_op());
  EXPECT_TRUE(hss.has_subscriber(Imsi{1001}));
  EXPECT_FALSE(hss.has_subscriber(Imsi{9999}));
  EXPECT_EQ(hss.subscriber_count(), 1u);
}

TEST(Hss, UnknownImsiFails) {
  Hss hss{sim::RngStream{1}};
  EXPECT_FALSE(hss.generate_auth_vector(Imsi{404}, "net").ok());
}

TEST(Hss, VectorsDifferPerRequest) {
  Hss hss{sim::RngStream{1}};
  hss.provision(Imsi{1001}, test_key(), test_op());
  auto v1 = hss.generate_auth_vector(Imsi{1001}, "net");
  auto v2 = hss.generate_auth_vector(Imsi{1001}, "net");
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_NE(v1->rand, v2->rand);    // Fresh RAND.
  EXPECT_NE(v1->kasme, v2->kasme);  // Fresh session key.
}

TEST(Hss, KasmeBoundToServingNetwork) {
  // The serving-network binding scopes a session to one AP even with
  // published keys: vectors for different APs yield different KASMEs.
  Hss hss{sim::RngStream{2}};
  hss.provision(Imsi{1001}, test_key(), test_op());
  // Reset RNG determinism is not required: compare two different APs only
  // through the property that same (K, RAND, SQN) but different SN id
  // differ — exercised in key_derivation tests. Here ensure the id is
  // plumbed at all: vector generation succeeds for any id.
  EXPECT_TRUE(hss.generate_auth_vector(Imsi{1001}, "dlte-ap-1").ok());
  EXPECT_TRUE(hss.generate_auth_vector(Imsi{1001}, "dlte-ap-2").ok());
}

TEST(Hss, PublishedKeysGatedByFlag) {
  Hss hss{sim::RngStream{3}};
  hss.provision(Imsi{1001}, test_key(), test_op());
  EXPECT_FALSE(hss.published_keys(Imsi{1001}).ok());  // Not yet published.
  hss.publish_keys(Imsi{1001});
  auto keys = hss.published_keys(Imsi{1001});
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->imsi, Imsi{1001});
  EXPECT_EQ(keys->k, test_key());
  EXPECT_EQ(keys->opc, crypto::derive_opc(test_key(), test_op()));
  EXPECT_FALSE(hss.published_keys(Imsi{2002}).ok());  // Unknown.
}

TEST(Hss, SqnAdvancesMonotonically) {
  Hss hss{sim::RngStream{4}};
  hss.provision(Imsi{1001}, test_key(), test_op());
  auto v1 = hss.generate_auth_vector(Imsi{1001}, "net");
  auto v2 = hss.generate_auth_vector(Imsi{1001}, "net");
  // SQN⊕AK differs because both SQN and AK change.
  EXPECT_NE(v1->sqn_xor_ak, v2->sqn_xor_ak);
}

}  // namespace
}  // namespace dlte::epc
