// End-to-end attach: NasClient (UE) ↔ Mme (core) over the S1AP/NAS codecs.
// This is the §4.1 compatibility proof in miniature: an unmodified client
// state machine completes EPS-AKA attach against the same core whether it
// is deployed centralized or as a dLTE local stub.
#include <gtest/gtest.h>

#include "epc/epc.h"
#include "ue/nas_client.h"

namespace dlte::epc {
namespace {

crypto::Key128 key_for(std::uint64_t imsi) {
  crypto::Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) {
    k[i] = static_cast<std::uint8_t>(imsi + i * 13);
  }
  return k;
}

const crypto::Block128 kOp = [] {
  crypto::Block128 op{};
  op[0] = 0xcd;
  op[15] = 0x18;
  return op;
}();

// Minimal eNodeB shim: relays NAS between one NasClient and the MME,
// and answers context setup. This is what core/ does at scale; the shim
// keeps the protocol test focused.
struct EnbShim {
  sim::Simulator& sim;
  Mme& mme;
  CellId cell;
  EnbUeId enb_ue_id{1};
  ue::NasClient* client{nullptr};
  Teid enb_teid{777};
  int context_setups{0};

  void start(ue::NasClient& c) {
    client = &c;
    lte::InitialUeMessage init;
    init.enb_ue_id = enb_ue_id;
    init.cell = cell;
    init.nas_pdu = lte::encode_nas(c.start_attach());
    mme.handle_s1ap(cell, lte::S1apMessage{init});
  }

  void on_s1ap(const lte::S1apMessage& msg) {
    if (const auto* down = std::get_if<lte::DownlinkNasTransport>(&msg)) {
      auto nas = lte::decode_nas(down->nas_pdu);
      ASSERT_TRUE(nas.ok());
      auto reply = client->handle(*nas);
      if (reply) {
        lte::UplinkNasTransport up;
        up.enb_ue_id = down->enb_ue_id;
        up.mme_ue_id = down->mme_ue_id;
        up.nas_pdu = lte::encode_nas(*reply);
        mme.handle_s1ap(cell, lte::S1apMessage{up});
      }
      return;
    }
    if (const auto* ctx =
            std::get_if<lte::InitialContextSetupRequest>(&msg)) {
      ++context_setups;
      lte::InitialContextSetupResponse resp;
      resp.enb_ue_id = ctx->enb_ue_id;
      resp.mme_ue_id = ctx->mme_ue_id;
      resp.enb_downlink_teid = enb_teid;
      mme.handle_s1ap(cell, lte::S1apMessage{resp});
    }
  }
};

struct Fixture {
  sim::Simulator sim;
  EpcCore core;
  EnbShim enb;

  explicit Fixture(CoreDeployment deployment = CoreDeployment::kLocalStub)
      : core(sim,
             EpcConfig{.deployment = deployment, .network_id = "test-net"},
             sim::RngStream{7}),
        enb{sim, core.mme(), CellId{1}} {
    core.mme().set_sender(
        [this](CellId, lte::S1apMessage m) { enb.on_s1ap(m); });
  }

  ue::NasClient make_client(std::uint64_t imsi_value) {
    const Imsi imsi{imsi_value};
    core.hss().provision(imsi, key_for(imsi_value), kOp);
    ue::SimProfile profile{imsi, key_for(imsi_value),
                           crypto::derive_opc(key_for(imsi_value), kOp),
                           true, "open"};
    return ue::NasClient{ue::Usim{profile}, "test-net"};
  }
};

TEST(AttachFlow, CompletesAgainstLocalStub) {
  Fixture f;
  auto client = f.make_client(1001);
  f.enb.start(client);
  f.sim.run_all();

  EXPECT_TRUE(client.registered());
  EXPECT_TRUE(f.core.mme().is_registered(Imsi{1001}));
  EXPECT_EQ(f.core.mme().stats().attaches_completed, 1u);
  EXPECT_EQ(f.core.mme().stats().auth_failures, 0u);
  EXPECT_NE(client.ue_ip(), 0u);
  EXPECT_NE(client.tmsi().value(), 0u);
  EXPECT_EQ(f.enb.context_setups, 1);
}

TEST(AttachFlow, CompletesAgainstCentralizedCore) {
  Fixture f{CoreDeployment::kCentralized};
  auto client = f.make_client(1002);
  f.enb.start(client);
  f.sim.run_all();
  EXPECT_TRUE(client.registered());
  EXPECT_TRUE(f.core.mme().is_registered(Imsi{1002}));
}

TEST(AttachFlow, GatewaySessionEstablished) {
  Fixture f;
  auto client = f.make_client(1001);
  f.enb.start(client);
  f.sim.run_all();

  const auto* bearer = f.core.gateway().find_by_imsi(Imsi{1001});
  ASSERT_NE(bearer, nullptr);
  EXPECT_EQ(bearer->ue_ip.addr, client.ue_ip());
  EXPECT_EQ(bearer->downlink_teid, Teid{777});  // From the eNB shim.
  EXPECT_EQ(f.core.gateway().session_count(), 1u);
}

TEST(AttachFlow, UeAndCoreAgreeOnSessionKeys) {
  // Mutual AKA success means both ends independently derived KASME; the
  // UE's copy must be usable (non-zero) — the core's is internal.
  Fixture f;
  auto client = f.make_client(1001);
  f.enb.start(client);
  f.sim.run_all();
  ASSERT_TRUE(client.registered());
  bool all_zero = true;
  for (auto b : client.kasme()) all_zero &= (b == 0);
  EXPECT_FALSE(all_zero);
}

TEST(AttachFlow, UnknownImsiRejected) {
  Fixture f;
  // Client whose IMSI is NOT provisioned in the HSS.
  ue::SimProfile profile{Imsi{4040}, key_for(4040),
                         crypto::derive_opc(key_for(4040), kOp), true, "x"};
  ue::NasClient client{ue::Usim{profile}, "test-net"};
  f.enb.start(client);
  f.sim.run_all();
  EXPECT_FALSE(client.registered());
  EXPECT_EQ(client.state(), ue::NasClientState::kRejected);
  EXPECT_EQ(f.core.mme().stats().auth_failures, 1u);
}

TEST(AttachFlow, WrongKeyFailsMutualAuth) {
  Fixture f;
  const Imsi imsi{1003};
  f.core.hss().provision(imsi, key_for(1003), kOp);
  // UE holds a different K: it will detect the mismatch in AUTN (from its
  // perspective the network fails authentication).
  ue::SimProfile profile{imsi, key_for(9999),
                         crypto::derive_opc(key_for(9999), kOp), true, "x"};
  ue::NasClient client{ue::Usim{profile}, "test-net"};
  f.enb.start(client);
  f.sim.run_all();
  EXPECT_FALSE(client.registered());
  EXPECT_EQ(f.core.mme().stats().attaches_completed, 0u);
}

TEST(AttachFlow, ServingNetworkMismatchStillAttaches) {
  // KASME binding uses the SN id, but AKA itself does not fail on label
  // mismatch — both sides just derive different KASMEs. (Integrity
  // protection that would catch this is out of scope.) The attach
  // completes; the binding property is covered in key_derivation tests.
  Fixture f;
  const Imsi imsi{1004};
  f.core.hss().provision(imsi, key_for(1004), kOp);
  ue::SimProfile profile{imsi, key_for(1004),
                         crypto::derive_opc(key_for(1004), kOp), true, "x"};
  ue::NasClient client{ue::Usim{profile}, "other-net"};
  f.enb.start(client);
  f.sim.run_all();
  EXPECT_TRUE(client.registered());
}

TEST(AttachFlow, MultipleUesAttachConcurrently) {
  Fixture f;
  std::vector<ue::NasClient> clients;
  clients.reserve(10);
  std::vector<EnbShim> shims;
  shims.reserve(10);
  for (std::uint64_t i = 0; i < 10; ++i) {
    clients.push_back(f.make_client(2000 + i));
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    shims.push_back(EnbShim{f.sim, f.core.mme(), CellId{1},
                            EnbUeId{100 + i}});
  }
  f.core.mme().set_sender([&](CellId, lte::S1apMessage m) {
    // Route by enb_ue_id to the right shim.
    std::uint32_t id = 0;
    if (const auto* d = std::get_if<lte::DownlinkNasTransport>(&m)) {
      id = d->enb_ue_id.value();
    } else if (const auto* c =
                   std::get_if<lte::InitialContextSetupRequest>(&m)) {
      id = c->enb_ue_id.value();
    }
    shims.at(id - 100).on_s1ap(m);
  });
  for (std::size_t i = 0; i < 10; ++i) shims[i].start(clients[i]);
  f.sim.run_all();
  EXPECT_EQ(f.core.mme().registered_count(), 10u);
  // Distinct IPs allocated.
  std::set<std::uint32_t> ips;
  for (const auto& c : clients) ips.insert(c.ue_ip());
  EXPECT_EQ(ips.size(), 10u);
}

TEST(AttachFlow, MmeProcessingDelayQueues) {
  // With 0.5 ms per message and an 8-message attach dialogue, a burst of
  // N UEs must show growing queueing delay — the C4 saturation mechanism.
  Fixture f;
  std::vector<ue::NasClient> clients;
  std::vector<EnbShim> shims;
  const int n = 20;
  for (std::uint64_t i = 0; i < n; ++i) {
    clients.push_back(f.make_client(3000 + i));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    shims.push_back(EnbShim{f.sim, f.core.mme(), CellId{1},
                            EnbUeId{100 + i}});
  }
  f.core.mme().set_sender([&](CellId, lte::S1apMessage m) {
    std::uint32_t id = 0;
    if (const auto* d = std::get_if<lte::DownlinkNasTransport>(&m)) {
      id = d->enb_ue_id.value();
    } else if (const auto* c =
                   std::get_if<lte::InitialContextSetupRequest>(&m)) {
      id = c->enb_ue_id.value();
    }
    shims.at(id - 100).on_s1ap(m);
  });
  for (std::size_t i = 0; i < n; ++i) shims[i].start(clients[i]);
  f.sim.run_all();
  EXPECT_EQ(f.core.mme().registered_count(), static_cast<std::size_t>(n));
  EXPECT_GT(f.core.mme().stats().queueing_delay_ms.p95(), 0.5);
}

TEST(AttachFlow, StormAdmissionThrottleRejectsExcessDialogues) {
  // T3346-style congestion control: with 10 UEs arriving at once and room
  // for 2 concurrent dialogues, the surplus gets AttachReject instead of
  // everyone timing out together.
  sim::Simulator sim;
  EpcConfig cfg{.deployment = CoreDeployment::kLocalStub,
                .network_id = "test-net"};
  cfg.mme.max_concurrent_attaches = 2;
  EpcCore core{sim, cfg, sim::RngStream{7}};

  const int n = 10;
  std::vector<ue::NasClient> clients;
  std::vector<EnbShim> shims;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Imsi imsi{5000 + i};
    core.hss().provision(imsi, key_for(5000 + i), kOp);
    ue::SimProfile profile{imsi, key_for(5000 + i),
                           crypto::derive_opc(key_for(5000 + i), kOp), true,
                           "open"};
    clients.push_back(ue::NasClient{ue::Usim{profile}, "test-net"});
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    shims.push_back(EnbShim{sim, core.mme(), CellId{1}, EnbUeId{100 + i}});
  }
  core.mme().set_sender([&](CellId, lte::S1apMessage m) {
    std::uint32_t id = 0;
    if (const auto* d = std::get_if<lte::DownlinkNasTransport>(&m)) {
      id = d->enb_ue_id.value();
    } else if (const auto* c =
                   std::get_if<lte::InitialContextSetupRequest>(&m)) {
      id = c->enb_ue_id.value();
    }
    shims.at(id - 100).on_s1ap(m);
  });
  for (std::size_t i = 0; i < n; ++i) shims[i].start(clients[i]);
  sim.run_all();

  EXPECT_GT(core.mme().stats().attaches_throttled, 0u);
  EXPECT_LT(core.mme().registered_count(), static_cast<std::size_t>(n));
  // The admitted dialogues completed normally.
  EXPECT_GT(core.mme().registered_count(), 0u);
  int rejected = 0;
  for (const auto& c : clients) {
    if (c.state() == ue::NasClientState::kRejected) ++rejected;
  }
  EXPECT_EQ(static_cast<std::uint64_t>(rejected),
            core.mme().stats().attaches_throttled);
}

TEST(AttachFlow, CoreCrashWipesVolatileStateButNotHss) {
  Fixture f;
  auto client = f.make_client(1001);
  f.enb.start(client);
  f.sim.run_all();
  ASSERT_TRUE(f.core.mme().is_registered(Imsi{1001}));
  ASSERT_EQ(f.core.gateway().session_count(), 1u);

  f.core.crash();
  EXPECT_EQ(f.core.mme().registered_count(), 0u);
  EXPECT_EQ(f.core.gateway().session_count(), 0u);
  EXPECT_EQ(f.core.mme().stats().state_losses, 1u);
  EXPECT_TRUE(f.core.hss().has_subscriber(Imsi{1001}));

  // The subscriber re-attaches from scratch against the restarted core.
  client.reset("test-net");
  f.enb.start(client);
  f.sim.run_all();
  EXPECT_TRUE(client.registered());
  EXPECT_TRUE(f.core.mme().is_registered(Imsi{1001}));
}

TEST(EpcCore, DeploymentCapabilities) {
  sim::Simulator sim;
  EpcCore central{sim, EpcConfig{.deployment = CoreDeployment::kCentralized},
                  sim::RngStream{1}};
  EpcCore stub{sim, EpcConfig{.deployment = CoreDeployment::kLocalStub},
               sim::RngStream{2}};
  EXPECT_TRUE(central.anchors_mobility());
  EXPECT_TRUE(central.bills_subscribers());
  EXPECT_TRUE(central.tunnels_user_traffic());
  EXPECT_FALSE(stub.anchors_mobility());
  EXPECT_FALSE(stub.bills_subscribers());
  EXPECT_FALSE(stub.tunnels_user_traffic());
}

TEST(EpcCore, BillingOnlyOnCentralized) {
  sim::Simulator sim;
  EpcCore central{sim, EpcConfig{.deployment = CoreDeployment::kCentralized},
                  sim::RngStream{1}};
  EpcCore stub{sim, EpcConfig{.deployment = CoreDeployment::kLocalStub},
               sim::RngStream{2}};
  central.record_usage(Imsi{1}, 1000);
  central.record_usage(Imsi{1}, 500);
  stub.record_usage(Imsi{1}, 1000);
  EXPECT_EQ(central.usage_bytes(Imsi{1}), 1500u);
  EXPECT_EQ(central.cdr_count(), 1u);
  EXPECT_EQ(stub.usage_bytes(Imsi{1}), 0u);
  EXPECT_EQ(stub.cdr_count(), 0u);
}

}  // namespace
}  // namespace dlte::epc
