#include "epc/gateway.h"

#include <gtest/gtest.h>

namespace dlte::epc {
namespace {

TEST(Gateway, SessionLifecycle) {
  Gateway gw{0x0A2D0000};
  EXPECT_EQ(gw.session_count(), 0u);
  BearerContext& b = gw.create_session(Imsi{1}, BearerId{5});
  EXPECT_EQ(b.imsi, Imsi{1});
  EXPECT_NE(b.uplink_teid.value(), 0u);
  EXPECT_EQ(b.ue_ip.to_string(), "10.45.0.1");
  gw.complete_session(Imsi{1}, Teid{99});
  EXPECT_EQ(gw.find_by_imsi(Imsi{1})->downlink_teid, Teid{99});
  gw.delete_session(Imsi{1});
  EXPECT_EQ(gw.session_count(), 0u);
  EXPECT_EQ(gw.find_by_imsi(Imsi{1}), nullptr);
}

TEST(Gateway, DistinctAddressesAndTeids) {
  Gateway gw{0x0A2D0000};
  const auto& a = gw.create_session(Imsi{1}, BearerId{5});
  const auto& b = gw.create_session(Imsi{2}, BearerId{5});
  EXPECT_NE(a.ue_ip, b.ue_ip);
  EXPECT_NE(a.uplink_teid, b.uplink_teid);
}

TEST(Gateway, LookupByTeidAndIp) {
  Gateway gw{0x0A2D0000};
  const auto& a = gw.create_session(Imsi{7}, BearerId{5});
  EXPECT_EQ(gw.find_by_uplink_teid(a.uplink_teid)->imsi, Imsi{7});
  EXPECT_EQ(gw.find_by_ue_ip(a.ue_ip)->imsi, Imsi{7});
  EXPECT_EQ(gw.find_by_uplink_teid(Teid{0xdead}), nullptr);
  EXPECT_EQ(gw.find_by_ue_ip(net::Ipv4{0x01010101}), nullptr);
}

TEST(Gateway, ReattachReplacesSession) {
  // A re-attach (e.g. after a crash-reboot of the UE) replaces the
  // session rather than leaking a second one.
  Gateway gw{0x0A2D0000};
  const Teid first = gw.create_session(Imsi{3}, BearerId{5}).uplink_teid;
  const Teid second = gw.create_session(Imsi{3}, BearerId{5}).uplink_teid;
  EXPECT_EQ(gw.session_count(), 1u);
  EXPECT_NE(first, second);
  EXPECT_EQ(gw.find_by_uplink_teid(first), nullptr);
}

TEST(Gateway, AccountingAccumulates) {
  Gateway gw{0x0A2D0000};
  gw.count_uplink(100);
  gw.count_uplink(200);
  gw.count_downlink(50);
  EXPECT_EQ(gw.uplink_packets(), 2u);
  EXPECT_EQ(gw.uplink_bytes(), 300u);
  EXPECT_EQ(gw.downlink_packets(), 1u);
  EXPECT_EQ(gw.downlink_bytes(), 50u);
}

TEST(Gateway, DeleteUnknownIsNoop) {
  Gateway gw{0x0A2D0000};
  gw.delete_session(Imsi{404});
  EXPECT_EQ(gw.session_count(), 0u);
}

}  // namespace
}  // namespace dlte::epc
