// MetroScenario determinism: the merged snapshot and the event total
// must be byte-identical / equal at any shard count — the contract
// bench_c10_metro runs at full scale and CI gates.
#include "par/metro.h"

#include <gtest/gtest.h>

#include <string>

namespace dlte::par {
namespace {

MetroConfig small_config(std::size_t shards, std::size_t threads) {
  MetroConfig config;
  config.aps = 40;
  config.ues_per_ap = 25;
  config.districts = 8;
  config.shards = shards;
  config.threads = threads;
  config.seed = 42;
  config.horizon = Duration::seconds(2.0);
  config.attach_window = Duration::seconds(1.0);
  config.flow_bytes_per_ue = 50'000;
  config.report_interval = Duration::millis(200);
  return config;
}

struct RunOutput {
  MetroResult result;
  std::string metrics;
};

RunOutput run_metro(std::size_t shards, std::size_t threads) {
  MetroScenario metro{small_config(shards, threads)};
  RunOutput out;
  out.result = metro.run();
  out.metrics = metro.metrics_json();
  return out;
}

TEST(MetroScenarioTest, AttachesEveryUeAndDeliversEveryByte) {
  const RunOutput out = run_metro(1, 1);
  EXPECT_EQ(out.result.ues_attached, 40u * 25u);
  EXPECT_EQ(out.result.bytes_delivered, 40u * 25u * 50'000u);
  // One aggregate flow per batch per AP.
  EXPECT_EQ(out.result.flows_completed, 40u * 10u);
  EXPECT_GT(out.result.reports_rx, 0u);
}

TEST(MetroScenarioTest, ShardCountsProduceByteIdenticalMetrics) {
  const RunOutput base = run_metro(1, 1);
  for (const std::size_t shards : {2u, 4u}) {
    const RunOutput out = run_metro(shards, shards);
    EXPECT_EQ(out.metrics, base.metrics) << "shards=" << shards;
    EXPECT_EQ(out.result.events_executed, base.result.events_executed)
        << "shards=" << shards;
    EXPECT_EQ(out.result.ues_attached, base.result.ues_attached);
    EXPECT_EQ(out.result.reports_rx, base.result.reports_rx);
  }
}

TEST(MetroScenarioTest, RepeatRunsAreByteIdentical) {
  const RunOutput a = run_metro(2, 2);
  const RunOutput b = run_metro(2, 2);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.result.events_executed, b.result.events_executed);
}

TEST(MetroScenarioTest, DistrictsNeverSpanShards) {
  // The histogram-merge contract: every district lives wholly in one
  // shard, at any shard count the bench sweeps.
  for (const std::size_t shards : {1u, 2u, 4u}) {
    MetroScenario metro{small_config(shards, 1)};
    const MetroConfig& cfg = metro.config();
    for (int ap = 1; ap < cfg.aps; ++ap) {
      const std::size_t d0 =
          metro.district_of(static_cast<std::size_t>(ap - 1));
      const std::size_t d1 = metro.district_of(static_cast<std::size_t>(ap));
      // Contiguous, monotone districts.
      EXPECT_LE(d0, d1);
      EXPECT_LE(d1 - d0, 1u);
    }
  }
}

TEST(MetroScenarioTest, EventCostStaysSublinearInUes) {
  MetroConfig config = small_config(1, 1);
  const RunOutput small = run_metro(1, 1);
  config.ues_per_ap = 250;  // 10x the UEs.
  MetroScenario metro{config};
  const MetroResult big = metro.run();
  EXPECT_EQ(big.ues_attached, 40u * 250u);
  // The aggregation contract: 10x UEs costs well under 2x the events.
  EXPECT_LT(big.events_executed, small.result.events_executed * 2);
}

}  // namespace
}  // namespace dlte::par
