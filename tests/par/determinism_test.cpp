#include <gtest/gtest.h>

#include <string>

#include "par/town.h"

namespace dlte::par {
namespace {

TownConfig town_config(std::size_t shards, std::size_t threads) {
  TownConfig cfg;
  cfg.aps = 8;
  cfg.ues_per_ap = 4;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.seed = 42;
  cfg.horizon = Duration::seconds(2.0);
  cfg.report_interval = Duration::millis(100);
  cfg.backbone_delay = Duration::millis(5);
  cfg.sample_interval = Duration::millis(500);
  return cfg;
}

struct Artifacts {
  TownResult result;
  std::string metrics;
  std::string series;
  std::string openmetrics;
};

Artifacts run_town(std::size_t shards, std::size_t threads) {
  ShardedTown town{town_config(shards, threads)};
  Artifacts a;
  a.result = town.run();
  a.metrics = town.metrics_json();
  a.series = town.series_json("par_determinism");
  a.openmetrics = town.openmetrics_text();
  return a;
}

TEST(ParDeterminism, TownDoesMeaningfulWork) {
  const Artifacts a = run_town(1, 1);
  EXPECT_EQ(a.result.attaches_completed, 8u * 4u);
  EXPECT_EQ(a.result.attaches_failed, 0u);
  // ~20 report rounds × 8 APs × 2 neighbours.
  EXPECT_GT(a.result.x2_reports_rx, 100u);
  EXPECT_GT(a.result.messages, 100u);
  EXPECT_GT(a.result.windows, 0u);
  EXPECT_NE(a.metrics.find("ap7.attach.ms"), std::string::npos);
  EXPECT_NE(a.series.find("dlte-series-v1"), std::string::npos);
  EXPECT_NE(a.openmetrics.find("# EOF"), std::string::npos);
}

// The tentpole guarantee: the merged artifacts are byte-identical at any
// shard count and any worker-thread count.
TEST(ParDeterminism, ArtifactsAreByteIdenticalAcrossShardCounts) {
  const Artifacts one = run_town(1, 1);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    const Artifacts many = run_town(shards, shards);
    EXPECT_EQ(one.metrics, many.metrics) << "shards=" << shards;
    EXPECT_EQ(one.series, many.series) << "shards=" << shards;
    EXPECT_EQ(one.openmetrics, many.openmetrics) << "shards=" << shards;
    EXPECT_EQ(one.result.attaches_completed, many.result.attaches_completed);
    EXPECT_EQ(one.result.x2_reports_rx, many.result.x2_reports_rx);
  }
}

TEST(ParDeterminism, ArtifactsAreByteIdenticalAcrossThreadCounts) {
  const Artifacts serial = run_town(4, 1);
  const Artifacts threaded = run_town(4, 4);
  EXPECT_EQ(serial.metrics, threaded.metrics);
  EXPECT_EQ(serial.series, threaded.series);
  EXPECT_EQ(serial.openmetrics, threaded.openmetrics);
}

TEST(ParDeterminism, RepeatedRunsReproduce) {
  const Artifacts a = run_town(2, 2);
  const Artifacts b = run_town(2, 2);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.series, b.series);
  EXPECT_EQ(a.openmetrics, b.openmetrics);
}

TEST(ParDeterminism, SeedChangesArtifacts) {
  TownConfig cfg = town_config(2, 2);
  ShardedTown town_a{cfg};
  cfg.seed = 43;
  ShardedTown town_b{cfg};
  town_a.run();
  town_b.run();
  EXPECT_NE(town_a.metrics_json(), town_b.metrics_json());
}

}  // namespace
}  // namespace dlte::par
