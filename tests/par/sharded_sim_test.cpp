#include "par/sharded_sim.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dlte::par {
namespace {

ShardedConfig two_shards(std::size_t threads) {
  ShardedConfig cfg;
  cfg.shards = 2;
  cfg.threads = threads;
  cfg.lookahead = Duration::millis(1);
  return cfg;
}

TEST(ShardedSimulator, CrossShardPingPongPaysLookaheadPerHop) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    ShardedSimulator rt{two_shards(threads)};
    std::vector<double> deliveries_ms;
    int bounces = 0;
    rt.register_endpoint(0, 0, [&](const Message& m) {
      deliveries_ms.push_back(rt.shard_sim(0).now().to_millis());
      EXPECT_EQ(m.src, 1u);
      rt.post(0, 1, Duration::millis(1), 0, {});
    });
    rt.register_endpoint(1, 1, [&](const Message& m) {
      deliveries_ms.push_back(rt.shard_sim(1).now().to_millis());
      EXPECT_EQ(m.src, 0u);
      if (++bounces < 3) rt.post(1, 0, Duration::millis(1), 0, {});
    });
    rt.post(0, 1, Duration::millis(1), 0, {});
    rt.run_until(TimePoint::from_ns(0) + Duration::millis(10));
    // 0→1 at 1ms, 1→0 at 2ms, 0→1 at 3ms, ... one lookahead per hop.
    EXPECT_EQ(deliveries_ms,
              (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}))
        << "threads=" << threads;
    EXPECT_EQ(rt.messages_exchanged(), 5u);
    EXPECT_DOUBLE_EQ(rt.shard_sim(0).now().to_millis(), 10.0);
    EXPECT_DOUBLE_EQ(rt.shard_sim(1).now().to_millis(), 10.0);
  }
}

TEST(ShardedSimulator, ShortPostsClampToLookaheadAndCount) {
  ShardedSimulator rt{two_shards(1)};
  double delivered_ms = -1.0;
  rt.register_endpoint(0, 0, [](const Message&) {});
  rt.register_endpoint(1, 1, [&](const Message& m) {
    delivered_ms = m.deliver_at.to_millis();
  });
  rt.post(0, 1, Duration::micros(10), 0, {});  // Below the 1 ms lookahead.
  rt.run_until(TimePoint::from_ns(0) + Duration::millis(5));
  EXPECT_DOUBLE_EQ(delivered_ms, 1.0);
  EXPECT_EQ(rt.posts_clamped(), 1u);
}

TEST(ShardedSimulator, SimultaneousMessagesInjectInEndpointSeqOrder) {
  // Three sources on two shards all target endpoint 9 at the same
  // instant. Whatever order the outboxes are gathered in, injection must
  // follow (deliver_at, src, per-source seq).
  ShardedSimulator rt{two_shards(2)};
  std::vector<std::pair<std::uint32_t, std::uint64_t>> order;
  rt.register_endpoint(0, 0, [](const Message&) {});
  rt.register_endpoint(1, 1, [](const Message&) {});
  rt.register_endpoint(2, 1, [](const Message&) {});
  rt.register_endpoint(9, 0, [&](const Message& m) {
    order.emplace_back(m.src, m.seq);
  });
  // Posted in scrambled source order; second post from src 2 first.
  rt.post(2, 9, Duration::millis(2), 0, {});
  rt.post(1, 9, Duration::millis(2), 0, {});
  rt.post(2, 9, Duration::millis(2), 0, {});
  rt.post(0, 9, Duration::millis(2), 0, {});
  rt.run_until(TimePoint::from_ns(0) + Duration::millis(5));
  const std::vector<std::pair<std::uint32_t, std::uint64_t>> expected{
      {0u, 0u}, {1u, 0u}, {2u, 0u}, {2u, 1u}};
  EXPECT_EQ(order, expected);
}

TEST(ShardedSimulator, IdleWindowsAreSkippedOnTheGrid) {
  // One event a second into the run with a 1 ms lookahead: the runtime
  // must jump to it rather than grind through ~1000 empty windows.
  ShardedSimulator rt{two_shards(1)};
  rt.register_endpoint(0, 0, [](const Message&) {});
  rt.register_endpoint(1, 1, [](const Message&) {});
  double seen_ms = -1.0;
  rt.shard_sim(1).schedule(Duration::seconds(1.0), [&] {
    seen_ms = rt.shard_sim(1).now().to_millis();
  });
  rt.run_until(TimePoint::from_ns(0) + Duration::seconds(2.0));
  EXPECT_DOUBLE_EQ(seen_ms, 1000.0);
  EXPECT_LE(rt.windows_run(), 4u);
}

TEST(ShardedSimulator, MergedMetricsFoldDomainRegistries) {
  ShardedSimulator rt{two_shards(1)};
  rt.shard_registry(0).counter("ap0.x").inc(2);
  rt.shard_registry(1).counter("ap1.x").inc(5);
  rt.shard_registry(0).counter("shared").inc(1);
  rt.shard_registry(1).counter("shared").inc(1);
  obs::MetricsRegistry merged;
  rt.merged_metrics_into(merged);
  EXPECT_EQ(merged.counter("ap0.x").value(), 2u);
  EXPECT_EQ(merged.counter("ap1.x").value(), 5u);
  EXPECT_EQ(merged.counter("shared").value(), 2u);
}

TEST(ShardedSimulator, RuntimeMetricsLandInAttachedRegistry) {
  ShardedSimulator rt{two_shards(2)};
  obs::MetricsRegistry reg;
  rt.set_metrics(&reg);
  rt.register_endpoint(0, 0, [](const Message&) {});
  rt.register_endpoint(1, 1, [](const Message&) {});
  rt.post(0, 1, Duration::micros(1), 0, {});
  rt.run_until(TimePoint::from_ns(0) + Duration::millis(3));
  EXPECT_EQ(reg.counter("par.messages").value(), 1u);
  EXPECT_EQ(reg.counter("par.posts_clamped").value(), 1u);
  EXPECT_GT(reg.counter("par.windows").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("par.shards").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("par.threads").value(), 2.0);
}

TEST(ShardedSimulator, CoordinatorSamplingIsOnTheConfiguredCadence) {
  ShardedConfig cfg = two_shards(1);
  cfg.sample_interval = Duration::millis(10);
  ShardedSimulator rt{cfg};
  rt.register_endpoint(0, 0, [](const Message&) {});
  rt.register_endpoint(1, 1, [](const Message&) {});
  rt.shard_registry(0).counter("ap0.c").inc(1);
  rt.run_until(TimePoint::from_ns(0) + Duration::millis(50));
  const obs::TimeSeriesSampler* sampler = rt.shard_sampler(0);
  ASSERT_NE(sampler, nullptr);
  EXPECT_EQ(sampler->samples(), 5u);
  const obs::TimeSeries* series = sampler->find("ap0.c");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->points().size(), 5u);
  EXPECT_DOUBLE_EQ(series->points().front().t_s, 0.01);
}

}  // namespace
}  // namespace dlte::par
