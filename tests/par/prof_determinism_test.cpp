// The self-profiling plane's determinism contract (DESIGN.md §14): the
// merged event-attribution section is byte-identical at any shard count
// and any thread count, while the wall-clock shard profile is merely
// well-formed (its values are timing, never compared).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/prof.h"
#include "obs/prof_export.h"
#include "par/town.h"

namespace dlte::par {
namespace {

TownConfig prof_town_config(std::size_t shards, std::size_t threads) {
  TownConfig cfg;
  cfg.aps = 8;
  cfg.ues_per_ap = 4;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.seed = 42;
  cfg.horizon = Duration::seconds(2.0);
  cfg.report_interval = Duration::millis(100);
  cfg.backbone_delay = Duration::millis(5);
  cfg.profile = true;
  return cfg;
}

std::string attribution_json(std::size_t shards, std::size_t threads) {
  ShardedTown town{prof_town_config(shards, threads)};
  town.run();
  obs::EventProfiler merged;
  town.runtime().merged_profiler_into(merged);
  return obs::ProfExporter::event_attribution_json(merged);
}

TEST(ProfDeterminism, AttributionCoversTheScenario) {
  const std::string json = attribution_json(2, 2);
  // Every layer that schedules events shows up under its own label.
  for (const char* label :
       {"core.s1", "ran.enodeb", "epc.mme", "net.hop", "par.delivery",
        "town.attach", "town.x2_report", "sim.unlabeled"}) {
    EXPECT_NE(json.find(std::string{"\""} + label + "\""), std::string::npos)
        << "missing label " << label;
  }
  // The unlabeled bucket stays empty: the whole scenario is attributed.
  EXPECT_NE(json.find("\"sim.unlabeled\":{\"schedules\":0"),
            std::string::npos);
}

TEST(ProfDeterminism, AttributionByteIdenticalAcrossShardCounts) {
  const std::string one = attribution_json(1, 1);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    EXPECT_EQ(one, attribution_json(shards, shards)) << "shards=" << shards;
  }
}

TEST(ProfDeterminism, AttributionByteIdenticalAcrossThreadCounts) {
  EXPECT_EQ(attribution_json(4, 1), attribution_json(4, 4));
}

TEST(ProfDeterminism, ShardProfileDescribesTheRun) {
  ShardedTown town{prof_town_config(4, 2)};
  town.run();
  const obs::ShardProfile prof = town.runtime().profile();
  EXPECT_EQ(prof.shards, 4u);
  EXPECT_EQ(prof.threads, 2u);
  EXPECT_EQ(prof.windows, town.runtime().windows_run());
  EXPECT_EQ(prof.messages, town.runtime().messages_exchanged());
  EXPECT_DOUBLE_EQ(prof.lookahead_s, 0.005);
  ASSERT_EQ(prof.lanes.size(), 4u);
  std::uint64_t lane_events = 0;
  for (const obs::ShardLane& lane : prof.lanes) lane_events += lane.events;
  EXPECT_EQ(lane_events, town.runtime().events_executed());
  // The load matrix accounts for every exchanged message, cells in
  // (src, dst) order with zero cells elided.
  std::uint64_t matrix_messages = 0;
  std::uint32_t last_src = 0, last_dst = 0;
  bool first = true;
  for (const obs::ShardMatrixCell& cell : prof.matrix) {
    EXPECT_GT(cell.messages, 0u);
    if (!first) {
      EXPECT_TRUE(cell.src > last_src ||
                  (cell.src == last_src && cell.dst > last_dst));
    }
    first = false;
    last_src = cell.src;
    last_dst = cell.dst;
    matrix_messages += cell.messages;
  }
  EXPECT_EQ(matrix_messages, prof.messages);
  // Samples are barrier checkpoints: monotone time, cumulative counts.
  ASSERT_FALSE(prof.samples.empty());
  EXPECT_LE(prof.samples.size(), 512u);
  double last_t = 0.0;
  std::uint64_t last_messages = 0;
  for (const obs::ShardWindowSample& s : prof.samples) {
    EXPECT_GT(s.t_s, last_t);
    EXPECT_GE(s.messages, last_messages);
    EXPECT_EQ(s.shard_events.size(), 4u);
    last_t = s.t_s;
    last_messages = s.messages;
  }
}

TEST(ProfDeterminism, ProfilingOffYieldsEmptyPlane) {
  TownConfig cfg = prof_town_config(2, 2);
  cfg.profile = false;
  ShardedTown town{cfg};
  town.run();
  EXPECT_FALSE(town.runtime().profiling());
  obs::EventProfiler merged;
  town.runtime().merged_profiler_into(merged);
  EXPECT_EQ(merged.label_count(), 1u);  // Only the unlabeled bucket.
  const obs::ShardProfile prof = town.runtime().profile();
  EXPECT_EQ(prof.shards, 0u);
  EXPECT_TRUE(prof.lanes.empty());
  EXPECT_TRUE(prof.samples.empty());
}

}  // namespace
}  // namespace dlte::par
