// The determinism audit plane end to end (DESIGN.md §15): the merged
// digest section is byte-identical at any shard and thread count, and
// the deliberate exchange hold-back — a message missing its barrier and
// arriving one window late — is invisible to every classic artifact but
// localized by the per-shard section to the right window, shard, and
// label. This is the in-process half of the CI localization self-test
// that tools/audit_diff.py drives on the exported documents.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "obs/audit.h"
#include "obs/audit_export.h"
#include "par/town.h"

namespace dlte::par {
namespace {

TownConfig audit_town_config(std::size_t shards, std::size_t threads) {
  TownConfig cfg;
  cfg.aps = 8;
  cfg.ues_per_ap = 4;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.seed = 42;
  cfg.horizon = Duration::seconds(2.0);
  cfg.report_interval = Duration::millis(100);
  cfg.backbone_delay = Duration::millis(5);
  cfg.profile = true;
  cfg.audit = true;
  return cfg;
}

struct AuditRun {
  obs::AuditDoc doc;
  std::string merged_json;
  std::string metrics_json;
};

AuditRun run_audited(std::size_t shards, std::size_t threads,
                     std::int64_t inject_ms = -1,
                     std::size_t inject_shard = 0) {
  ShardedTown town{audit_town_config(shards, threads)};
  if (inject_ms >= 0) {
    town.runtime().inject_exchange_reorder(
        TimePoint{} + Duration::millis(inject_ms), inject_shard);
  }
  town.run();
  AuditRun out;
  out.doc = town.runtime().audit_doc();
  out.merged_json = obs::AuditExporter::merged_json(out.doc);
  out.metrics_json = town.metrics_json();
  return out;
}

TEST(AuditDeterminism, MergedSectionByteIdenticalAcrossShardCounts) {
  const AuditRun one = run_audited(1, 1);
  EXPECT_GT(one.doc.events_total, 0u);
  EXPECT_FALSE(one.doc.merged.empty());
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    const AuditRun sharded = run_audited(shards, shards);
    EXPECT_EQ(one.merged_json, sharded.merged_json) << "shards=" << shards;
    // Endpoint posts route through the barrier exchange even at one
    // shard, so the merged message plane is partition-invariant too.
    EXPECT_EQ(one.doc.messages_total, sharded.doc.messages_total)
        << "shards=" << shards;
  }
}

TEST(AuditDeterminism, FullDocumentByteIdenticalAcrossThreadCounts) {
  // Same partition, different worker counts: even the per-shard chains
  // and the ledger must match byte for byte (threads only change who
  // executes a window, never what executes).
  const AuditRun a = run_audited(4, 1);
  const AuditRun b = run_audited(4, 4);
  EXPECT_EQ(obs::AuditExporter::to_json(a.doc, "t"),
            obs::AuditExporter::to_json(b.doc, "t"));
}

TEST(AuditDeterminism, HoldBackIsInvisibleToMetricsButLocalized) {
  const std::size_t kShard = 3;
  const AuditRun clean = run_audited(4, 4);
  const AuditRun injected = run_audited(4, 4, 1000, kShard);

  // The classic plane is blind: end-of-run metrics identical, merged
  // event totals identical (same events, different order/timing).
  EXPECT_EQ(clean.metrics_json, injected.metrics_json);
  EXPECT_EQ(clean.doc.events_total, injected.doc.events_total);
  EXPECT_EQ(clean.doc.messages_total, injected.doc.messages_total);

  // The audit plane is not: find the first window where any per-shard
  // timeline differs and collect the moved labels there.
  ASSERT_EQ(clean.doc.shard_timelines.size(),
            injected.doc.shard_timelines.size());
  std::int64_t first_window = -1;
  std::set<std::uint32_t> shards;
  std::set<std::string> labels;
  for (std::size_t s = 0; s < clean.doc.shard_timelines.size(); ++s) {
    const auto& ca = clean.doc.shard_timelines[s].windows;
    const auto& cb = injected.doc.shard_timelines[s].windows;
    const std::size_t n = std::min(ca.size(), cb.size());
    for (std::size_t w = 0; w < n; ++w) {
      if (ca[w].chain == cb[w].chain) continue;
      const std::int64_t index = ca[w].index;
      if (first_window < 0 || index < first_window) {
        first_window = index;
        shards.clear();
        labels.clear();
      }
      if (index == first_window) {
        shards.insert(clean.doc.shard_timelines[s].shard);
        for (const auto& label : ca[w].labels) labels.insert(label.name);
        for (const auto& label : cb[w].labels) labels.insert(label.name);
      }
      break;  // Only this shard's FIRST divergent window matters here.
    }
  }
  ASSERT_GE(first_window, 0) << "hold-back produced no chain divergence";
  // Injection arms at t=1.0s: the divergence cannot precede that window.
  EXPECT_GE(first_window,
            Duration::seconds(1.0).ns() / clean.doc.window_ns);
  // The held message's destination shard is where the chains split.
  EXPECT_TRUE(shards.count(static_cast<std::uint32_t>(kShard)))
      << "diverging shards missed the injection target";
  // The delivery label (the cross-shard injection wrapper) moved.
  EXPECT_TRUE(labels.count("par.delivery"))
      << "par.delivery not among moved labels";
}

TEST(AuditDeterminism, AuditOffYieldsEmptyDoc) {
  TownConfig cfg = audit_town_config(2, 2);
  cfg.audit = false;
  ShardedTown town{cfg};
  town.run();
  EXPECT_FALSE(town.runtime().auditing());
  const obs::AuditDoc doc = town.runtime().audit_doc();
  EXPECT_EQ(doc.shards, 0u);
  EXPECT_EQ(doc.events_total, 0u);
  EXPECT_TRUE(doc.merged.empty());
  EXPECT_TRUE(doc.shard_timelines.empty());
  EXPECT_TRUE(doc.ledger.empty());
}

}  // namespace
}  // namespace dlte::par
