// RegistryPlaneScenario: the churn storm must produce its symptom chain
// (heartbeat failures → lapses → re-grant storm → SLO alert + resolve)
// and every merged artifact must be byte-identical at any shard count —
// the contract bench_c12_registry_scale gates at full scale.
#include "par/registry_plane.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/audit_export.h"

namespace dlte::par {
namespace {

RegistryPlaneConfig small_config(std::size_t shards) {
  RegistryPlaneConfig config;
  config.blocks = 12;
  config.leases_per_block = 40;
  config.zones_x = 2;
  config.zones_y = 2;
  config.shards = shards;
  config.threads = shards;
  config.horizon = Duration::seconds(60.0);
  config.lease_lifetime = Duration::seconds(8.0);
  config.heartbeat_grace = Duration::seconds(4.0);
  config.heartbeat_interval = Duration::seconds(5.0);
  config.query_interval = Duration::seconds(2.0);
  config.regrant_backoff = Duration::seconds(3.0);
  config.storm_zone = 0;
  config.outage_at = Duration::seconds(15.0);
  config.outage_duration = Duration::seconds(20.0);
  config.audit = true;
  return config;
}

struct RunOutput {
  RegistryPlaneResult result;
  std::string metrics;
  std::string series;
  std::string openmetrics;
  std::string audit;
};

RunOutput run_plane(std::size_t shards) {
  RegistryPlaneScenario plane{small_config(shards)};
  RunOutput out;
  out.result = plane.run();
  out.metrics = plane.metrics_json();
  out.series = plane.series_json("registry_plane_test");
  out.openmetrics = plane.openmetrics_text();
  // Partition-invariant section only: per-shard chains legitimately
  // differ across shard counts.
  out.audit = obs::AuditExporter::merged_json(plane.runtime().audit_doc());
  return out;
}

TEST(RegistryPlaneTest, ChurnStormSymptomChain) {
  const RunOutput out = run_plane(1);
  const auto& r = out.result;
  // Initial mass grant: every block fills its quota.
  EXPECT_GE(r.grants_issued, 12u * 40u);
  EXPECT_GT(r.heartbeats_ok, 0u);
  // The outage (20 s) outlives lifetime+grace (12 s): the storm zone's
  // leases must lapse and its blocks must re-apply.
  EXPECT_GT(r.heartbeats_failed, 0u);
  EXPECT_GT(r.grants_lapsed, 0u);
  EXPECT_GT(r.regrant_batches, 0u);
  EXPECT_GT(r.grant_failures, 0u);  // Re-applications bounce mid-outage.
  // After the heal (t=35 s) there is time to re-grant: every block ends
  // the run with its full quota again.
  EXPECT_EQ(r.leases_held, 12u * 40u);
  // Query plane exercised the cache.
  EXPECT_GT(r.queries_answered, 0u);
  EXPECT_GT(r.cache_hits + r.cache_misses, 0u);
  // The SLO timeline: the churn alert fired during the outage and
  // resolved after the heal.
  EXPECT_TRUE(r.outage_alert_fired);
  EXPECT_TRUE(r.outage_alert_resolved);
}

TEST(RegistryPlaneTest, ShardCountsProduceByteIdenticalArtifacts) {
  const RunOutput base = run_plane(1);
  for (const std::size_t shards : {2u, 3u}) {
    const RunOutput out = run_plane(shards);
    EXPECT_EQ(out.metrics, base.metrics) << "shards=" << shards;
    EXPECT_EQ(out.series, base.series) << "shards=" << shards;
    EXPECT_EQ(out.openmetrics, base.openmetrics) << "shards=" << shards;
    EXPECT_EQ(out.audit, base.audit) << "shards=" << shards;
    EXPECT_EQ(out.result.grants_issued, base.result.grants_issued);
    EXPECT_EQ(out.result.grants_lapsed, base.result.grants_lapsed);
    EXPECT_EQ(out.result.leases_held, base.result.leases_held);
    EXPECT_EQ(out.result.queries_answered, base.result.queries_answered);
  }
}

TEST(RegistryPlaneTest, RepeatRunsAreByteIdentical) {
  const RunOutput a = run_plane(2);
  const RunOutput b = run_plane(2);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.series, b.series);
  EXPECT_EQ(a.audit, b.audit);
}

TEST(RegistryPlaneTest, QuietZonesKeepTheirLeases) {
  // Outage short enough that every block's first post-heal heartbeat
  // (t = 20s + phase) lands before its lapse due (last renewal at
  // 10s + phase, + lifetime 8 + grace 4 = 22s + phase): heartbeats fail
  // during the dark window but no lease lapses — the grace absorbs it.
  auto config = small_config(1);
  config.outage_duration = Duration::seconds(4.0);
  config.horizon = Duration::seconds(40.0);
  RegistryPlaneScenario plane{config};
  const auto r = plane.run();
  EXPECT_GT(r.heartbeats_failed, 0u);
  EXPECT_EQ(r.grants_lapsed, 0u);
  EXPECT_EQ(r.leases_held, 12u * 40u);
}

}  // namespace
}  // namespace dlte::par
