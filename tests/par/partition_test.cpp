#include "par/partition.h"

#include <gtest/gtest.h>

namespace dlte::par {
namespace {

TEST(Partition, BlockIsMonotoneAndBalanced) {
  for (std::size_t n : {1u, 2u, 7u, 16u, 33u}) {
    for (std::size_t s : {1u, 2u, 3u, 4u, 8u}) {
      std::size_t prev = 0;
      std::vector<std::size_t> sizes(s, 0);
      for (std::size_t item = 0; item < n; ++item) {
        const std::size_t shard = shard_of_block(item, n, s);
        EXPECT_GE(shard, prev) << "n=" << n << " s=" << s;
        EXPECT_LT(shard, s);
        prev = shard;
        ++sizes[shard];
      }
      std::size_t lo = n, hi = 0, total = 0;
      for (std::size_t shard = 0; shard < s; ++shard) {
        EXPECT_EQ(sizes[shard], block_size(shard, n, s))
            << "n=" << n << " s=" << s << " shard=" << shard;
        total += sizes[shard];
        if (sizes[shard] > 0) lo = std::min(lo, sizes[shard]);
        hi = std::max(hi, sizes[shard]);
      }
      EXPECT_EQ(total, n);
      if (n >= s) EXPECT_LE(hi - lo, 1u) << "n=" << n << " s=" << s;
    }
  }
}

TEST(Partition, OneShardOwnsEverything) {
  for (std::size_t item = 0; item < 10; ++item) {
    EXPECT_EQ(shard_of_block(item, 10, 1), 0u);
  }
  EXPECT_EQ(block_size(0, 10, 1), 10u);
}

TEST(Partition, ByPositionKeepsNeighboursTogether) {
  // Positions deliberately out of index order.
  const std::vector<double> x{5.0, 1.0, 9.0, 3.0, 7.0, 0.0, 8.0, 2.0};
  const auto shard = partition_by_position(x, 2);
  ASSERT_EQ(shard.size(), x.size());
  // Left half of the street (x < 5) on shard 0, right half on shard 1.
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(shard[i], x[i] < 5.0 ? 0u : 1u) << "i=" << i;
  }
}

TEST(Partition, ByPositionIsDeterministicForTies) {
  const std::vector<double> x{1.0, 1.0, 1.0, 1.0};
  const auto a = partition_by_position(x, 2);
  const auto b = partition_by_position(x, 2);
  EXPECT_EQ(a, b);
  // Ties break by original index (stable sort), so the split is 0,0,1,1.
  EXPECT_EQ(a, (std::vector<std::size_t>{0, 0, 1, 1}));
}

}  // namespace
}  // namespace dlte::par
