// S1Fabric: identical MME behind two pipes — in-process stub vs backhaul.
#include "core/s1_fabric.h"

#include <gtest/gtest.h>

#include "core/enodeb.h"
#include "epc/epc.h"
#include "ue/nas_client.h"

namespace dlte::core {
namespace {

crypto::Key128 key_for(std::uint64_t imsi) {
  crypto::Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) {
    k[i] = static_cast<std::uint8_t>(imsi + i);
  }
  return k;
}

const crypto::Block128 kOp = [] {
  crypto::Block128 op{};
  op[0] = 0xcd;
  return op;
}();

struct Rig {
  sim::Simulator sim;
  net::Network net{sim};
  epc::EpcCore core;
  S1Fabric fabric{sim, core.mme()};
  EnodeB enb;

  explicit Rig(epc::CoreDeployment dep)
      : core(sim, epc::EpcConfig{.deployment = dep, .network_id = "n"},
             sim::RngStream{3}),
        enb(sim, fabric, EnbConfig{.cell = CellId{1}}) {}

  ue::NasClient make_client(std::uint64_t imsi) {
    core.hss().provision(Imsi{imsi}, key_for(imsi), kOp);
    ue::SimProfile p{Imsi{imsi}, key_for(imsi),
                     crypto::derive_opc(key_for(imsi), kOp), true, "t"};
    return ue::NasClient{ue::Usim{p}, "n"};
  }
};

TEST(S1Fabric, DirectAttachFastPath) {
  Rig rig{epc::CoreDeployment::kLocalStub};
  rig.fabric.register_enb_direct(CellId{1}, Duration::micros(50),
                                 [&](const lte::S1apMessage& m) {
                                   rig.enb.on_s1ap(m);
                                 });
  auto client = rig.make_client(100);
  AttachOutcome out;
  rig.enb.attach_ue(client, [&](AttachOutcome o) { out = o; });
  rig.sim.run_all();
  ASSERT_TRUE(out.success);
  // 50ms RRC + ~4 radio round trips (20ms each) + negligible S1.
  EXPECT_LT(out.elapsed.to_millis(), 200.0);
  EXPECT_GT(rig.fabric.uplink_messages(), 0u);
  EXPECT_GT(rig.fabric.downlink_messages(), 0u);
}

TEST(S1Fabric, NetworkedAttachPaysBackhaulLatency) {
  Rig local{epc::CoreDeployment::kLocalStub};
  local.fabric.register_enb_direct(CellId{1}, Duration::micros(50),
                                   [&](const lte::S1apMessage& m) {
                                     local.enb.on_s1ap(m);
                                   });
  auto lc = local.make_client(100);
  AttachOutcome local_out;
  local.enb.attach_ue(lc, [&](AttachOutcome o) { local_out = o; });
  local.sim.run_all();

  Rig remote{epc::CoreDeployment::kCentralized};
  const NodeId enb_node = remote.net.add_node("enb");
  const NodeId core_node = remote.net.add_node("core");
  // 25 ms one way to the regional core.
  remote.net.add_link(enb_node, core_node,
                      net::LinkConfig{DataRate::mbps(100.0),
                                      Duration::millis(25)});
  remote.fabric.register_enb_networked(remote.net, CellId{1}, enb_node,
                                       core_node,
                                       [&](const lte::S1apMessage& m) {
                                         remote.enb.on_s1ap(m);
                                       });
  auto rc = remote.make_client(100);
  AttachOutcome remote_out;
  remote.enb.attach_ue(rc, [&](AttachOutcome o) { remote_out = o; });
  remote.sim.run_all();

  ASSERT_TRUE(local_out.success);
  ASSERT_TRUE(remote_out.success);
  // The attach dialogue's critical path crosses the 25 ms backhaul six
  // times: expect ≈150 ms of extra latency vs the on-box stub.
  EXPECT_GT(remote_out.elapsed.to_millis(),
            local_out.elapsed.to_millis() + 120.0);
}

TEST(S1Fabric, TwoCellsShareOneCore) {
  Rig rig{epc::CoreDeployment::kCentralized};
  EnodeB enb2{rig.sim, rig.fabric, EnbConfig{.cell = CellId{2}}};
  rig.fabric.register_enb_direct(CellId{1}, Duration::millis(5),
                                 [&](const lte::S1apMessage& m) {
                                   rig.enb.on_s1ap(m);
                                 });
  rig.fabric.register_enb_direct(CellId{2}, Duration::millis(5),
                                 [&](const lte::S1apMessage& m) {
                                   enb2.on_s1ap(m);
                                 });
  auto c1 = rig.make_client(201);
  auto c2 = rig.make_client(202);
  int ok = 0;
  rig.enb.attach_ue(c1, [&](AttachOutcome o) { ok += o.success; });
  enb2.attach_ue(c2, [&](AttachOutcome o) { ok += o.success; });
  rig.sim.run_all();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rig.core.mme().registered_count(), 2u);
}

TEST(S1Fabric, UnregisteredCellDropsSilently) {
  Rig rig{epc::CoreDeployment::kLocalStub};
  // No endpoint registered: sends must not crash.
  rig.fabric.enb_send(CellId{9}, lte::S1apMessage{lte::InitialUeMessage{}});
  rig.sim.run_all();
  EXPECT_EQ(rig.fabric.uplink_messages(), 0u);
}


TEST(S1Fabric, GarbageOnTheWireIsDropped) {
  // Corrupted S1AP frames on the backhaul must not reach the MME or
  // crash the deframer (framing and body corruption both).
  Rig rig{epc::CoreDeployment::kCentralized};
  const NodeId enb_node = rig.net.add_node("enb");
  const NodeId core_node = rig.net.add_node("core");
  rig.net.add_link(enb_node, core_node, net::LinkConfig{});
  rig.fabric.register_enb_networked(rig.net, CellId{1}, enb_node, core_node,
                                    [&](const lte::S1apMessage& m) {
                                      rig.enb.on_s1ap(m);
                                    });
  rig.net.send(net::Packet{enb_node, core_node, 10, kS1apProtocol,
                           {0xff, 0xfe}});
  rig.net.send(net::Packet{enb_node, core_node, 10, kS1apProtocol,
                           {0, 0, 0, 1, 0x63, 0x00}});
  rig.net.send(net::Packet{core_node, enb_node, 10, kS1apProtocol, {}});
  rig.sim.run_all();
  EXPECT_EQ(rig.core.mme().stats().messages_processed, 0u);
}

}  // namespace
}  // namespace dlte::core
