#include "core/radio_env.h"

#include <gtest/gtest.h>

#include "phy/lte_amc.h"

namespace dlte::core {
namespace {

CellSiteConfig cell_at(std::uint32_t id, double x_m,
                       double freq_mhz = 850.0) {
  CellSiteConfig c;
  c.id = CellId{id};
  c.position = Position{x_m, 0.0};
  c.frequency = Hertz::mhz(freq_mhz);
  return c;
}

TEST(RadioEnv, RsrpDecreasesWithDistance) {
  RadioEnvironment env;
  env.add_cell(cell_at(1, 0.0));
  double prev = 100.0;
  for (double d : {500.0, 1000.0, 3000.0, 8000.0}) {
    const double p = env.rsrp(CellId{1}, Position{d, 0.0}).value();
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(RadioEnv, BestCellIsNearest) {
  RadioEnvironment env;
  env.add_cell(cell_at(1, 0.0));
  env.add_cell(cell_at(2, 10'000.0));
  EXPECT_EQ(env.best_cell(Position{1'000.0, 0.0}), CellId{1});
  EXPECT_EQ(env.best_cell(Position{9'000.0, 0.0}), CellId{2});
}

TEST(RadioEnv, NoCellInRangeReturnsNothing) {
  RadioEnvironment env;
  env.add_cell(cell_at(1, 0.0));
  EXPECT_FALSE(env.best_cell(Position{500'000.0, 0.0}).has_value());
  EXPECT_FALSE(RadioEnvironment{}.best_cell(Position{}).has_value());
}

TEST(RadioEnv, UncoordinatedCochannelNeighborsInterfere) {
  RadioEnvironment env;
  env.add_cell(cell_at(1, 0.0));
  const Position ue{2'000.0, 0.0};
  const double clean = env.downlink_sinr(CellId{1}, ue).value();
  env.add_cell(cell_at(2, 6'000.0));
  const double interfered = env.downlink_sinr(CellId{1}, ue).value();
  EXPECT_LT(interfered, clean - 3.0);
}

TEST(RadioEnv, CoordinationRemovesMutualInterference) {
  RadioEnvironment env;
  env.add_cell(cell_at(1, 0.0));
  env.add_cell(cell_at(2, 6'000.0));
  const Position ue{2'000.0, 0.0};
  const double interfered = env.downlink_sinr(CellId{1}, ue).value();
  env.set_coordinated(CellId{1}, true);
  env.set_coordinated(CellId{2}, true);
  const double coordinated = env.downlink_sinr(CellId{1}, ue).value();
  EXPECT_GT(coordinated, interfered + 3.0);
}

TEST(RadioEnv, OneSidedCoordinationDoesNotHelp) {
  RadioEnvironment env;
  env.add_cell(cell_at(1, 0.0));
  env.add_cell(cell_at(2, 6'000.0));
  env.set_coordinated(CellId{1}, true);  // Peer refuses.
  const Position ue{2'000.0, 0.0};
  env.set_coordinated(CellId{2}, false);
  const double one_sided = env.downlink_sinr(CellId{1}, ue).value();
  env.set_coordinated(CellId{2}, true);
  const double mutual = env.downlink_sinr(CellId{1}, ue).value();
  EXPECT_LT(one_sided, mutual);
}

TEST(RadioEnv, DifferentBandsDoNotInterfere) {
  RadioEnvironment env;
  env.add_cell(cell_at(1, 0.0, 850.0));
  const Position ue{2'000.0, 0.0};
  const double clean = env.downlink_sinr(CellId{1}, ue).value();
  env.add_cell(cell_at(2, 6'000.0, 900.0));
  const double with_other_band = env.downlink_sinr(CellId{1}, ue).value();
  EXPECT_NEAR(with_other_band, clean, 0.01);
}

TEST(RadioEnv, ActivityScalesInterference) {
  RadioEnvironment env;
  env.add_cell(cell_at(1, 0.0));
  env.add_cell(cell_at(2, 6'000.0));
  const Position ue{2'000.0, 0.0};
  const double full = env.downlink_sinr(CellId{1}, ue).value();
  env.set_activity(CellId{2}, 0.1);
  const double light = env.downlink_sinr(CellId{1}, ue).value();
  EXPECT_GT(light, full);
}

TEST(RadioEnv, UplinkSinrUsableAtTownScale) {
  RadioEnvironment env;
  env.add_cell(cell_at(1, 0.0));
  const auto ul = env.uplink_sinr(CellId{1}, Position{3'000.0, 0.0});
  EXPECT_GT(phy::select_cqi(ul), 0);
}

TEST(RadioEnv, CellAccessors) {
  RadioEnvironment env;
  env.add_cell(cell_at(7, 1'000.0));
  EXPECT_TRUE(env.has_cell(CellId{7}));
  EXPECT_FALSE(env.has_cell(CellId{8}));
  EXPECT_EQ(env.cell(CellId{7}).position.x_m, 1'000.0);
  EXPECT_DOUBLE_EQ(env.cell_distance_m(CellId{7}, Position{4'000.0, 0.0}),
                   3'000.0);
  EXPECT_EQ(env.cell_ids().size(), 1u);
}

}  // namespace
}  // namespace dlte::core
