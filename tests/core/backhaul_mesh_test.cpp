// §7 future work: multi-hop backhaul sharing between neighboring APs.
#include "core/backhaul_mesh.h"

#include <gtest/gtest.h>

namespace dlte::core {
namespace {

struct Valley {
  sim::Simulator sim;
  net::Network net{sim};
  RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};
  NodeId internet = net.add_node("internet");
  BackhaulMesh mesh{sim, net, radio, internet};
  std::vector<std::unique_ptr<DlteAccessPoint>> aps;
  std::vector<NodeId> nodes;

  DlteAccessPoint& add_ap(std::uint32_t id, double x) {
    const NodeId node = net.add_node("ap" + std::to_string(id));
    net.add_link(node, internet,
                 net::LinkConfig{DataRate::mbps(30.0), Duration::millis(15)});
    nodes.push_back(node);
    ApConfig cfg;
    cfg.id = ApId{id};
    cfg.cell = CellId{id};
    cfg.position = Position{x, 0.0};
    cfg.seed = id;
    aps.push_back(
        std::make_unique<DlteAccessPoint>(sim, net, node, radio, cfg));
    mesh.add_member(*aps.back());
    return *aps.back();
  }

  void run_for(double s) { sim.run_until(sim.now() + Duration::seconds(s)); }
};

TEST(BackhaulMesh, ProvisionsRelaysWithinRange) {
  Valley v;
  v.add_ap(1, 0.0);
  v.add_ap(2, 8'000.0);
  v.add_ap(3, 500'000.0);  // Far beyond radio range.
  EXPECT_EQ(v.mesh.stats().relays_provisioned, 1);
  EXPECT_EQ(v.mesh.active_relays(), 0);  // Standby until needed.
}

TEST(BackhaulMesh, RelayRateMonotoneAndBounded) {
  // Tower-to-tower budgets saturate the MCS table for tens of km; the
  // rate must be non-increasing and eventually collapse.
  const double near = BackhaulMesh::relay_rate(2'000.0).to_mbps();
  const double mid = BackhaulMesh::relay_rate(100'000.0).to_mbps();
  const double far = BackhaulMesh::relay_rate(450'000.0).to_mbps();
  EXPECT_GE(near, mid);
  EXPECT_GE(mid, far);
  EXPECT_GT(near, 20.0);  // Tower-to-tower at 2 km: excellent.
  EXPECT_LT(far, 3.0);
}

TEST(BackhaulMesh, ActivatesOnBackhaulFailure) {
  Valley v;
  v.add_ap(1, 0.0);
  v.add_ap(2, 8'000.0);
  v.mesh.enable(Duration::millis(500));
  v.run_for(1.0);
  EXPECT_EQ(v.mesh.active_relays(), 0);

  // Emergency: AP1 loses its uplink.
  v.net.set_link_enabled(v.nodes[0], v.internet, false);
  v.run_for(1.0);
  EXPECT_EQ(v.mesh.active_relays(), 1);
  EXPECT_EQ(v.mesh.stats().activations, 1);
  // AP1's users still reach the Internet, through AP2.
  EXPECT_TRUE(v.net.has_route(v.nodes[0], v.internet));
  EXPECT_EQ(v.net.hop_count(v.nodes[0], v.internet), 2);
}

TEST(BackhaulMesh, DeactivatesWhenBackhaulHeals) {
  Valley v;
  v.add_ap(1, 0.0);
  v.add_ap(2, 8'000.0);
  v.mesh.enable(Duration::millis(500));
  v.net.set_link_enabled(v.nodes[0], v.internet, false);
  v.run_for(1.0);
  ASSERT_EQ(v.mesh.active_relays(), 1);

  v.net.set_link_enabled(v.nodes[0], v.internet, true);
  v.run_for(1.0);
  EXPECT_EQ(v.mesh.active_relays(), 0);
  EXPECT_GE(v.mesh.stats().deactivations, 1);
  // Direct route restored (one hop).
  EXPECT_EQ(v.net.hop_count(v.nodes[0], v.internet), 1);
}

TEST(BackhaulMesh, MultiHopChainReachesDistantSurvivor) {
  // Three APs spaced so only adjacent pairs are in relay range; the two
  // left ones lose backhaul. AP1 must reach the Internet via AP2's relay
  // to AP3 (two radio hops).
  Valley v;
  v.add_ap(1, 0.0);
  v.add_ap(2, 25'000.0);
  v.add_ap(3, 50'000.0);
  EXPECT_EQ(v.mesh.stats().relays_provisioned, 2);  // No 1↔3 shortcut.
  v.mesh.enable(Duration::millis(500));
  v.net.set_link_enabled(v.nodes[0], v.internet, false);
  v.net.set_link_enabled(v.nodes[1], v.internet, false);
  v.run_for(1.0);
  EXPECT_TRUE(v.net.has_route(v.nodes[0], v.internet));
  EXPECT_GE(v.net.hop_count(v.nodes[0], v.internet), 3);
}

TEST(BackhaulMesh, UserTrafficSurvivesOutage) {
  // End-to-end: a served UE's downlink continues during the emergency.
  Valley v;
  auto& a = v.add_ap(1, 0.0);
  v.add_ap(2, 8'000.0);
  for (auto& ap : v.aps) ap->bring_up(v.registry);
  v.run_for(1.0);
  v.mesh.enable(Duration::millis(200));

  // Traffic: packets from the AP's breakout toward the Internet.
  int delivered = 0;
  v.net.set_handler(v.internet, [&](net::Packet&&) { ++delivered; });
  v.sim.every(Duration::millis(50), [&] {
    v.net.send(net::Packet{a.node(), v.internet, 1000, 0x99, {}});
  });
  v.run_for(1.0);
  const int before_outage = delivered;
  EXPECT_GT(before_outage, 0);

  v.net.set_link_enabled(v.nodes[0], v.internet, false);
  v.run_for(2.0);
  // Traffic kept flowing after the watchdog kicked in (allow one check
  // period of loss).
  EXPECT_GT(delivered, before_outage + 20);
}

TEST(BackhaulMesh, NoFalseActivationWhenHealthy) {
  Valley v;
  v.add_ap(1, 0.0);
  v.add_ap(2, 8'000.0);
  v.mesh.enable(Duration::millis(100));
  v.run_for(5.0);
  EXPECT_EQ(v.mesh.stats().activations, 0);
  EXPECT_EQ(v.mesh.active_relays(), 0);
}

}  // namespace
}  // namespace dlte::core
