// UE-initiated detach and the attach guard timer.
#include <gtest/gtest.h>

#include "core/enodeb.h"
#include "core/s1_fabric.h"
#include "epc/epc.h"
#include "ue/nas_client.h"

namespace dlte::core {
namespace {

crypto::Key128 key_for(std::uint64_t imsi) {
  crypto::Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) {
    k[i] = static_cast<std::uint8_t>(imsi * 5 + i);
  }
  return k;
}

const crypto::Block128 kOp = [] {
  crypto::Block128 op{};
  op[0] = 0xcd;
  return op;
}();

struct Rig {
  sim::Simulator sim;
  epc::EpcCore core{sim, epc::EpcConfig{.network_id = "n"},
                    sim::RngStream{9}};
  S1Fabric fabric{sim, core.mme()};
  EnodeB enb{sim, fabric, EnbConfig{.cell = CellId{1}}};
  bool wired{false};

  void wire() {
    fabric.register_enb_direct(CellId{1}, Duration::micros(50),
                               [this](const lte::S1apMessage& m) {
                                 enb.on_s1ap(m);
                               });
    wired = true;
  }

  ue::NasClient make_client(std::uint64_t imsi) {
    core.hss().provision(Imsi{imsi}, key_for(imsi), kOp);
    ue::SimProfile p{Imsi{imsi}, key_for(imsi),
                     crypto::derive_opc(key_for(imsi), kOp), true, "t"};
    return ue::NasClient{ue::Usim{p}, "n"};
  }
};

TEST(Detach, TearsDownSessionAndContext) {
  Rig rig;
  rig.wire();
  auto client = rig.make_client(900001);
  bool attached = false;
  rig.enb.attach_ue(client, [&](AttachOutcome o) { attached = o.success; });
  rig.sim.run_all();
  ASSERT_TRUE(attached);
  ASSERT_EQ(rig.core.gateway().session_count(), 1u);

  rig.enb.detach_ue(client);
  rig.sim.run_all();
  EXPECT_FALSE(rig.core.mme().is_registered(Imsi{900001}));
  EXPECT_EQ(rig.core.gateway().session_count(), 0u);
  EXPECT_EQ(rig.core.mme().stats().detaches, 1u);
}

TEST(Detach, DetachedUeCannotBePaged) {
  Rig rig;
  rig.wire();
  auto client = rig.make_client(900002);
  rig.enb.attach_ue(client, nullptr);
  rig.sim.run_all();
  rig.enb.detach_ue(client);
  rig.sim.run_all();
  rig.core.mme().page(Imsi{900002}, nullptr);
  rig.sim.run_all();
  EXPECT_EQ(rig.core.mme().stats().paging_messages, 0u);
}

TEST(Detach, UnattachedClientIsNoop) {
  Rig rig;
  rig.wire();
  auto client = rig.make_client(900003);
  rig.enb.detach_ue(client);  // Never attached.
  rig.sim.run_all();
  EXPECT_EQ(rig.core.mme().stats().detaches, 0u);
}

TEST(AttachGuard, FiresWhenCoreUnreachable) {
  // No fabric endpoint registered: InitialUeMessage goes nowhere.
  Rig rig;  // Note: wire() NOT called.
  auto client = rig.make_client(900004);
  AttachOutcome out;
  out.success = true;
  rig.enb.attach_ue(client, [&](AttachOutcome o) { out = o; });
  rig.sim.run_all();
  EXPECT_FALSE(out.success);
  EXPECT_NEAR(out.elapsed.to_seconds(), 15.0, 0.1);
  EXPECT_EQ(rig.enb.attaches_failed(), 1);
}

TEST(AttachGuard, DoesNotFireOnSuccess) {
  Rig rig;
  rig.wire();
  auto client = rig.make_client(900005);
  int callbacks = 0;
  rig.enb.attach_ue(client, [&](AttachOutcome) { ++callbacks; });
  rig.sim.run_all();  // Runs past the 15 s guard too.
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(rig.enb.attaches_failed(), 0);
  EXPECT_EQ(rig.enb.attaches_succeeded(), 1);
}

}  // namespace
}  // namespace dlte::core
