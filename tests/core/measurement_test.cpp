// A3 measurement events and the full measurement→handover loop.
#include "core/measurement.h"

#include <gtest/gtest.h>

#include "core/handover.h"
#include "lte/rrc.h"
#include "ue/mobility.h"

namespace dlte::core {
namespace {

// RRC codec coverage lives here next to its consumer.
TEST(RrcCodec, AllMessagesRoundTrip) {
  using lte::RrcMessage;
  std::vector<RrcMessage> msgs{
      lte::RrcConnectionRequest{Tmsi{9}, 2},
      lte::RrcConnectionSetup{1},
      lte::RrcConnectionSetupComplete{{1, 2, 3}},
      lte::RrcMeasurementConfig{2.5, 480, 40},
      lte::RrcMeasurementReport{CellId{1}, -90.5, CellId{2}, -85.0},
      lte::RrcConnectionReconfiguration{true, CellId{2}},
      lte::RrcConnectionReconfigurationComplete{CellId{2}},
      lte::RrcConnectionRelease{},
  };
  for (const auto& m : msgs) {
    const auto bytes = lte::encode_rrc(m);
    auto back = lte::decode_rrc(bytes);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->index(), m.index());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_FALSE(lte::decode_rrc(std::span(bytes.data(), cut)).ok());
    }
  }
  const auto report = std::get<lte::RrcMeasurementReport>(
      *lte::decode_rrc(lte::encode_rrc(msgs[4])));
  EXPECT_DOUBLE_EQ(report.neighbor_rsrp_dbm, -85.0);
}

struct Field {
  sim::Simulator sim;
  RadioEnvironment radio;

  Field() {
    radio.add_cell(CellSiteConfig{CellId{1}, Position{0.0, 0.0}});
    radio.add_cell(CellSiteConfig{CellId{2}, Position{10'000.0, 0.0}});
  }
  void run_for(double s) { sim.run_until(sim.now() + Duration::seconds(s)); }
};

TEST(Measurement, StaticUeNearServingNeverTriggers) {
  Field f;
  UeDevice ue{ue::SimProfile{},
              std::make_unique<ue::StaticMobility>(Position{1'000.0, 0.0})};
  MeasurementEngine eng{f.sim, f.radio, lte::RrcMeasurementConfig{}};
  int reports = 0;
  eng.start(ue, CellId{1},
            [&](const lte::RrcMeasurementReport&) { ++reports; });
  f.run_for(10.0);
  EXPECT_EQ(reports, 0);
}

TEST(Measurement, MovingUeTriggersPastMidpoint) {
  Field f;
  // Drive from cell 1 toward cell 2 at 20 m/s; tie position to sim time.
  auto mobility = std::make_unique<ue::LinearMobility>(
      Position{2'000.0, 0.0}, 20.0, 0.0);
  ue::LinearMobility* mob = mobility.get();
  UeDevice ue{ue::SimProfile{}, std::move(mobility)};
  f.sim.every(Duration::millis(40), [&] {
    mob->advance(Duration::millis(40));
  });

  MeasurementEngine eng{f.sim, f.radio, lte::RrcMeasurementConfig{}};
  std::optional<lte::RrcMeasurementReport> report;
  eng.start(ue, CellId{1}, [&](const lte::RrcMeasurementReport& r) {
    report = r;
  });
  f.run_for(400.0);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->serving, CellId{1});
  EXPECT_EQ(report->neighbor, CellId{2});
  // Neighbour must actually be offset-better at trigger time.
  EXPECT_GT(report->neighbor_rsrp_dbm, report->serving_rsrp_dbm + 2.9);
  // Trigger point sits past the midpoint (5 km) — hysteresis.
  EXPECT_GT(ue.position().x_m, 5'000.0);
  EXPECT_EQ(eng.reports_fired(), 1);  // Once, then disarmed.
}

TEST(Measurement, RearmsAfterServingChange) {
  Field f;
  f.radio.add_cell(CellSiteConfig{CellId{3}, Position{20'000.0, 0.0}});
  auto mobility = std::make_unique<ue::LinearMobility>(
      Position{2'000.0, 0.0}, 50.0, 0.0);
  ue::LinearMobility* mob = mobility.get();
  UeDevice ue{ue::SimProfile{}, std::move(mobility)};
  f.sim.every(Duration::millis(40), [&] {
    mob->advance(Duration::millis(40));
  });
  MeasurementEngine eng{f.sim, f.radio, lte::RrcMeasurementConfig{}};
  std::vector<CellId> targets;
  eng.start(ue, CellId{1}, [&](const lte::RrcMeasurementReport& r) {
    targets.push_back(r.neighbor);
    eng.set_serving(r.neighbor);  // Handover happens; re-arm.
  });
  f.run_for(400.0);  // Crosses 1→2 and 2→3.
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0], CellId{2});
  EXPECT_EQ(targets[1], CellId{3});
}

TEST(Measurement, TimeToTriggerSuppressesBriefExcursions) {
  Field f;
  // A UE that dips into cell 2's advantage area for less than TTT.
  auto mobility = std::make_unique<ue::StaticMobility>(
      Position{6'000.0, 0.0});  // Past midpoint: A3 condition holds.
  UeDevice ue{ue::SimProfile{}, std::move(mobility)};
  lte::RrcMeasurementConfig cfg;
  cfg.time_to_trigger_ms = 2'000;  // Long TTT.
  MeasurementEngine eng{f.sim, f.radio, cfg};
  int reports = 0;
  eng.start(ue, CellId{1},
            [&](const lte::RrcMeasurementReport&) { ++reports; });
  f.run_for(1.0);  // Less than TTT.
  EXPECT_EQ(reports, 0);
  f.run_for(2.0);  // Now past TTT.
  EXPECT_EQ(reports, 1);
}

// The full loop: measurement event → cooperative X2 handover → adopt at
// target → measurements re-armed at the new serving cell.
TEST(Measurement, DrivesCooperativeHandover) {
  sim::Simulator sim;
  net::Network net{sim};
  RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};
  const NodeId internet = net.add_node("internet");

  std::vector<std::unique_ptr<DlteAccessPoint>> aps;
  std::vector<std::unique_ptr<HandoverManager>> managers;
  for (std::uint32_t id : {1u, 2u}) {
    const NodeId node = net.add_node("ap" + std::to_string(id));
    net.add_link(node, internet,
                 net::LinkConfig{DataRate::mbps(50.0), Duration::millis(15)});
    ApConfig cfg;
    cfg.id = ApId{id};
    cfg.cell = CellId{id};
    cfg.position = Position{(id - 1) * 10'000.0, 0.0};
    cfg.mode = lte::DlteMode::kCooperative;
    cfg.seed = id;
    aps.push_back(
        std::make_unique<DlteAccessPoint>(sim, net, node, radio, cfg));
    managers.push_back(std::make_unique<HandoverManager>(sim, *aps.back()));
  }
  for (auto& ap : aps) ap->bring_up(registry);
  sim.run_until(sim.now() + Duration::seconds(2.0));

  crypto::Key128 k{};
  k[0] = 0x11;
  crypto::Block128 op{};
  op[0] = 0xcd;
  registry.publish_subscriber(
      epc::PublishedKeys{Imsi{42}, k, crypto::derive_opc(k, op)});
  for (auto& ap : aps) ap->import_published_subscribers(registry);

  auto mobility = std::make_unique<ue::LinearMobility>(
      Position{2'000.0, 0.0}, 25.0, 0.0);
  ue::LinearMobility* mob = mobility.get();
  UeDevice car{ue::SimProfile{Imsi{42}, k, crypto::derive_opc(k, op), true,
                              "car"},
               std::move(mobility)};
  sim.every(Duration::millis(40), [&] { mob->advance(Duration::millis(40)); });

  bool attached = false;
  aps[0]->attach(car, mac::UeTrafficConfig{.full_buffer = true},
                 [&](AttachOutcome o) { attached = o.success; });
  sim.run_until(sim.now() + Duration::seconds(2.0));
  ASSERT_TRUE(attached);

  MeasurementEngine eng{sim, radio, lte::RrcMeasurementConfig{}};
  std::optional<HandoverOutcome> ho;
  eng.start(car, CellId{1}, [&](const lte::RrcMeasurementReport& r) {
    managers[0]->initiate(car, ApId{r.neighbor.value()},
                          mac::UeTrafficConfig{.full_buffer = true},
                          [&](HandoverOutcome o) {
                            ho = o;
                            if (o.success) {
                              aps[1]->adopt_ue(
                                  car, mac::UeTrafficConfig{
                                           .full_buffer = true});
                              eng.set_serving(CellId{2});
                            }
                          });
  });
  sim.run_until(sim.now() + Duration::seconds(400.0));

  ASSERT_TRUE(ho.has_value());
  EXPECT_TRUE(ho->success);
  EXPECT_TRUE(aps[1]->core().mme().is_registered(Imsi{42}));
  EXPECT_FALSE(aps[0]->core().mme().is_registered(Imsi{42}));
  EXPECT_EQ(eng.serving(), CellId{2});
}

}  // namespace
}  // namespace dlte::core
