// ECM-idle + paging: a function every standard handset expects from its
// core (§4.1), with the stub-vs-tracking-area cost contrast.
#include <gtest/gtest.h>

#include "core/enodeb.h"
#include "core/s1_fabric.h"
#include "epc/epc.h"
#include "ue/nas_client.h"

namespace dlte::core {
namespace {

crypto::Key128 key_for(std::uint64_t imsi) {
  crypto::Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) {
    k[i] = static_cast<std::uint8_t>(imsi + i);
  }
  return k;
}

const crypto::Block128 kOp = [] {
  crypto::Block128 op{};
  op[0] = 0xcd;
  return op;
}();

struct Rig {
  sim::Simulator sim;
  epc::EpcCore core;
  S1Fabric fabric;
  std::vector<std::unique_ptr<EnodeB>> enbs;

  explicit Rig(int n_cells, std::vector<CellId> tracking_area = {})
      : core(sim,
             [&] {
               epc::EpcConfig c;
               c.network_id = "n";
               c.mme.tracking_area = std::move(tracking_area);
               return c;
             }(),
             sim::RngStream{6}),
        fabric(sim, core.mme()) {
    for (int i = 0; i < n_cells; ++i) {
      const CellId cell{static_cast<std::uint32_t>(i + 1)};
      enbs.push_back(std::make_unique<EnodeB>(
          sim, fabric, EnbConfig{.cell = cell}));
      EnodeB* enb = enbs.back().get();
      fabric.register_enb_direct(cell, Duration::micros(50),
                                 [enb](const lte::S1apMessage& m) {
                                   enb->on_s1ap(m);
                                 });
    }
  }

  ue::NasClient make_client(std::uint64_t imsi) {
    core.hss().provision(Imsi{imsi}, key_for(imsi), kOp);
    ue::SimProfile p{Imsi{imsi}, key_for(imsi),
                     crypto::derive_opc(key_for(imsi), kOp), true, "t"};
    return ue::NasClient{ue::Usim{p}, "n"};
  }
};

TEST(Paging, IdleUeWakesOnPage) {
  Rig rig{1};
  auto client = rig.make_client(800001);
  bool attached = false;
  rig.enbs[0]->attach_ue(client, [&](AttachOutcome o) {
    attached = o.success;
  });
  rig.sim.run_all();
  ASSERT_TRUE(attached);

  rig.core.mme().release_to_idle(Imsi{800001});
  EXPECT_TRUE(rig.core.mme().is_idle(Imsi{800001}));

  // Downlink data arrives: page.
  bool connected = false;
  TimePoint paged_at = rig.sim.now();
  rig.core.mme().page(Imsi{800001}, [&] { connected = true; });
  rig.sim.run_all();
  EXPECT_TRUE(connected);
  EXPECT_FALSE(rig.core.mme().is_idle(Imsi{800001}));
  EXPECT_EQ(rig.core.mme().stats().paging_messages, 1u);
  EXPECT_EQ(rig.core.mme().stats().service_requests, 1u);
  EXPECT_EQ(rig.enbs[0]->pages_received(), 1);
  EXPECT_EQ(rig.enbs[0]->pages_answered(), 1);
  // Wake-up costs a paging occasion + RRC setup, not a full attach.
  EXPECT_GT((rig.sim.now() - paged_at).to_millis(), 30.0);
  EXPECT_LT((rig.sim.now() - paged_at).to_millis(), 100.0);
}

TEST(Paging, ConnectedUeNeedsNoPage) {
  Rig rig{1};
  auto client = rig.make_client(800002);
  rig.enbs[0]->attach_ue(client, nullptr);
  rig.sim.run_all();
  bool connected = false;
  rig.core.mme().page(Imsi{800002}, [&] { connected = true; });
  EXPECT_TRUE(connected);  // Immediate: no signaling.
  EXPECT_EQ(rig.core.mme().stats().paging_messages, 0u);
}

TEST(Paging, UnknownUePageIsNoop) {
  Rig rig{1};
  bool cb = false;
  rig.core.mme().page(Imsi{999999}, [&] { cb = true; });
  rig.sim.run_all();
  EXPECT_TRUE(cb);  // Treated as already-connected / nothing to do.
  EXPECT_EQ(rig.core.mme().stats().paging_messages, 0u);
}

TEST(Paging, TrackingAreaFanOutCostsMessages) {
  // Centralized core pages the whole TA: 8 cells → 8 messages per page.
  // A dLTE stub (1 cell, empty TA) pays exactly 1. This is another
  // §4.1 scaling contrast, in signaling rather than CPU.
  Rig central{8, {CellId{1}, CellId{2}, CellId{3}, CellId{4}, CellId{5},
                  CellId{6}, CellId{7}, CellId{8}}};
  auto client = central.make_client(800003);
  central.enbs[2]->attach_ue(client, nullptr);  // Camped on cell 3.
  central.sim.run_all();
  central.core.mme().release_to_idle(Imsi{800003});
  bool connected = false;
  central.core.mme().page(Imsi{800003}, [&] { connected = true; });
  central.sim.run_all();
  EXPECT_TRUE(connected);
  EXPECT_EQ(central.core.mme().stats().paging_messages, 8u);
  // Only the camped cell answers; others receive and ignore.
  int answered = 0, received = 0;
  for (auto& enb : central.enbs) {
    answered += enb->pages_answered();
    received += enb->pages_received();
  }
  EXPECT_EQ(answered, 1);
  EXPECT_EQ(received, 8);
}

TEST(Paging, ReleaseToIdleRequiresRegistration) {
  Rig rig{1};
  rig.core.mme().release_to_idle(Imsi{123});  // Unknown: no-op.
  EXPECT_FALSE(rig.core.mme().is_idle(Imsi{123}));
}

}  // namespace
}  // namespace dlte::core
