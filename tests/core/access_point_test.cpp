// Integration: the full dLTE bring-up and serve loop of §4 — registry
// grant, peer discovery, coordinated sharing, open-identity attach.
#include "core/access_point.h"

#include <gtest/gtest.h>

#include "ue/mobility.h"

namespace dlte::core {
namespace {

struct Town {
  sim::Simulator sim;
  net::Network net{sim};
  RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};
  NodeId internet = net.add_node("internet");
  std::vector<std::unique_ptr<DlteAccessPoint>> aps;

  DlteAccessPoint& add_ap(std::uint32_t id, double x_m,
                          lte::DlteMode mode = lte::DlteMode::kFairShare) {
    const NodeId node = net.add_node("ap" + std::to_string(id));
    net.add_link(node, internet,
                 net::LinkConfig{DataRate::mbps(50.0), Duration::millis(15)});
    ApConfig cfg;
    cfg.id = ApId{id};
    cfg.cell = CellId{id};
    cfg.position = Position{x_m, 0.0};
    cfg.mode = mode;
    cfg.seed = id;
    aps.push_back(std::make_unique<DlteAccessPoint>(sim, net, node, radio,
                                                    cfg));
    return *aps.back();
  }

  UeDevice make_ue(std::uint64_t imsi, Position pos, bool publish = true) {
    crypto::Key128 k{};
    for (std::size_t i = 0; i < 16; ++i) {
      k[i] = static_cast<std::uint8_t>(imsi * 7 + i);
    }
    crypto::Block128 op{};
    op[0] = 0xcd;
    const auto opc = crypto::derive_opc(k, op);
    if (publish) {
      registry.publish_subscriber(epc::PublishedKeys{Imsi{imsi}, k, opc});
    }
    ue::SimProfile profile{Imsi{imsi}, k, opc, true, "open"};
    return UeDevice{profile, std::make_unique<ue::StaticMobility>(pos)};
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + Duration::seconds(seconds));
  }
};

TEST(AccessPoint, BringUpAcquiresGrantAndPeers) {
  Town town;
  auto& a = town.add_ap(1, 0.0);
  auto& b = town.add_ap(2, 6'000.0);
  bool a_up = false, b_up = false;
  a.bring_up(town.registry, [&](bool ok) { a_up = ok; });
  town.run_for(1.0);
  b.bring_up(town.registry, [&](bool ok) { b_up = ok; });
  town.run_for(2.0);

  EXPECT_TRUE(a_up);
  EXPECT_TRUE(b_up);
  EXPECT_TRUE(a.has_grant());
  EXPECT_TRUE(b.has_grant());
  EXPECT_EQ(town.registry.grant_count(), 2u);
  // B discovered A from the registry; A learned B from its hello.
  EXPECT_EQ(b.coordinator().peer_count(), 1u);
  town.run_for(2.0);
  EXPECT_EQ(a.coordinator().peer_count(), 1u);
}

TEST(AccessPoint, FairShareConvergesAfterOrganicJoin) {
  Town town;
  auto& a = town.add_ap(1, 0.0);
  auto& b = town.add_ap(2, 6'000.0);
  a.bring_up(town.registry);
  town.run_for(1.0);
  EXPECT_DOUBLE_EQ(a.cell_mac().prb_share(), 1.0);  // Alone: full band.
  b.bring_up(town.registry);
  a.coordinator().set_offered_load(1.0);
  b.coordinator().set_offered_load(1.0);
  town.run_for(6.0);
  EXPECT_NEAR(a.cell_mac().prb_share(), 0.5, 1e-9);
  EXPECT_NEAR(b.cell_mac().prb_share(), 0.5, 1e-9);
}

TEST(AccessPoint, OpenIdentityAttachViaPublishedKeys) {
  Town town;
  auto& ap = town.add_ap(1, 0.0);
  ap.bring_up(town.registry);
  town.run_for(1.0);

  auto ue = town.make_ue(555001, Position{1'000.0, 0.0});
  EXPECT_EQ(ap.import_published_subscribers(town.registry), 1u);

  AttachOutcome outcome;
  ap.attach(ue, mac::UeTrafficConfig{.offered = DataRate::kbps(100.0)},
            [&](AttachOutcome o) { outcome = o; });
  town.run_for(2.0);

  EXPECT_TRUE(outcome.success);
  EXPECT_TRUE(ue.attached());
  EXPECT_NE(ue.current_ip(), 0u);
  // Local core stub did the whole thing: session exists on-box.
  EXPECT_EQ(ap.core().gateway().session_count(), 1u);
  EXPECT_TRUE(ap.core().mme().is_registered(Imsi{555001}));
}

TEST(AccessPoint, UnpublishedSubscriberRejected) {
  Town town;
  auto& ap = town.add_ap(1, 0.0);
  ap.bring_up(town.registry);
  town.run_for(1.0);
  auto ue = town.make_ue(555002, Position{1'000.0, 0.0},
                         /*publish=*/false);
  ap.import_published_subscribers(town.registry);
  AttachOutcome outcome;
  outcome.success = true;
  ap.attach(ue, mac::UeTrafficConfig{}, [&](AttachOutcome o) {
    outcome = o;
  });
  town.run_for(2.0);
  EXPECT_FALSE(outcome.success);
  EXPECT_FALSE(ue.attached());
}

TEST(AccessPoint, AttachLatencyIsLocalCoreFast) {
  // With the core on-box, attach time is dominated by radio RTTs — order
  // 100 ms, not the backhaul.
  Town town;
  auto& ap = town.add_ap(1, 0.0);
  ap.bring_up(town.registry);
  town.run_for(1.0);
  auto ue = town.make_ue(555003, Position{500.0, 0.0});
  ap.import_published_subscribers(town.registry);
  AttachOutcome outcome;
  ap.attach(ue, mac::UeTrafficConfig{}, [&](AttachOutcome o) {
    outcome = o;
  });
  town.run_for(2.0);
  ASSERT_TRUE(outcome.success);
  EXPECT_LT(outcome.elapsed.to_millis(), 200.0);
  EXPECT_GT(outcome.elapsed.to_millis(), 50.0);  // RRC setup at least.
}

TEST(AccessPoint, ServedUeGetsDownlinkThroughput) {
  Town town;
  auto& ap = town.add_ap(1, 0.0);
  ap.bring_up(town.registry);
  town.run_for(1.0);
  auto ue = town.make_ue(555004, Position{2'000.0, 0.0});
  ap.import_published_subscribers(town.registry);
  bool attached = false;
  ap.attach(ue, mac::UeTrafficConfig{.full_buffer = true},
            [&](AttachOutcome o) { attached = o.success; });
  town.run_for(2.0);
  ASSERT_TRUE(attached);
  ap.cell_mac().run(Duration::seconds(1.0));
  const auto ids = ap.cell_mac().ue_ids();
  ASSERT_EQ(ids.size(), 1u);
  const auto goodput =
      ap.cell_mac().stats(ids[0]).goodput(ap.cell_mac().elapsed());
  EXPECT_GT(goodput.to_mbps(), 5.0);  // 2 km rural link, 10 MHz.
}

TEST(AccessPoint, TwoApsServeIndependently) {
  // Each AP is a complete standalone network (§4): no shared state.
  Town town;
  auto& a = town.add_ap(1, 0.0);
  auto& b = town.add_ap(2, 20'000.0);
  a.bring_up(town.registry);
  b.bring_up(town.registry);
  town.run_for(1.0);

  auto ue_a = town.make_ue(555005, Position{1'000.0, 0.0});
  auto ue_b = town.make_ue(555006, Position{19'000.0, 0.0});
  a.import_published_subscribers(town.registry);
  b.import_published_subscribers(town.registry);
  int successes = 0;
  a.attach(ue_a, mac::UeTrafficConfig{}, [&](AttachOutcome o) {
    successes += o.success ? 1 : 0;
  });
  b.attach(ue_b, mac::UeTrafficConfig{}, [&](AttachOutcome o) {
    successes += o.success ? 1 : 0;
  });
  town.run_for(2.0);
  EXPECT_EQ(successes, 2);
  EXPECT_EQ(a.core().gateway().session_count(), 1u);
  EXPECT_EQ(b.core().gateway().session_count(), 1u);
  // Different networks: no cross-registration.
  EXPECT_FALSE(a.core().mme().is_registered(Imsi{555006}));
  EXPECT_FALSE(b.core().mme().is_registered(Imsi{555005}));
}


TEST(AccessPoint, TraceRecordsLifecycleEvents) {
  Town town;
  auto& ap = town.add_ap(1, 0.0);
  sim::TraceLog trace{town.sim};
  ap.set_trace(&trace);
  ap.bring_up(town.registry);
  town.run_for(1.0);
  auto ue = town.make_ue(555099, Position{1'000.0, 0.0});
  ap.import_published_subscribers(town.registry);
  ap.attach(ue, mac::UeTrafficConfig{}, nullptr);
  town.run_for(2.0);

  EXPECT_GE(trace.count(sim::TraceCategory::kRegistry), 1u);
  EXPECT_GE(trace.count(sim::TraceCategory::kCoordination), 1u);
  EXPECT_EQ(trace.count(sim::TraceCategory::kAttach), 1u);
  const auto attaches = trace.by_category(sim::TraceCategory::kAttach);
  EXPECT_NE(attaches[0]->message.find("555099"), std::string::npos);
  EXPECT_NE(attaches[0]->message.find("completed"), std::string::npos);
}


TEST(AccessPoint, HeartbeatsKeepLeaseAliveAndCrashLapses) {
  // Leased spectrum (SAS-style): a running AP renews automatically; a
  // crashed neighbour's grant lapses and frees the domain.
  Town town;
  town.registry.set_grant_lifetime(Duration::seconds(60.0));
  auto& a = town.add_ap(1, 0.0);
  auto& b = town.add_ap(2, 6'000.0);
  a.bring_up(town.registry);
  b.bring_up(town.registry);
  town.run_for(2.0);
  ASSERT_EQ(town.registry.grant_count(), 2u);

  // "Crash" AP B by deleting it: its heartbeats stop.
  town.aps.pop_back();
  town.run_for(200.0);
  EXPECT_EQ(town.registry.grant_count(), 1u);   // B lapsed.
  EXPECT_TRUE(a.has_grant());                   // A kept renewing.
  EXPECT_GE(town.registry.grants_lapsed(), 1u);
  EXPECT_TRUE(town.registry.contention_domain(a.grant()).empty());
  (void)b;
}

}  // namespace
}  // namespace dlte::core
