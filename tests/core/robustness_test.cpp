// Failure injection & garbage tolerance: a network component lives on
// hostile input. Every stack here must shrug off truncated, corrupted
// or out-of-order protocol traffic and infrastructure failures without
// crashing or corrupting unrelated state.
#include <gtest/gtest.h>

#include "core/access_point.h"
#include "core/s1_fabric.h"
#include "spectrum/coordinator.h"
#include "transport/transport.h"
#include "ue/mobility.h"

namespace dlte::core {
namespace {

TEST(Robustness, MmeIgnoresGarbageNasPdus) {
  sim::Simulator sim;
  epc::EpcCore core{sim, epc::EpcConfig{}, sim::RngStream{1}};
  S1Fabric fabric{sim, core.mme()};
  fabric.register_enb_direct(CellId{1}, Duration::micros(10),
                             [](const lte::S1apMessage&) {});
  // Garbage NAS inside a valid S1AP envelope.
  lte::InitialUeMessage init;
  init.enb_ue_id = EnbUeId{1};
  init.cell = CellId{1};
  init.nas_pdu = {0xde, 0xad, 0xbe};
  core.mme().handle_s1ap(CellId{1}, lte::S1apMessage{init});
  // NAS transport for a UE the MME has never seen.
  lte::UplinkNasTransport up;
  up.enb_ue_id = EnbUeId{9};
  up.mme_ue_id = MmeUeId{999};
  up.nas_pdu = lte::encode_nas(lte::NasMessage{lte::AttachComplete{}});
  core.mme().handle_s1ap(CellId{1}, lte::S1apMessage{up});
  sim.run_all();
  EXPECT_EQ(core.mme().registered_count(), 0u);
  EXPECT_EQ(core.mme().stats().messages_processed, 2u);
}

TEST(Robustness, MmeIgnoresOutOfOrderDialogue) {
  // SecurityModeComplete before any attach; context-setup response for a
  // phantom UE.
  sim::Simulator sim;
  epc::EpcCore core{sim, epc::EpcConfig{}, sim::RngStream{2}};
  S1Fabric fabric{sim, core.mme()};
  fabric.register_enb_direct(CellId{1}, Duration::micros(10),
                             [](const lte::S1apMessage&) {});
  lte::InitialContextSetupResponse resp;
  resp.enb_ue_id = EnbUeId{1};
  resp.mme_ue_id = MmeUeId{42};
  resp.enb_downlink_teid = Teid{7};
  core.mme().handle_s1ap(CellId{1}, lte::S1apMessage{resp});
  sim.run_all();
  EXPECT_EQ(core.mme().registered_count(), 0u);
}

TEST(Robustness, EnodebIgnoresUnknownUeIds) {
  sim::Simulator sim;
  epc::EpcCore core{sim, epc::EpcConfig{}, sim::RngStream{3}};
  S1Fabric fabric{sim, core.mme()};
  EnodeB enb{sim, fabric, EnbConfig{.cell = CellId{1}}};
  lte::DownlinkNasTransport down;
  down.enb_ue_id = EnbUeId{777};  // Never allocated.
  down.mme_ue_id = MmeUeId{1};
  down.nas_pdu = lte::encode_nas(
      lte::NasMessage{lte::AuthenticationRequest{}});
  enb.on_s1ap(lte::S1apMessage{down});
  lte::InitialContextSetupRequest ctx;
  ctx.enb_ue_id = EnbUeId{777};
  enb.on_s1ap(lte::S1apMessage{ctx});
  sim.run_all();
  EXPECT_EQ(enb.attaches_succeeded(), 0);
}

TEST(Robustness, CoordinatorSurvivesCorruptedX2) {
  sim::Simulator sim;
  net::Network net{sim};
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_link(a, b, net::LinkConfig{});
  spectrum::PeerCoordinator coord{
      sim, net, b,
      spectrum::CoordinatorConfig{ApId{2}, lte::DlteMode::kFairShare}};
  // Raw garbage with the X2 protocol tag.
  net.send(net::Packet{a, b, 10, spectrum::kX2Protocol,
                       {0xff, 0x00, 0x13, 0x37}});
  // A truncated but well-typed message.
  auto bytes = lte::encode_x2(lte::X2Message{lte::DltePeerStatus{}});
  bytes.resize(bytes.size() / 2);
  net.send(net::Packet{a, b, 10, spectrum::kX2Protocol, bytes});
  sim.run_all();
  EXPECT_EQ(coord.peer_count(), 0u);
  EXPECT_DOUBLE_EQ(coord.current_share(), 1.0);
}

TEST(Robustness, TransportIgnoresForeignAndGarbageSegments) {
  sim::Simulator sim;
  net::Network net{sim};
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_link(a, b, net::LinkConfig{});
  transport::TransportHost host{sim, net, b};
  // No listener: unsolicited data segment for an unknown connection.
  net.send(net::Packet{
      a, b, 60, transport::kTransportProtocol,
      transport::encode_segment(transport::SegmentHeader{
          12345, transport::kSegData, 0.0, 100})});
  // Garbage payload under the transport tag.
  net.send(net::Packet{a, b, 60, transport::kTransportProtocol,
                       {0x01, 0x02}});
  sim.run_all();
  SUCCEED();  // No crash, no state.
}

TEST(Robustness, AttachSurvivesBackhaulFlap) {
  // Centralized attach with the S1 path flapping mid-dialogue: messages
  // in flight are lost, and the MME's NAS retransmission timers recover
  // the dialogue once the path heals.
  sim::Simulator sim;
  net::Network net{sim};
  epc::EpcCore core{sim,
                    epc::EpcConfig{.deployment =
                                       epc::CoreDeployment::kCentralized,
                                   .network_id = "n"},
                    sim::RngStream{4}};
  S1Fabric fabric{sim, core.mme()};
  EnodeB enb{sim, fabric, EnbConfig{.cell = CellId{1}}};
  const NodeId e = net.add_node("enb");
  const NodeId c = net.add_node("core");
  net.add_link(e, c, net::LinkConfig{DataRate::mbps(100.0),
                                     Duration::millis(25)});
  fabric.register_enb_networked(net, CellId{1}, e, c,
                                [&](const lte::S1apMessage& m) {
                                  enb.on_s1ap(m);
                                });
  crypto::Key128 k{};
  crypto::Block128 op{};
  core.hss().provision(Imsi{5}, k, op);
  ue::SimProfile p{Imsi{5}, k, crypto::derive_opc(k, op), true, "t"};
  ue::NasClient client{ue::Usim{p}, "n"};
  AttachOutcome out;
  int done = 0;
  enb.attach_ue(client, [&](AttachOutcome o) {
    ++done;
    out = o;
  });
  // Cut the backhaul 100 ms in — after the attach request reached the
  // core, mid-AKA (the UE's authentication response gets lost).
  sim.schedule(Duration::millis(100), [&] {
    net.set_link_enabled(e, c, false);
  });
  // Still down after the radio leg delivered the lost message window.
  sim.schedule(Duration::millis(400), [&] {
    EXPECT_EQ(done, 0);
    EXPECT_FALSE(client.registered());
    net.set_link_enabled(e, c, true);
  });
  sim.run_all();
  // NAS retransmission healed the dialogue — same attach, no fresh start.
  EXPECT_EQ(done, 1);
  EXPECT_TRUE(out.success);
  EXPECT_TRUE(client.registered());
  EXPECT_GT(core.mme().stats().nas_retransmissions, 0u);
}

TEST(Robustness, UeMovingOutOfCoverageStopsService) {
  // A served UE drives away; the SINR provider tracks it and the MAC
  // stops delivering (no stale-rate artifacts, no crash).
  sim::Simulator sim;
  net::Network net{sim};
  RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};
  const NodeId internet = net.add_node("internet");
  const NodeId ap_node = net.add_node("ap");
  net.add_link(ap_node, internet, net::LinkConfig{});
  ApConfig cfg;
  cfg.id = ApId{1};
  cfg.cell = CellId{1};
  DlteAccessPoint ap{sim, net, ap_node, radio, cfg};
  ap.bring_up(registry);
  sim.run_until(sim.now() + Duration::seconds(1.0));

  crypto::Key128 k{};
  crypto::Block128 op{};
  registry.publish_subscriber(
      epc::PublishedKeys{Imsi{9}, k, crypto::derive_opc(k, op)});
  ap.import_published_subscribers(registry);
  UeDevice car{ue::SimProfile{Imsi{9}, k, crypto::derive_opc(k, op), true,
                              "car"},
               std::make_unique<ue::LinearMobility>(Position{1'000.0, 0.0},
                                                    400.0, 0.0)};
  bool attached = false;
  ap.attach(car, mac::UeTrafficConfig{.full_buffer = true},
            [&](AttachOutcome o) { attached = o.success; });
  sim.run_until(sim.now() + Duration::seconds(1.0));
  ASSERT_TRUE(attached);

  // In coverage: deliver.
  ap.cell_mac().run(Duration::seconds(1.0));
  const auto ids = ap.cell_mac().ue_ids();
  ASSERT_EQ(ids.size(), 1u);
  const double near_bits = ap.cell_mac().stats(ids[0]).delivered_bits;
  EXPECT_GT(near_bits, 0.0);

  // Drive 400 m/s for 5 minutes: 120+ km out, beyond any budget.
  car.advance(Duration::seconds(300.0));
  ap.cell_mac().run(Duration::seconds(1.0));
  const double far_bits =
      ap.cell_mac().stats(ids[0]).delivered_bits - near_bits;
  EXPECT_EQ(far_bits, 0.0);
}

}  // namespace
}  // namespace dlte::core
