// Cooperative-mode client handoff between dLTE peers (§4.3/§6).
#include "core/handover.h"

#include <gtest/gtest.h>

#include "ue/mobility.h"

namespace dlte::core {
namespace {

struct Town {
  sim::Simulator sim;
  net::Network net{sim};
  RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};
  NodeId internet = net.add_node("internet");
  std::vector<std::unique_ptr<DlteAccessPoint>> aps;
  std::vector<std::unique_ptr<HandoverManager>> managers;

  DlteAccessPoint& add_ap(std::uint32_t id, double x,
                          lte::DlteMode mode = lte::DlteMode::kCooperative) {
    const NodeId node = net.add_node("ap" + std::to_string(id));
    net.add_link(node, internet,
                 net::LinkConfig{DataRate::mbps(50.0), Duration::millis(15)});
    ApConfig cfg;
    cfg.id = ApId{id};
    cfg.cell = CellId{id};
    cfg.position = Position{x, 0.0};
    cfg.mode = mode;
    cfg.seed = id;
    aps.push_back(
        std::make_unique<DlteAccessPoint>(sim, net, node, radio, cfg));
    managers.push_back(
        std::make_unique<HandoverManager>(sim, *aps.back()));
    return *aps.back();
  }

  UeDevice make_ue(std::uint64_t imsi, Position pos) {
    crypto::Key128 k{};
    for (std::size_t i = 0; i < 16; ++i) {
      k[i] = static_cast<std::uint8_t>(imsi + i * 3);
    }
    crypto::Block128 op{};
    op[0] = 0xcd;
    registry.publish_subscriber(
        epc::PublishedKeys{Imsi{imsi}, k, crypto::derive_opc(k, op)});
    // Keys published after bring-up: sync them to every live AP (a real
    // AP re-pulls the registry periodically).
    for (auto& ap : aps) ap->import_published_subscribers(registry);
    return UeDevice{
        ue::SimProfile{Imsi{imsi}, k, crypto::derive_opc(k, op), true, "o"},
        std::make_unique<ue::StaticMobility>(pos)};
  }

  void bring_up_all() {
    for (auto& ap : aps) ap->bring_up(registry);
    run_for(2.0);
    for (auto& ap : aps) ap->import_published_subscribers(registry);
  }

  void run_for(double s) { sim.run_until(sim.now() + Duration::seconds(s)); }
};

TEST(Handover, CooperativePeersHandOffQuickly) {
  Town town;
  auto& src = town.add_ap(1, 0.0);
  auto& dst = town.add_ap(2, 5'000.0);
  town.bring_up_all();

  auto ue = town.make_ue(700001, Position{2'500.0, 0.0});
  bool attached = false;
  src.attach(ue, mac::UeTrafficConfig{.full_buffer = true},
             [&](AttachOutcome o) { attached = o.success; });
  town.run_for(2.0);
  ASSERT_TRUE(attached);

  HandoverOutcome out;
  town.managers[0]->initiate(ue, ApId{2},
                             mac::UeTrafficConfig{.full_buffer = true},
                             [&](HandoverOutcome o) { out = o; });
  town.run_for(2.0);

  ASSERT_TRUE(out.success) << out.failure_reason;
  // Much faster than the ~112 ms full re-attach.
  EXPECT_LT(out.interruption.to_millis(), 50.0);
  EXPECT_LT(out.total.to_millis(), 120.0);
  EXPECT_NE(out.new_ue_ip, 0u);

  // Core state moved: source released, target registered (no fresh AKA).
  EXPECT_FALSE(src.core().mme().is_registered(Imsi{700001}));
  EXPECT_TRUE(dst.core().mme().is_registered(Imsi{700001}));
  EXPECT_EQ(dst.core().mme().stats().handovers_in, 1u);
  EXPECT_EQ(src.core().mme().stats().handovers_out, 1u);
  EXPECT_EQ(src.core().gateway().session_count(), 0u);
  EXPECT_EQ(dst.core().gateway().session_count(), 1u);

  // Radio side: scenario completes by adopting at the target.
  dst.adopt_ue(ue, mac::UeTrafficConfig{.full_buffer = true});
  dst.cell_mac().run(Duration::seconds(0.5));
  double delivered = 0.0;
  for (UeId id : dst.cell_mac().ue_ids()) {
    delivered += dst.cell_mac().stats(id).delivered_bits;
  }
  EXPECT_GT(delivered, 0.0);
}

TEST(Handover, AddressChangesAcrossHandover) {
  // dLTE never hides the address change: the target assigns from its own
  // pool and the ack carries the new address.
  Town town;
  auto& src = town.add_ap(1, 0.0);
  town.add_ap(2, 5'000.0);
  town.bring_up_all();
  auto ue = town.make_ue(700002, Position{2'500.0, 0.0});
  std::uint32_t first_ip = 0;
  src.attach(ue, mac::UeTrafficConfig{}, [&](AttachOutcome o) {
    first_ip = o.ue_ip;
  });
  town.run_for(2.0);
  HandoverOutcome out;
  town.managers[0]->initiate(ue, ApId{2}, mac::UeTrafficConfig{},
                             [&](HandoverOutcome o) { out = o; });
  town.run_for(1.0);
  ASSERT_TRUE(out.success);
  EXPECT_NE(out.new_ue_ip, first_ip);
}

TEST(Handover, NonCooperativeTargetRefuses) {
  Town town;
  auto& src = town.add_ap(1, 0.0, lte::DlteMode::kCooperative);
  town.add_ap(2, 5'000.0, lte::DlteMode::kFairShare);  // Not opted in.
  town.bring_up_all();
  auto ue = town.make_ue(700003, Position{2'500.0, 0.0});
  bool attached = false;
  src.attach(ue, mac::UeTrafficConfig{}, [&](AttachOutcome o) {
    attached = o.success;
  });
  town.run_for(2.0);
  ASSERT_TRUE(attached);

  HandoverOutcome out;
  out.success = true;
  town.managers[0]->initiate(ue, ApId{2}, mac::UeTrafficConfig{},
                             [&](HandoverOutcome o) { out = o; });
  town.run_for(1.0);
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.failure_reason, "handover admission timed out");
  EXPECT_EQ(town.managers[1]->handovers_refused(), 1);
  // UE still served by the source (fallback is the caller's business).
  EXPECT_TRUE(src.core().mme().is_registered(Imsi{700003}));
}

TEST(Handover, NonCooperativeSourceRefusesToInitiate) {
  Town town;
  auto& src = town.add_ap(1, 0.0, lte::DlteMode::kFairShare);
  town.add_ap(2, 5'000.0);
  town.bring_up_all();
  auto ue = town.make_ue(700004, Position{2'500.0, 0.0});
  src.attach(ue, mac::UeTrafficConfig{}, nullptr);
  town.run_for(2.0);
  HandoverOutcome out;
  out.success = true;
  town.managers[0]->initiate(ue, ApId{2}, mac::UeTrafficConfig{},
                             [&](HandoverOutcome o) { out = o; });
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.failure_reason, "source AP not in cooperative mode");
}

TEST(Handover, UnregisteredUeRejected) {
  Town town;
  town.add_ap(1, 0.0);
  town.add_ap(2, 5'000.0);
  town.bring_up_all();
  auto ue = town.make_ue(700005, Position{2'500.0, 0.0});
  HandoverOutcome out;
  out.success = true;
  town.managers[0]->initiate(ue, ApId{2}, mac::UeTrafficConfig{},
                             [&](HandoverOutcome o) { out = o; });
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.failure_reason, "UE not registered at source");
}

TEST(Handover, UnknownPeerRejected) {
  Town town;
  auto& src = town.add_ap(1, 0.0);
  town.bring_up_all();
  auto ue = town.make_ue(700006, Position{1'000.0, 0.0});
  src.attach(ue, mac::UeTrafficConfig{}, nullptr);
  town.run_for(2.0);
  HandoverOutcome out;
  out.success = true;
  town.managers[0]->initiate(ue, ApId{42}, mac::UeTrafficConfig{},
                             [&](HandoverOutcome o) { out = o; });
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.failure_reason, "target AP is not a known peer");
}

// End-to-end causal tracing: one attach plus one handover must come out
// as two span trees whose phases are parented correctly across
// components (eNodeB -> MME, source AP -> target AP).
TEST(Handover, SpansFormCausalTreeAcrossAttachAndHandover) {
  Town town;
  obs::SpanTracer tracer{[&town] { return town.sim.now(); }};
  town.net.set_tracer(&tracer);
  town.registry.set_tracer(&tracer);
  auto& src = town.add_ap(1, 0.0);
  town.add_ap(2, 5'000.0);
  for (std::size_t i = 0; i < town.aps.size(); ++i) {
    const std::string prefix = "ap" + std::to_string(i + 1) + "/";
    town.aps[i]->set_span_tracer(&tracer, prefix);
    town.managers[i]->set_tracer(&tracer, prefix);
  }
  town.bring_up_all();

  auto ue = town.make_ue(700007, Position{2'500.0, 0.0});
  bool attached = false;
  src.attach(ue, mac::UeTrafficConfig{},
             [&](AttachOutcome o) { attached = o.success; });
  town.run_for(2.0);
  ASSERT_TRUE(attached);

  HandoverOutcome out;
  town.managers[0]->initiate(ue, ApId{2}, mac::UeTrafficConfig{},
                             [&](HandoverOutcome o) { out = o; });
  town.run_for(2.0);
  ASSERT_TRUE(out.success) << out.failure_reason;

  auto find_span = [&](const std::string& name) -> const obs::Span* {
    for (const obs::Span& s : tracer.spans()) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const obs::Span* attach = find_span("attach");
  ASSERT_NE(attach, nullptr);
  EXPECT_EQ(attach->category, "ap1/ran");
  EXPECT_EQ(attach->parent, obs::kNoSpan);
  EXPECT_FALSE(attach->open);
  EXPECT_GT(attach->duration().to_millis(), 0.0);

  // The NAS phases the eNodeB never sees directly still parent under
  // the eNodeB's attach span, via the stash handoff to the MME.
  for (const char* phase : {"aka", "security_mode", "bearer_setup"}) {
    const obs::Span* s = find_span(phase);
    ASSERT_NE(s, nullptr) << phase;
    EXPECT_EQ(s->parent, attach->id) << phase;
    EXPECT_EQ(s->category, "ap1/epc") << phase;
    EXPECT_FALSE(s->open) << phase;
  }

  const obs::Span* handover = find_span("handover");
  ASSERT_NE(handover, nullptr);
  EXPECT_EQ(handover->category, "ap1/handover");
  EXPECT_FALSE(handover->open);
  // Admission runs on the *target* AP but is a child of the source's
  // handover span; the RRC reconfiguration stays on the source.
  const obs::Span* admit = find_span("handover_admit");
  ASSERT_NE(admit, nullptr);
  EXPECT_EQ(admit->parent, handover->id);
  EXPECT_EQ(admit->category, "ap2/handover");
  const obs::Span* rrc = find_span("rrc_reconfiguration");
  ASSERT_NE(rrc, nullptr);
  EXPECT_EQ(rrc->parent, handover->id);

  // Transport hops joined the tree: at least one net_delivery span is
  // parented under some procedure span.
  bool parented_delivery = false;
  for (const obs::Span& s : tracer.spans()) {
    if (s.name == "net_delivery" && s.parent != obs::kNoSpan) {
      parented_delivery = true;
      break;
    }
  }
  EXPECT_TRUE(parented_delivery);
  // Nothing leaked: every handoff stash was claimed, every procedure
  // span closed (X2 rounds may legitimately still be open mid-cycle).
  for (const obs::Span& s : tracer.spans()) {
    if (s.name == "attach" || s.name == "handover") {
      EXPECT_FALSE(s.open);
    }
  }
}

}  // namespace
}  // namespace dlte::core
