#include "sim/random.h"

#include <gtest/gtest.h>

namespace dlte::sim {
namespace {

TEST(RngStream, DeterministicForSameSeed) {
  RngStream a{1234}, b{1234};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngStream, DerivedStreamsAreIndependentOfEachOther) {
  auto a = RngStream::derive(42, "ue-0/mobility");
  auto b = RngStream::derive(42, "ue-1/mobility");
  // Not a statistical test: just ensure they don't produce the identical
  // stream (which would break experiment independence).
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngStream, DeriveIsStableAcrossCalls) {
  auto a = RngStream::derive(7, "link/shadowing");
  auto b = RngStream::derive(7, "link/shadowing");
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngStream, IndexedDeriveIsStableAndMatchesChildSeed) {
  auto a = RngStream::derive(42, "town.attach", 7);
  auto b = RngStream::derive(42, "town.attach", 7);
  RngStream c{RngStream::child_seed(42, "town.attach", 7)};
  const double v = a.uniform();
  EXPECT_DOUBLE_EQ(v, b.uniform());
  EXPECT_DOUBLE_EQ(v, c.uniform());
}

TEST(RngStream, IndexedDerivesAreIndependentAcrossIndices) {
  auto a = RngStream::derive(42, "town.attach", 0);
  auto b = RngStream::derive(42, "town.attach", 1);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngStream, ChildSeedVariesWithEveryInput) {
  const auto base = RngStream::child_seed(1, "shard", 0);
  EXPECT_NE(base, RngStream::child_seed(2, "shard", 0));
  EXPECT_NE(base, RngStream::child_seed(1, "other", 0));
  EXPECT_NE(base, RngStream::child_seed(1, "shard", 1));
  // Same inputs always reproduce.
  EXPECT_EQ(base, RngStream::child_seed(1, "shard", 0));
}

TEST(RngStream, UniformRespectsBounds) {
  RngStream r{99};
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngStream, UniformIntRespectsBounds) {
  RngStream r{99};
  for (int i = 0; i < 1000; ++i) {
    const auto x = r.uniform_int(5, 10);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 10u);
  }
}

TEST(RngStream, ExponentialMeanRoughlyCorrect) {
  RngStream r{7};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngStream, NormalMomentsRoughlyCorrect) {
  RngStream r{8};
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(sumsq / n - mean * mean, 4.0, 0.3);
}

TEST(RngStream, BernoulliProbability) {
  RngStream r{13};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

}  // namespace
}  // namespace dlte::sim
