// Parity suite for the calendar queue (DESIGN.md §13): for any push/pop
// schedule, CalendarQueue must pop the byte-identical (when, seq)
// sequence a binary heap would — including the equal-timestamp FIFO
// tie-break the whole engine's determinism contract rests on.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/simulator.h"

namespace dlte::sim {
namespace {

QueuedEvent make_event(std::int64_t when_ns, std::uint64_t seq) {
  return QueuedEvent{TimePoint::from_ns(when_ns), seq, [] {}};
}

// Drain both queues and require identical (when, seq) at every step.
void expect_identical_drain(CalendarQueue& calendar, BinaryHeapQueue& heap) {
  ASSERT_EQ(calendar.size(), heap.size());
  while (!heap.empty()) {
    const QueuedEvent expected = heap.pop();
    ASSERT_FALSE(calendar.empty());
    const QueuedEvent* peeked = calendar.peek();
    ASSERT_NE(peeked, nullptr);
    EXPECT_EQ(peeked->when.ns(), expected.when.ns());
    EXPECT_EQ(peeked->seq, expected.seq);
    const QueuedEvent got = calendar.pop();
    ASSERT_EQ(got.when.ns(), expected.when.ns());
    ASSERT_EQ(got.seq, expected.seq);
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(CalendarQueueTest, EmptyQueueBehaviour) {
  CalendarQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.peek(), nullptr);
}

TEST(CalendarQueueTest, SingleEventRoundTrip) {
  CalendarQueue q;
  q.push(make_event(1'000'000, 7));
  ASSERT_EQ(q.size(), 1u);
  const QueuedEvent* p = q.peek();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->when.ns(), 1'000'000);
  const QueuedEvent e = q.pop();
  EXPECT_EQ(e.seq, 7u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, EqualTimestampsPopInSchedulingOrder) {
  CalendarQueue calendar;
  BinaryHeapQueue heap;
  // Many events on one timestamp plus neighbours, pushed out of seq
  // order: the FIFO tie-break must still hold.
  const std::vector<std::uint64_t> seqs{5, 1, 9, 3, 7, 0, 8, 2, 6, 4};
  for (const std::uint64_t seq : seqs) {
    calendar.push(make_event(500'000, seq));
    heap.push(make_event(500'000, seq));
  }
  calendar.push(make_event(499'999, 100));
  heap.push(make_event(499'999, 100));
  calendar.push(make_event(500'001, 101));
  heap.push(make_event(500'001, 101));
  expect_identical_drain(calendar, heap);
}

TEST(CalendarQueueTest, RandomizedParityWithBinaryHeap) {
  std::mt19937_64 rng{0xc0ffee};
  for (int round = 0; round < 20; ++round) {
    CalendarQueue calendar;
    BinaryHeapQueue heap;
    std::uint64_t seq = 0;
    // Mixed regimes per round: dense sub-microsecond bursts, sparse
    // multi-second gaps, and heavy equal-timestamp pileups.
    const std::int64_t spread =
        (round % 3 == 0) ? 1'000 : (round % 3 == 1) ? 1'000'000'000
                                                    : 50'000;
    std::int64_t now = 0;
    const int pushes = 500 + static_cast<int>(rng() % 1500);
    for (int i = 0; i < pushes; ++i) {
      const std::int64_t when =
          now + static_cast<std::int64_t>(rng() % spread);
      calendar.push(make_event(when, seq));
      heap.push(make_event(when, seq));
      ++seq;
      // Interleave pops so the scan cursor moves like a real run.
      if (rng() % 4 == 0 && !heap.empty()) {
        const QueuedEvent expected = heap.pop();
        const QueuedEvent got = calendar.pop();
        ASSERT_EQ(got.when.ns(), expected.when.ns());
        ASSERT_EQ(got.seq, expected.seq);
        now = expected.when.ns();  // Hold model: time only advances.
      }
      if (rng() % 16 == 0) {
        // Equal-timestamp pileup on the current head.
        const std::int64_t when_tie = now + 10;
        for (int t = 0; t < 8; ++t) {
          calendar.push(make_event(when_tie, seq));
          heap.push(make_event(when_tie, seq));
          ++seq;
        }
      }
    }
    expect_identical_drain(calendar, heap);
  }
}

TEST(CalendarQueueTest, GrowAndShrinkKeepOrder) {
  CalendarQueue calendar;
  BinaryHeapQueue heap;
  // Push enough to force growth resizes, then drain to force shrink.
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const std::int64_t when = static_cast<std::int64_t>((i * 7919) % 4096);
    calendar.push(make_event(when, i));
    heap.push(make_event(when, i));
  }
  EXPECT_GT(calendar.resizes(), 0u);
  expect_identical_drain(calendar, heap);
}

TEST(CalendarQueueTest, SparseTimestampsUseDirectSearchCorrectly) {
  CalendarQueue calendar;
  BinaryHeapQueue heap;
  // Timestamps many laps apart: the lap scan gives up and the direct
  // min search must still find the true minimum.
  std::uint64_t seq = 0;
  for (const std::int64_t when :
       {9'000'000'000'000LL, 3'000'000'000LL, 7'000'000'000'000LL, 0LL,
        5'000'000'000'000'000LL, 1'000'000LL}) {
    calendar.push(make_event(when, seq));
    heap.push(make_event(when, seq));
    ++seq;
  }
  expect_identical_drain(calendar, heap);
}

TEST(CalendarQueueTest, PushEarlierThanCursorRewinds) {
  CalendarQueue q;
  q.push(make_event(1'000'000'000, 0));
  EXPECT_EQ(q.pop().seq, 0u);
  // The cursor now sits at ~1s; a later push far before it must still
  // surface first.
  q.push(make_event(2'000'000'000, 1));
  q.push(make_event(1'500, 2));
  EXPECT_EQ(q.pop().seq, 2u);
  EXPECT_EQ(q.pop().seq, 1u);
}

// The engine-level guarantee built on the queue: schedule_at into the
// past is clamped to "immediately after the current event" and counted,
// not silently reordered.
TEST(SimulatorQueueTest, SchedulePastIsClampedAndCounted) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_ns(1'000'000), [&] {
    order.push_back(1);
    // Target in the past: must run after this event, in schedule order.
    sim.schedule_at(TimePoint::from_ns(500), [&] { order.push_back(2); });
    sim.schedule_at(TimePoint::from_ns(400), [&] { order.push_back(3); });
  });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.schedule_past_events(), 2u);
  EXPECT_EQ(sim.now().ns(), 1'000'000);
}

TEST(CalendarQueueTest, LabelsRideThePayloadSlab) {
  // The attribution label travels in the action slab beside the payload,
  // never in the 24-byte sort key — pops must return each event's own
  // label regardless of insertion order.
  CalendarQueue q;
  q.push(QueuedEvent{TimePoint::from_ns(2'000), 0, [] {}, 7});
  q.push(QueuedEvent{TimePoint::from_ns(1'000), 1, [] {}, 9});
  q.push(QueuedEvent{TimePoint::from_ns(3'000), 2, [] {}});  // Defaults to 0.
  EXPECT_EQ(q.pop().label, 9u);
  EXPECT_EQ(q.pop().label, 7u);
  EXPECT_EQ(q.pop().label, 0u);
}

TEST(CalendarQueueTest, LabelsSurviveResize) {
  // Push enough spread to force calendar recalibration; every event must
  // keep its label through slab growth and re-bucketing.
  CalendarQueue q;
  for (std::uint64_t i = 0; i < 600; ++i) {
    q.push(QueuedEvent{TimePoint::from_ns(static_cast<std::int64_t>(i) * 1'000),
                       i, [] {}, static_cast<std::uint32_t>(i % 5)});
  }
  for (std::uint64_t i = 0; i < 600; ++i) {
    const QueuedEvent e = q.pop();
    EXPECT_EQ(e.label, static_cast<std::uint32_t>(e.seq % 5));
  }
}

TEST(SimulatorQueueTest, EventCountAndDepthSurvivedSwap) {
  Simulator sim;
  for (int i = 0; i < 100; ++i) {
    sim.schedule(Duration::micros(i), [] {});
  }
  EXPECT_EQ(sim.pending_events(), 100u);
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 100u);
  EXPECT_EQ(sim.max_queue_depth(), 100u);
}

}  // namespace
}  // namespace dlte::sim
