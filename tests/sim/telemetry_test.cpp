#include "sim/telemetry.h"

#include <gtest/gtest.h>

#include <string>

namespace dlte::sim {
namespace {

TimePoint at(double t_s) { return TimePoint{} + Duration::seconds(t_s); }

TEST(TelemetryDriver, TicksAtSamplerInterval) {
  Simulator sim;
  obs::MetricsRegistry reg;
  reg.counter("events").inc(3);
  obs::SamplerConfig config;
  config.interval = Duration::seconds(1.0);
  obs::TimeSeriesSampler sampler{reg, config};
  TelemetryDriver driver{sim, &sampler, nullptr};
  driver.start();  // Default cadence: the sampler's interval.
  sim.run_until(at(5.0));
  EXPECT_EQ(driver.ticks(), 5u);
  EXPECT_EQ(sampler.samples(), 5u);
  const obs::TimeSeries* s = sampler.find("events");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->points().front().t_s, 1.0);  // First tick at t=1.
}

TEST(TelemetryDriver, EvaluatesMonitorBeforeSampling) {
  Simulator sim;
  obs::MetricsRegistry reg;
  obs::Gauge& up = reg.gauge("ap1.up");
  up.set(0.0);
  obs::SloMonitor monitor{reg};
  monitor.set_metrics(&reg);  // health.ap1 lands in the same registry.
  obs::SloRule rule;
  rule.name = "ap1_down";
  rule.scope = "ap1";
  rule.metric = "ap1.up";
  rule.predicate = obs::SloPredicate::kGaugeAtLeast;
  rule.threshold = 1.0;
  monitor.add_rule(rule);
  obs::SamplerConfig config;
  config.interval = Duration::seconds(1.0);
  obs::TimeSeriesSampler sampler{reg, config};
  TelemetryDriver driver{sim, &sampler, &monitor};
  driver.start();
  sim.run_until(at(1.0));

  // Evaluate-then-sample: the very tick that fired the alert already
  // samples the refreshed health gauge as unhealthy.
  EXPECT_TRUE(monitor.alert_active("ap1_down"));
  const obs::TimeSeries* health = sampler.find("health.ap1");
  ASSERT_NE(health, nullptr);
  ASSERT_EQ(health->points().size(), 1u);
  EXPECT_DOUBLE_EQ(health->points()[0].value, 0.0);
}

TEST(TelemetryDriver, BridgesAlertTransitionsIntoTraceLog) {
  Simulator sim;
  obs::MetricsRegistry reg;
  obs::Gauge& up = reg.gauge("ap1.up");
  up.set(1.0);
  obs::SloMonitor monitor{reg};
  obs::SloRule rule;
  rule.name = "ap1_down";
  rule.scope = "ap1";
  rule.metric = "ap1.up";
  rule.predicate = obs::SloPredicate::kGaugeAtLeast;
  rule.threshold = 1.0;
  monitor.add_rule(rule);
  TraceLog trace{sim};
  TelemetryDriver driver{sim, nullptr, &monitor};  // Alert-only mode.
  driver.set_trace(&trace);
  driver.start(Duration::seconds(1.0));

  sim.schedule_at(at(2.5), [&up] { up.set(0.0); });
  sim.schedule_at(at(5.5), [&up] { up.set(1.0); });
  sim.run_until(at(8.0));

  ASSERT_EQ(trace.count(TraceCategory::kHealth), 2u);
  const auto health = trace.by_category(TraceCategory::kHealth);
  EXPECT_EQ(health[0]->component, "ap1");
  EXPECT_NE(health[0]->message.find("FIRE ap1_down"), std::string::npos);
  EXPECT_NE(health[1]->message.find("RESOLVE ap1_down"), std::string::npos);
  // Each transition bridged exactly once, on the tick that saw it.
  EXPECT_DOUBLE_EQ((health[0]->when - TimePoint{}).to_seconds(), 3.0);
  EXPECT_DOUBLE_EQ((health[1]->when - TimePoint{}).to_seconds(), 6.0);
}

TEST(TelemetryDriver, StopHaltsTicksAndStartRestarts) {
  Simulator sim;
  obs::MetricsRegistry reg;
  obs::TimeSeriesSampler sampler{reg};
  TelemetryDriver driver{sim, &sampler, nullptr};
  driver.start(Duration::seconds(1.0));
  sim.run_until(at(3.0));
  EXPECT_EQ(driver.ticks(), 3u);
  driver.stop();
  sim.run_until(at(6.0));
  EXPECT_EQ(driver.ticks(), 3u);
  // Restart at a coarser cadence.
  driver.start(Duration::seconds(2.0));
  sim.run_until(at(10.0));
  EXPECT_EQ(driver.ticks(), 5u);
}

TEST(TelemetryDriver, DestructionCancelsPendingTicks) {
  Simulator sim;
  obs::MetricsRegistry reg;
  {
    obs::TimeSeriesSampler sampler{reg};
    TelemetryDriver driver{sim, &sampler, nullptr};
    driver.start(Duration::seconds(1.0));
    sim.run_until(at(2.0));
    EXPECT_EQ(driver.ticks(), 2u);
  }
  // The driver (and sampler) are gone; their periodic must not fire.
  sim.run_until(at(5.0));
}

}  // namespace
}  // namespace dlte::sim
