#include "sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dlte::sim {
namespace {

TEST(TraceLog, RecordsWithSimulatedTimestamps) {
  Simulator sim;
  TraceLog log{sim};
  sim.schedule(Duration::seconds(1.5), [&] {
    log.record(TraceCategory::kAttach, "ap-1", "attach completed");
  });
  sim.run_all();
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_DOUBLE_EQ(log.events().front().when.to_seconds(), 1.5);
  EXPECT_EQ(log.events().front().component, "ap-1");
}

TEST(TraceLog, CategoryFilterAndCount) {
  Simulator sim;
  TraceLog log{sim};
  log.record(TraceCategory::kRegistry, "a", "grant");
  log.record(TraceCategory::kAttach, "a", "ue 1");
  log.record(TraceCategory::kAttach, "b", "ue 2");
  EXPECT_EQ(log.count(TraceCategory::kAttach), 2u);
  EXPECT_EQ(log.count(TraceCategory::kHandover), 0u);
  const auto attaches = log.by_category(TraceCategory::kAttach);
  ASSERT_EQ(attaches.size(), 2u);
  EXPECT_EQ(attaches[1]->component, "b");
}

TEST(TraceLog, RingDropsOldest) {
  Simulator sim;
  TraceLog log{sim, 3};
  for (int i = 0; i < 5; ++i) {
    log.record(TraceCategory::kData, "x", std::to_string(i));
  }
  EXPECT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.events().front().message, "2");
}

TEST(TraceLog, ClearResetsEventsAndDropCounter) {
  Simulator sim;
  TraceLog log{sim, 2};
  for (int i = 0; i < 5; ++i) {
    log.record(TraceCategory::kFault, "x", std::to_string(i));
  }
  ASSERT_EQ(log.dropped(), 3u);
  log.clear();
  EXPECT_EQ(log.events().size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  // A fresh overflow counts from zero again.
  for (int i = 0; i < 3; ++i) {
    log.record(TraceCategory::kFault, "x", std::to_string(i));
  }
  EXPECT_EQ(log.dropped(), 1u);
}

TEST(TraceLog, LifetimeTotalsSurviveClear) {
  Simulator sim;
  TraceLog log{sim, 2};
  for (int i = 0; i < 5; ++i) {
    log.record(TraceCategory::kFault, "x", std::to_string(i));
  }
  EXPECT_EQ(log.total_recorded(), 5u);
  EXPECT_EQ(log.total_dropped(), 3u);
  log.clear();
  // The window counter resets but the lifetime totals keep accumulating,
  // so drop accounting stays consistent across clears.
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.total_recorded(), 5u);
  EXPECT_EQ(log.total_dropped(), 3u);
  for (int i = 0; i < 3; ++i) {
    log.record(TraceCategory::kFault, "x", std::to_string(i));
  }
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_EQ(log.total_recorded(), 8u);
  EXPECT_EQ(log.total_dropped(), 4u);
}

TEST(TraceLog, MetricsCountRecordsAndDrops) {
  Simulator sim;
  obs::MetricsRegistry reg;
  TraceLog log{sim, 2};
  log.set_metrics(&reg, "t.");
  for (int i = 0; i < 4; ++i) {
    log.record(TraceCategory::kAttach, "x", std::to_string(i));
  }
  log.clear();
  log.record(TraceCategory::kFault, "x", "after clear");
  EXPECT_EQ(reg.counter("t.trace.recorded").value(), 5u);
  EXPECT_EQ(reg.counter("t.trace.dropped").value(), 2u);
  EXPECT_EQ(reg.counter("t.trace.recorded.attach").value(), 4u);
  EXPECT_EQ(reg.counter("t.trace.recorded.fault").value(), 1u);
}

TEST(TraceLog, PrintsReadableLines) {
  Simulator sim;
  TraceLog log{sim};
  log.record(TraceCategory::kCoordination, "dlte-ap-1", "share 0.5");
  std::ostringstream os;
  log.print(os);
  EXPECT_NE(os.str().find("coord"), std::string::npos);
  EXPECT_NE(os.str().find("dlte-ap-1: share 0.5"), std::string::npos);
}

TEST(TraceLog, BridgesRecordsIntoActiveSpan) {
  Simulator sim;
  obs::SpanTracer tracer{[&sim] { return sim.now(); }};
  TraceLog log{sim};
  log.set_tracer(&tracer);
  // No active span: the line lands only in the ring, nothing else.
  log.record(TraceCategory::kRegistry, "ap-1", "grant acquired");
  const obs::SpanId attach = tracer.begin("attach", "ran", obs::kNoSpan);
  {
    obs::ScopedActivation act{&tracer, attach};
    log.record(TraceCategory::kAttach, "ap-1", "security mode complete");
  }
  log.record(TraceCategory::kAttach, "ap-1", "after deactivation");
  tracer.end(attach);
  EXPECT_EQ(log.events().size(), 3u);
  const obs::Span* s = tracer.find(attach);
  ASSERT_NE(s, nullptr);
  // Only the line recorded while the span was active bridged over,
  // keyed by category with "component: message" as the value.
  ASSERT_EQ(s->annotations.size(), 1u);
  EXPECT_EQ(s->annotations[0].key, "attach");
  EXPECT_EQ(s->annotations[0].value, "ap-1: security mode complete");
}

TEST(TraceLog, BridgeDetachesCleanly) {
  Simulator sim;
  obs::SpanTracer tracer;
  TraceLog log{sim};
  log.set_tracer(&tracer);
  log.set_tracer(nullptr);
  const obs::SpanId id = tracer.begin("attach", "ran", obs::kNoSpan);
  obs::ScopedActivation act{&tracer, id};
  log.record(TraceCategory::kAttach, "ap-1", "not bridged");
  EXPECT_TRUE(tracer.find(id)->annotations.empty());
}

TEST(TraceLog, CategoryNamesComplete) {
  EXPECT_STREQ(trace_category_name(TraceCategory::kRegistry), "registry");
  EXPECT_STREQ(trace_category_name(TraceCategory::kMobility), "mobility");
  EXPECT_STREQ(trace_category_name(TraceCategory::kFault), "fault");
}

}  // namespace
}  // namespace dlte::sim
