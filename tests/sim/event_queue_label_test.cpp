// Attribution labels riding the calendar queue (DESIGN.md §13/§15).
// Labels live in a slot-parallel slab beside the action slab and never
// participate in ordering; these tests pin the edge cases the audit
// plane depends on: slot recycling must not leak a stale label into a
// fresh event, recalibration rebuilds must carry labels across, the
// pop order must stay byte-identical to the binary-heap reference with
// labels mixed in, and Simulator::label must intern idempotently and
// register name hashes with an attached auditor.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "obs/audit.h"
#include "obs/prof.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace dlte::sim {
namespace {

QueuedEvent make_event(std::int64_t when_ns, std::uint64_t seq,
                       std::uint32_t label) {
  return QueuedEvent{TimePoint::from_ns(when_ns), seq, [] {}, label};
}

TEST(CalendarQueueLabels, SlotRecyclingNeverLeaksALabel) {
  // Drain-and-refill cycles recycle action slots through the free list;
  // a fresh unlabeled event landing in a slot that last held a labeled
  // one must pop with label 0, not the leftover.
  CalendarQueue queue;
  std::uint64_t seq = 0;
  for (int round = 0; round < 8; ++round) {
    const std::uint32_t label = (round % 2 == 0) ? 7u : 0u;
    for (int i = 0; i < 16; ++i) {
      queue.push(make_event(round * 1000 + i, seq++, label));
    }
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(queue.pop().label, label) << "round " << round;
    }
  }
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueueLabels, LabelsSurviveRecalibration) {
  // Grow far enough to force at least one ring rebuild, then shrink
  // back through the downsize path: every event keeps its own label
  // (label == a function of seq makes any slab mix-up visible).
  CalendarQueue queue;
  const std::size_t n = 4096;
  for (std::size_t i = 0; i < n; ++i) {
    queue.push(make_event(static_cast<std::int64_t>(i * 17), i,
                          static_cast<std::uint32_t>(i % 5)));
  }
  EXPECT_GT(queue.resizes(), 0u);
  for (std::size_t i = 0; i < n; ++i) {
    const QueuedEvent event = queue.pop();
    EXPECT_EQ(event.seq, i);
    EXPECT_EQ(event.label, static_cast<std::uint32_t>(i % 5));
  }
}

TEST(CalendarQueueLabels, MixedLabelsKeepHeapParity) {
  // The byte-identical contract with labels in play: both queues pop
  // the same (when, seq, label) sequence for a same-timestamp-heavy
  // schedule (labels must never leak into the ordering).
  CalendarQueue calendar;
  BinaryHeapQueue heap;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t seq = 0; seq < 512; ++seq) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::int64_t when_ns =
        static_cast<std::int64_t>((state >> 33) % 64) * 1000;
    const auto label = static_cast<std::uint32_t>(state % 3);
    calendar.push(make_event(when_ns, seq, label));
    heap.push(make_event(when_ns, seq, label));
  }
  while (!heap.empty()) {
    ASSERT_FALSE(calendar.empty());
    const QueuedEvent a = calendar.pop();
    const QueuedEvent b = heap.pop();
    EXPECT_EQ(a.when.ns(), b.when.ns());
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.label, b.label);
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(SimulatorLabels, InternIsIdempotentAndUnlabeledWithoutProfiler) {
  Simulator sim;
  // No profiler: every name maps to the unlabeled id, so components can
  // intern at construction regardless of profiling state.
  EXPECT_EQ(sim.label("ran.enodeb"), obs::kUnlabeledEvent);
  obs::EventProfiler profiler;
  sim.set_profiler(&profiler);
  const std::uint32_t id = sim.label("ran.enodeb");
  EXPECT_NE(id, obs::kUnlabeledEvent);
  EXPECT_EQ(sim.label("ran.enodeb"), id);  // Re-intern: same id.
  EXPECT_EQ(profiler.label_count(), 2u);   // unlabeled + ran.enodeb.
}

TEST(SimulatorLabels, InternRegistersNameHashWithTheAuditor) {
  Simulator sim;
  obs::EventProfiler profiler;
  obs::DigestTimeline auditor{Duration::millis(250).ns()};
  sim.set_profiler(&profiler);
  sim.set_auditor(&auditor);
  const std::uint32_t id = sim.label("core.s1");
  EXPECT_LT(id, auditor.label_count());
  EXPECT_EQ(auditor.label_name(id), "core.s1");
  sim.schedule(Duration::millis(1), [] {}, id);
  sim.run_all();
  ASSERT_EQ(auditor.windows().size(), 1u);
  EXPECT_EQ(auditor.windows()[0].events, 1u);
  ASSERT_GT(auditor.windows()[0].labels.size(), id);
  EXPECT_EQ(auditor.windows()[0].labels[id].count, 1u);
}

TEST(SimulatorLabels, PreAttachmentIdsFoldAsUnlabeled) {
  // A label interned before the auditor attached has no name hash in
  // the timeline; executing under it must clamp to the unlabeled
  // bucket instead of reading out of bounds.
  Simulator sim;
  obs::EventProfiler profiler;
  sim.set_profiler(&profiler);
  const std::uint32_t early = sim.label("net.hop");
  obs::DigestTimeline auditor{Duration::millis(250).ns()};
  sim.set_auditor(&auditor);  // After interning: id unknown to auditor.
  sim.schedule(Duration::millis(1), [] {}, early);
  sim.run_all();
  ASSERT_EQ(auditor.windows().size(), 1u);
  EXPECT_EQ(auditor.windows()[0].events, 1u);
  EXPECT_EQ(auditor.windows()[0].labels[obs::kUnlabeledEvent].count, 1u);
}

}  // namespace
}  // namespace dlte::sim
