#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

namespace dlte::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(Duration::millis(20), [&] { order.push_back(2); });
  s.schedule(Duration::millis(10), [&] { order.push_back(1); });
  s.schedule(Duration::millis(30), [&] { order.push_back(3); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule(Duration::millis(1), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator s;
  TimePoint seen{};
  s.schedule(Duration::seconds(1.5), [&] { seen = s.now(); });
  s.run_all();
  EXPECT_DOUBLE_EQ(seen.to_seconds(), 1.5);
}

TEST(Simulator, EventsScheduleFurtherEvents) {
  Simulator s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) s.schedule(Duration::millis(1), chain);
  };
  s.schedule(Duration::millis(1), chain);
  s.run_all();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(s.now().to_millis(), 10.0);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int ran = 0;
  s.schedule(Duration::millis(5), [&] { ++ran; });
  s.schedule(Duration::millis(15), [&] { ++ran; });
  s.run_until(TimePoint::from_ns(0) + Duration::millis(10));
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(s.now().to_millis(), 10.0);
  EXPECT_EQ(s.pending_events(), 1u);
  // Continue to drain the rest.
  s.run_all();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, DeadlineEventStillRuns) {
  Simulator s;
  int ran = 0;
  s.schedule(Duration::millis(10), [&] { ++ran; });
  s.run_until(TimePoint::from_ns(0) + Duration::millis(10));
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, NegativeDelayClampedToNow) {
  Simulator s;
  bool ran = false;
  s.schedule(Duration::millis(5), [&] {
    s.schedule(Duration::millis(-10), [&] { ran = true; });
  });
  s.run_all();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(s.now().to_millis(), 5.0);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator s;
  int ran = 0;
  s.schedule(Duration::millis(1), [&] {
    ++ran;
    s.stop();
  });
  s.schedule(Duration::millis(2), [&] { ++ran; });
  s.run_all();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, PeriodicProcessFiresRepeatedly) {
  Simulator s;
  int ticks = 0;
  s.every(Duration::millis(10), [&] { ++ticks; });
  s.run_until(TimePoint::from_ns(0) + Duration::millis(95));
  EXPECT_EQ(ticks, 9);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(TimePoint::from_ns(0) + Duration::seconds(3.0));
  EXPECT_DOUBLE_EQ(s.now().to_seconds(), 3.0);
}

TEST(Simulator, PastScheduleAtClampsAndCounts) {
  Simulator s;
  obs::MetricsRegistry reg;
  s.set_metrics(&reg);
  bool ran = false;
  s.schedule(Duration::millis(5), [&] {
    // Target 2 ms — already in the past at t=5 ms: must run "now", not
    // silently reorder behind us.
    s.schedule_at(TimePoint::from_ns(0) + Duration::millis(2),
                  [&] { ran = true; });
  });
  s.run_all();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(s.now().to_millis(), 5.0);
  EXPECT_EQ(s.schedule_past_events(), 1u);
  EXPECT_EQ(reg.counter("sim.schedule_past_events").value(), 1u);
}

TEST(Simulator, FutureScheduleAtDoesNotCount) {
  Simulator s;
  s.schedule_at(TimePoint::from_ns(0) + Duration::millis(1), [] {});
  s.run_all();
  EXPECT_EQ(s.schedule_past_events(), 0u);
}

TEST(Simulator, LabelWithoutProfilerIsUnlabeled) {
  Simulator s;
  // Components intern at construction regardless of profiling state; with
  // no profiler attached every name maps to the unlabeled id and the
  // labeled overloads behave exactly like the plain ones.
  EXPECT_EQ(s.label("ran.enodeb"), obs::kUnlabeledEvent);
  int ran = 0;
  s.schedule(Duration::millis(1), [&] { ++ran; }, s.label("ran.enodeb"));
  s.run_all();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, ProfilerAttributesScheduleExecuteResidency) {
  Simulator s;
  obs::EventProfiler prof;
  s.set_profiler(&prof);
  const std::uint32_t enb = s.label("ran.enodeb");
  ASSERT_NE(enb, obs::kUnlabeledEvent);
  s.schedule(Duration::millis(2), [] {}, enb);
  s.schedule(Duration::millis(4), [] {}, enb);
  s.schedule(Duration::millis(1), [] {});  // Unlabeled overload.
  s.run_all();
  const obs::EventProfiler::LabelStats& st = prof.stats(enb);
  EXPECT_EQ(st.schedules, 2u);
  EXPECT_EQ(st.executed, 2u);
  // Residency is simulated ns queued: 2 ms + 4 ms.
  EXPECT_EQ(st.residency_ns, 6'000'000u);
  EXPECT_EQ(prof.stats(obs::kUnlabeledEvent).schedules, 1u);
  EXPECT_EQ(prof.stats(obs::kUnlabeledEvent).executed, 1u);
}

TEST(Simulator, ProfilerCountsPastClampsPerLabel) {
  Simulator s;
  obs::EventProfiler prof;
  s.set_profiler(&prof);
  const std::uint32_t inj = s.label("par.delivery");
  s.schedule(Duration::millis(5), [&] {
    s.schedule_at(TimePoint::from_ns(0) + Duration::millis(2), [] {}, inj);
  });
  s.run_all();
  EXPECT_EQ(prof.stats(inj).past_clamps, 1u);
  // A clamped event still executes and is attributed.
  EXPECT_EQ(prof.stats(inj).executed, 1u);
  EXPECT_EQ(prof.stats(inj).residency_ns, 0u);
}

TEST(Simulator, PeriodicEventsKeepTheirLabel) {
  Simulator s;
  obs::EventProfiler prof;
  s.set_profiler(&prof);
  const std::uint32_t tick = s.label("town.x2_report");
  s.every(Duration::millis(10), [] {}, tick);
  s.run_until(TimePoint::from_ns(0) + Duration::millis(45));
  // Every reschedule carries the label, not just the first firing.
  EXPECT_EQ(prof.stats(tick).executed, 4u);
  EXPECT_EQ(prof.stats(tick).schedules, 5u);  // 4 fired + 1 pending.
}

TEST(Simulator, QueueDepthAndResizeMetrics) {
  Simulator s;
  obs::MetricsRegistry reg;
  s.set_metrics(&reg);
  s.schedule(Duration::millis(5), [] {});
  s.schedule(Duration::millis(15), [] {});
  s.run_until(TimePoint::from_ns(0) + Duration::millis(10));
  // sim.queue_depth is the live pending count at flush; one event is
  // still queued past the deadline.
  EXPECT_DOUBLE_EQ(reg.gauge("sim.queue_depth").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.max_queue_depth").value(), 2.0);
  EXPECT_EQ(reg.counter("sim.queue_resizes").value(), s.queue_resizes());
  s.run_all();
  EXPECT_DOUBLE_EQ(reg.gauge("sim.queue_depth").value(), 0.0);
}

TEST(Simulator, NextEventTimePeeksEarliestPending) {
  Simulator s;
  EXPECT_EQ(s.next_event_time().ns(),
            std::numeric_limits<std::int64_t>::max());
  s.schedule(Duration::millis(30), [] {});
  s.schedule(Duration::millis(10), [] {});
  EXPECT_DOUBLE_EQ(s.next_event_time().to_millis(), 10.0);
  s.run_all();
  EXPECT_EQ(s.next_event_time().ns(),
            std::numeric_limits<std::int64_t>::max());
}

}  // namespace
}  // namespace dlte::sim
