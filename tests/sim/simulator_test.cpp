#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace dlte::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(Duration::millis(20), [&] { order.push_back(2); });
  s.schedule(Duration::millis(10), [&] { order.push_back(1); });
  s.schedule(Duration::millis(30), [&] { order.push_back(3); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule(Duration::millis(1), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator s;
  TimePoint seen{};
  s.schedule(Duration::seconds(1.5), [&] { seen = s.now(); });
  s.run_all();
  EXPECT_DOUBLE_EQ(seen.to_seconds(), 1.5);
}

TEST(Simulator, EventsScheduleFurtherEvents) {
  Simulator s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) s.schedule(Duration::millis(1), chain);
  };
  s.schedule(Duration::millis(1), chain);
  s.run_all();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(s.now().to_millis(), 10.0);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int ran = 0;
  s.schedule(Duration::millis(5), [&] { ++ran; });
  s.schedule(Duration::millis(15), [&] { ++ran; });
  s.run_until(TimePoint::from_ns(0) + Duration::millis(10));
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(s.now().to_millis(), 10.0);
  EXPECT_EQ(s.pending_events(), 1u);
  // Continue to drain the rest.
  s.run_all();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, DeadlineEventStillRuns) {
  Simulator s;
  int ran = 0;
  s.schedule(Duration::millis(10), [&] { ++ran; });
  s.run_until(TimePoint::from_ns(0) + Duration::millis(10));
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, NegativeDelayClampedToNow) {
  Simulator s;
  bool ran = false;
  s.schedule(Duration::millis(5), [&] {
    s.schedule(Duration::millis(-10), [&] { ran = true; });
  });
  s.run_all();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(s.now().to_millis(), 5.0);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator s;
  int ran = 0;
  s.schedule(Duration::millis(1), [&] {
    ++ran;
    s.stop();
  });
  s.schedule(Duration::millis(2), [&] { ++ran; });
  s.run_all();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, PeriodicProcessFiresRepeatedly) {
  Simulator s;
  int ticks = 0;
  s.every(Duration::millis(10), [&] { ++ticks; });
  s.run_until(TimePoint::from_ns(0) + Duration::millis(95));
  EXPECT_EQ(ticks, 9);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(TimePoint::from_ns(0) + Duration::seconds(3.0));
  EXPECT_DOUBLE_EQ(s.now().to_seconds(), 3.0);
}

TEST(Simulator, PastScheduleAtClampsAndCounts) {
  Simulator s;
  obs::MetricsRegistry reg;
  s.set_metrics(&reg);
  bool ran = false;
  s.schedule(Duration::millis(5), [&] {
    // Target 2 ms — already in the past at t=5 ms: must run "now", not
    // silently reorder behind us.
    s.schedule_at(TimePoint::from_ns(0) + Duration::millis(2),
                  [&] { ran = true; });
  });
  s.run_all();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(s.now().to_millis(), 5.0);
  EXPECT_EQ(s.schedule_past_events(), 1u);
  EXPECT_EQ(reg.counter("sim.schedule_past_events").value(), 1u);
}

TEST(Simulator, FutureScheduleAtDoesNotCount) {
  Simulator s;
  s.schedule_at(TimePoint::from_ns(0) + Duration::millis(1), [] {});
  s.run_all();
  EXPECT_EQ(s.schedule_past_events(), 0u);
}

TEST(Simulator, NextEventTimePeeksEarliestPending) {
  Simulator s;
  EXPECT_EQ(s.next_event_time().ns(),
            std::numeric_limits<std::int64_t>::max());
  s.schedule(Duration::millis(30), [] {});
  s.schedule(Duration::millis(10), [] {});
  EXPECT_DOUBLE_EQ(s.next_event_time().to_millis(), 10.0);
  s.run_all();
  EXPECT_EQ(s.next_event_time().ns(),
            std::numeric_limits<std::int64_t>::max());
}

}  // namespace
}  // namespace dlte::sim
