#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dlte {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t{{"arch", "throughput"}};
  t.row().add("dLTE").num(12.5, 1, "Mb/s");
  t.row().add("legacy-wifi").num(3.0, 1, "Mb/s");
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| arch "), std::string::npos);
  EXPECT_NE(out.find("| dLTE "), std::string::npos);
  EXPECT_NE(out.find("12.5 Mb/s"), std::string::npos);
  // Every data line should have the same length (alignment).
  std::istringstream is{out};
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(TextTable, IntegerAndMissingCells) {
  TextTable t{{"a", "b", "c"}};
  t.row().integer(42);  // Short row: remaining cells blank.
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(BenchHeader, ContainsExperimentId) {
  std::ostringstream os;
  print_bench_header(os, "C1", "paper §3.2", "LTE outranges WiFi");
  EXPECT_NE(os.str().find("Experiment C1"), std::string::npos);
  EXPECT_NE(os.str().find("§3.2"), std::string::npos);
}

}  // namespace
}  // namespace dlte
