#include "common/bytes.h"

#include <gtest/gtest.h>

#include <limits>

namespace dlte {
namespace {

TEST(ByteWriter, EncodesBigEndianU16) {
  ByteWriter w;
  w.u16(0x1234);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.data()[0], 0x12);
  EXPECT_EQ(w.data()[1], 0x34);
}

TEST(ByteWriter, EncodesBigEndianU32) {
  ByteWriter w;
  w.u32(0xdeadbeef);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0xde);
  EXPECT_EQ(w.data()[3], 0xef);
}

TEST(ByteWriter, EncodesU24ThreeBytes) {
  ByteWriter w;
  w.u24(0x00abcdef);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w.data()[0], 0xab);
  EXPECT_EQ(w.data()[2], 0xef);
}

TEST(ByteRoundTrip, AllScalarTypes) {
  ByteWriter w;
  w.u8(0x7f);
  w.u16(0xbeef);
  w.u24(0x123456);
  w.u32(0xcafebabe);
  w.u64(0x0123456789abcdefULL);
  w.f64(-273.15);
  w.str("dLTE");

  ByteReader r{w.data()};
  EXPECT_EQ(r.u8().value(), 0x7f);
  EXPECT_EQ(r.u16().value(), 0xbeef);
  EXPECT_EQ(r.u24().value(), 0x123456u);
  EXPECT_EQ(r.u32().value(), 0xcafebabeu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64().value(), -273.15);
  EXPECT_EQ(r.str().value(), "dLTE");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteRoundTrip, FloatSpecials) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(0.0);
  ByteReader r{w.data()};
  EXPECT_EQ(r.f64().value(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64().value(), 0.0);
}

TEST(ByteReader, ShortBufferFailsCleanly) {
  const std::uint8_t raw[] = {0x01, 0x02};
  ByteReader r{raw};
  EXPECT_TRUE(r.u16().ok());
  EXPECT_FALSE(r.u16().ok());
  EXPECT_FALSE(r.u8().ok());
}

TEST(ByteReader, ShortStringLengthPrefixFails) {
  ByteWriter w;
  w.u16(100);  // Claims 100 bytes follow.
  w.u8('x');
  ByteReader r{w.data()};
  auto s = r.str();
  EXPECT_FALSE(s.ok());
}

TEST(ByteReader, BytesExactAndOverrun) {
  ByteWriter w;
  w.u32(0xaabbccdd);
  ByteReader r{w.data()};
  auto b = r.bytes(4);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)[0], 0xaa);
  EXPECT_FALSE(r.bytes(1).ok());
}

TEST(ByteReader, EmptyString) {
  ByteWriter w;
  w.str("");
  ByteReader r{w.data()};
  EXPECT_EQ(r.str().value(), "");
}

TEST(ByteReader, RemainingTracksConsumption) {
  ByteWriter w;
  w.u64(1);
  ByteReader r{w.data()};
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
}  // namespace dlte
