#include "common/result.h"

#include <gtest/gtest.h>

#include <string>

namespace dlte {
namespace {

Result<int> parse_positive(int x) {
  if (x <= 0) return fail("not positive");
  return x;
}

TEST(Result, ValuePath) {
  auto r = parse_positive(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(static_cast<bool>(r));
}

TEST(Result, ErrorPath) {
  auto r = parse_positive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "not positive");
}

TEST(Result, ValueOr) {
  EXPECT_EQ(parse_positive(5).value_or(0), 5);
  EXPECT_EQ(parse_positive(-5).value_or(0), 0);
}

TEST(Result, SameValueAndErrorTypeDisambiguated) {
  Result<std::string, std::string> ok_r{std::string{"payload"}};
  Result<std::string, std::string> err_r{Err{std::string{"boom"}}};
  EXPECT_TRUE(ok_r.ok());
  EXPECT_FALSE(err_r.ok());
  EXPECT_EQ(*ok_r, "payload");
  EXPECT_EQ(err_r.error(), "boom");
}

TEST(Result, MoveOutValue) {
  Result<std::string> r{std::string(1000, 'x')};
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken.size(), 1000u);
}

TEST(Status, DefaultIsOk) {
  Status<> s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, ErrorCarriesMessage) {
  Status<> s{fail("denied")};
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error(), "denied");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r{std::string{"abc"}};
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace dlte
