#include <gtest/gtest.h>

#include "common/geo.h"
#include "common/time.h"
#include "common/units.h"

namespace dlte {
namespace {

TEST(Duration, Constructors) {
  EXPECT_EQ(Duration::millis(3).ns(), 3'000'000);
  EXPECT_EQ(Duration::micros(5).ns(), 5'000);
  EXPECT_EQ(Duration::seconds(1.5).ns(), 1'500'000'000);
}

TEST(Duration, Arithmetic) {
  const auto a = Duration::millis(10);
  const auto b = Duration::millis(4);
  EXPECT_EQ((a + b).to_millis(), 14.0);
  EXPECT_EQ((a - b).to_millis(), 6.0);
  EXPECT_EQ((a * 3).to_millis(), 30.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ((a / 2).to_millis(), 5.0);
}

TEST(TimePoint, OffsetAndDifference) {
  const auto t0 = TimePoint::from_ns(0);
  const auto t1 = t0 + Duration::seconds(2.0);
  EXPECT_DOUBLE_EQ(t1.to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ((t1 - t0).to_seconds(), 2.0);
  EXPECT_LT(t0, t1);
}

TEST(Decibels, LinearRoundTrip) {
  EXPECT_NEAR(Decibels{3.0}.linear(), 2.0, 0.01);
  EXPECT_NEAR(Decibels::from_linear(100.0).value(), 20.0, 1e-9);
  EXPECT_NEAR(Decibels::from_linear(Decibels{7.7}.linear()).value(), 7.7,
              1e-9);
}

TEST(PowerDbm, MilliwattRoundTrip) {
  EXPECT_NEAR(PowerDbm{30.0}.milliwatts(), 1000.0, 1e-6);
  EXPECT_NEAR(PowerDbm::from_milliwatts(1.0).value(), 0.0, 1e-9);
}

TEST(PowerDbm, GainAndLossArithmetic) {
  const PowerDbm tx{20.0};
  const PowerDbm rx = tx + Decibels{15.0} - Decibels{120.0};
  EXPECT_DOUBLE_EQ(rx.value(), -85.0);
  EXPECT_DOUBLE_EQ((tx - rx).value(), 105.0);
}

TEST(ThermalNoise, TenMhzAtSevenDbNf) {
  // -174 + 10log10(1e7) + 7 = -97 dBm.
  const PowerDbm n = thermal_noise(Hertz::mhz(10.0), Decibels{7.0});
  EXPECT_NEAR(n.value(), -97.0, 0.01);
}

TEST(Hertz, Conversions) {
  EXPECT_DOUBLE_EQ(Hertz::mhz(850.0).to_ghz(), 0.85);
  EXPECT_DOUBLE_EQ(Hertz::ghz(2.4).to_mhz(), 2400.0);
}

TEST(DataRate, Conversions) {
  EXPECT_DOUBLE_EQ(DataRate::mbps(10.0).to_kbps(), 10'000.0);
  EXPECT_DOUBLE_EQ((DataRate::kbps(500.0) + DataRate::kbps(500.0)).to_mbps(),
                   1.0);
}

TEST(Geo, DistanceAndLerp) {
  const Position a{0.0, 0.0};
  const Position b{3000.0, 4000.0};
  EXPECT_DOUBLE_EQ(distance_m(a, b), 5000.0);
  const Position mid = lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.x_m, 1500.0);
  EXPECT_DOUBLE_EQ(mid.y_m, 2000.0);
}

}  // namespace
}  // namespace dlte
