#include "common/stats.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace dlte {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(Quantiles, MedianOfOdd) {
  Quantiles q;
  for (double x : {5.0, 1.0, 3.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.median(), 3.0);
}

TEST(Quantiles, InterpolatesBetweenOrderStats) {
  Quantiles q;
  for (double x : {0.0, 10.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.25), 2.5);
}

TEST(Quantiles, ExtremesClamp) {
  Quantiles q;
  for (double x : {1.0, 2.0, 3.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(q.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(2.0), 3.0);
}

TEST(Quantiles, AddAfterQueryResorts) {
  Quantiles q;
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.median(), 10.0);
  q.add(0.0);
  q.add(20.0);
  EXPECT_DOUBLE_EQ(q.median(), 10.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 20.0);
}

TEST(Quantiles, MergePoolsSamples) {
  Quantiles a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.median(), 2.5);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 4.0);
  EXPECT_EQ(b.count(), 2u);  // Source is untouched.
}

TEST(JainFairness, PerfectlyEqualIsOne) {
  std::array<double, 4> a{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_fairness(a), 1.0);
}

TEST(JainFairness, OneHogIsOneOverN) {
  std::array<double, 4> a{12.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(a), 0.25);
}

TEST(JainFairness, SingleTransmitterIsPerfectlyFair) {
  // n = 1 degenerates to (x²)/(1·x²): the C11 single-occupant channel.
  std::array<double, 1> a{0.73};
  EXPECT_DOUBLE_EQ(jain_fairness(a), 1.0);
}

TEST(JainFairness, EmptyAndZeroInputsAreNeutral) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  std::array<double, 3> zeros{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(zeros), 1.0);
}

TEST(JainFairness, ScaleInvariant) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(jain_fairness(a), jain_fairness(b));
}

}  // namespace
}  // namespace dlte
