#include "common/ids.h"

#include <gtest/gtest.h>

#include <type_traits>
#include <unordered_map>

namespace dlte {
namespace {

TEST(StrongId, DefaultIsZero) {
  Imsi i;
  EXPECT_EQ(i.value(), 0u);
}

TEST(StrongId, ComparesByValue) {
  Imsi a{100}, b{100}, c{200};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_GE(c, b);
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<Imsi, Teid>);
  static_assert(!std::is_same_v<CellId, ApId>);
  static_assert(!std::is_convertible_v<Imsi, Teid>);
}

TEST(StrongId, UsableAsUnorderedMapKey) {
  std::unordered_map<Imsi, int> m;
  m[Imsi{310170123456789ULL}] = 7;
  EXPECT_EQ(m.at(Imsi{310170123456789ULL}), 7);
}

TEST(StrongId, NarrowRepRoundTrips) {
  BearerId b{5};
  EXPECT_EQ(b.value(), 5);
  static_assert(std::is_same_v<BearerId::rep_type, std::uint8_t>);
}

}  // namespace
}  // namespace dlte
