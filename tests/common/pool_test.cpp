#include "common/pool.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace dlte {
namespace {

struct Payload {
  int value{0};
  std::string tag;
};

TEST(ObjectPoolTest, AcquireGrowsInChunks) {
  ObjectPool<Payload> pool{4};
  EXPECT_EQ(pool.allocated(), 0u);
  Payload* first = pool.acquire();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(pool.allocated(), 4u);
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(pool.available(), 3u);
  for (int i = 0; i < 3; ++i) pool.acquire();
  EXPECT_EQ(pool.allocated(), 4u);
  pool.acquire();  // Fifth: new chunk.
  EXPECT_EQ(pool.allocated(), 8u);
  EXPECT_EQ(pool.in_use(), 5u);
}

TEST(ObjectPoolTest, ReleaseReusesTheSameSlot) {
  ObjectPool<Payload> pool{8};
  Payload* a = pool.acquire();
  a->value = 42;
  pool.release(a);
  Payload* b = pool.acquire();
  // LIFO free list: the released slot comes straight back (and keeps
  // whatever state the releaser left — pools do not reconstruct).
  EXPECT_EQ(b, a);
  EXPECT_EQ(b->value, 42);
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST(ObjectPoolTest, AddressesAreStableAcrossGrowth) {
  ObjectPool<Payload> pool{2};
  std::vector<Payload*> held;
  for (int i = 0; i < 100; ++i) {
    Payload* p = pool.acquire();
    p->value = i;
    held.push_back(p);
  }
  // Growth must never move live objects (events capture these pointers).
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(held[static_cast<std::size_t>(i)]->value, i);
  }
  std::set<Payload*> unique(held.begin(), held.end());
  EXPECT_EQ(unique.size(), held.size());
}

TEST(ObjectPoolTest, ResetReturnsEverythingWithoutFreeing) {
  ObjectPool<Payload> pool{4};
  for (int i = 0; i < 10; ++i) pool.acquire();
  const std::size_t allocated = pool.allocated();
  pool.reset();
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.allocated(), allocated);
  EXPECT_EQ(pool.available(), allocated);
  // And the arena is reusable.
  EXPECT_NE(pool.acquire(), nullptr);
  EXPECT_EQ(pool.allocated(), allocated);
}

TEST(ObjectPoolTest, InterleavedAcquireReleaseStaysBalanced) {
  ObjectPool<int> pool{16};
  std::vector<int*> live;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) live.push_back(pool.acquire());
    for (int i = 0; i < 5 && !live.empty(); ++i) {
      pool.release(live.back());
      live.pop_back();
    }
  }
  EXPECT_EQ(pool.in_use(), live.size());
  for (int* p : live) pool.release(p);
  EXPECT_EQ(pool.in_use(), 0u);
}

}  // namespace
}  // namespace dlte
