// Registry failure modes: offline outage, commit stall, federated zone
// failure, and the heartbeat grace period that keeps short outages from
// costing licenses.
#include "spectrum/registry.h"

#include <gtest/gtest.h>

#include "fault/fault.h"
#include "ue/mobility.h"

namespace dlte::fault {
namespace {

spectrum::GrantRequest request_at(std::uint32_t ap, Position pos) {
  spectrum::GrantRequest r;
  r.ap = ApId{ap};
  r.location = pos;
  r.center_frequency = Hertz::mhz(850.0);
  r.bandwidth = Hertz::mhz(10.0);
  r.operator_contact = "op@example.net";
  r.coordination_node = NodeId{ap};
  return r;
}

TEST(RegistryOutage, OfflineFailsRequestsHeartbeatsAndQueries) {
  sim::Simulator sim;
  spectrum::Registry reg{sim, spectrum::RegistryKind::kCentralizedSas};
  reg.set_grant_lifetime(Duration::seconds(60.0));
  auto g = reg.grant_now(request_at(1, Position{}));
  ASSERT_TRUE(g.ok());

  reg.set_outage(spectrum::RegistryOutage::kOffline);
  EXPECT_FALSE(reg.heartbeat(g->id).ok());

  bool failed = false;
  TimePoint when;
  reg.request_grant(request_at(2, Position{1'000.0, 0.0}),
                    [&](Result<spectrum::SpectrumGrant> r) {
                      failed = !r.ok();
                      when = sim.now();
                    });
  std::size_t query_found = 99;
  reg.query_region(Position{}, [&](std::vector<spectrum::SpectrumGrant> gs) {
    query_found = gs.size();
  });
  sim.run_all();
  EXPECT_TRUE(failed);
  // Failure surfaces at the client-side timeout, not instantly.
  EXPECT_NEAR(when.to_seconds(), 2.0, 0.01);
  // The querier cannot distinguish "down" from "empty".
  EXPECT_EQ(query_found, 0u);

  // Service restored: everything works again.
  reg.set_outage(spectrum::RegistryOutage::kNone);
  EXPECT_TRUE(reg.heartbeat(g->id).ok());
}

TEST(RegistryOutage, CommitStallQueuesGrantsUntilRecovery) {
  sim::Simulator sim;
  spectrum::Registry reg{sim, spectrum::RegistryKind::kBlockchain};
  reg.set_outage(spectrum::RegistryOutage::kCommitStall);

  bool granted = false;
  reg.request_grant(request_at(1, Position{}),
                    [&](Result<spectrum::SpectrumGrant> r) {
                      granted = r.ok();
                    });
  sim.run_until(sim.now() + Duration::seconds(300.0));
  EXPECT_FALSE(granted);  // Stalled, not failed: the commit waits.
  EXPECT_EQ(reg.grant_count(), 0u);

  // Reads still work during a commit stall.
  std::size_t found = 99;
  reg.query_region(Position{}, [&](std::vector<spectrum::SpectrumGrant> gs) {
    found = gs.size();
  });
  sim.run_until(sim.now() + Duration::seconds(2.0));
  EXPECT_EQ(found, 0u);

  // The chain catches up: the stalled commit replays and lands after the
  // normal commit latency.
  reg.set_outage(spectrum::RegistryOutage::kNone);
  sim.run_all();
  EXPECT_TRUE(granted);
  EXPECT_EQ(reg.grant_count(), 1u);
}

TEST(RegistryOutage, FederatedZoneFailureIsLocationScoped) {
  sim::Simulator sim;
  spectrum::Registry reg{sim, spectrum::RegistryKind::kFederated};
  const Position in_zone{1'000.0, 1'000.0};
  const Position far_away{500'000.0, 500'000.0};
  ASSERT_NE(spectrum::Registry::zone_of(in_zone),
            spectrum::Registry::zone_of(far_away));

  reg.set_zone_offline(spectrum::Registry::zone_of(in_zone), true);

  bool near_failed = false, far_ok = false;
  reg.request_grant(request_at(1, in_zone),
                    [&](Result<spectrum::SpectrumGrant> r) {
                      near_failed = !r.ok();
                    });
  reg.request_grant(request_at(2, far_away),
                    [&](Result<spectrum::SpectrumGrant> r) {
                      far_ok = r.ok();
                    });
  sim.run_all();
  EXPECT_TRUE(near_failed);
  EXPECT_TRUE(far_ok);

  // Zone restored: the unlucky AP can apply again.
  reg.set_zone_offline(spectrum::Registry::zone_of(in_zone), false);
  bool retried_ok = false;
  reg.request_grant(request_at(1, in_zone),
                    [&](Result<spectrum::SpectrumGrant> r) {
                      retried_ok = r.ok();
                    });
  sim.run_all();
  EXPECT_TRUE(retried_ok);
}

TEST(RegistryOutage, ZoneOutageDoesNotAffectCentralizedSas) {
  // Only the federated design has zone-scoped failure domains.
  sim::Simulator sim;
  spectrum::Registry reg{sim, spectrum::RegistryKind::kCentralizedSas};
  const Position pos{1'000.0, 1'000.0};
  reg.set_zone_offline(spectrum::Registry::zone_of(pos), true);
  bool ok = false;
  reg.request_grant(request_at(1, pos),
                    [&](Result<spectrum::SpectrumGrant> r) { ok = r.ok(); });
  sim.run_all();
  EXPECT_TRUE(ok);
}

TEST(RegistryOutage, GraceKeepsExpiredGrantDegradedThenLapses) {
  sim::Simulator sim;
  spectrum::Registry reg{sim, spectrum::RegistryKind::kCentralizedSas};
  reg.set_grant_lifetime(Duration::seconds(60.0));
  reg.set_heartbeat_grace(Duration::seconds(40.0));
  auto g = reg.grant_now(request_at(1, Position{}));
  ASSERT_TRUE(g.ok());

  // Past expiry but inside grace: still listed, marked degraded —
  // neighbours keep coordinating around it at conservative power.
  sim.run_until(sim.now() + Duration::seconds(80.0));
  auto near = reg.grants_near(Position{});
  ASSERT_EQ(near.size(), 1u);
  EXPECT_TRUE(near[0].degraded);
  EXPECT_EQ(reg.grants_lapsed(), 0u);

  // A heartbeat inside the grace fully renews.
  ASSERT_TRUE(reg.heartbeat(g->id).ok());
  near = reg.grants_near(Position{});
  ASSERT_EQ(near.size(), 1u);
  EXPECT_FALSE(near[0].degraded);

  // Silence through expiry + grace: the grant lapses for good.
  sim.run_until(sim.now() + Duration::seconds(101.0));
  EXPECT_TRUE(reg.grants_near(Position{}).empty());
  EXPECT_EQ(reg.grants_lapsed(), 1u);
  EXPECT_FALSE(reg.heartbeat(g->id).ok());
}

// Integration: an AP rides out a registry outage shorter than its grace
// window in degraded mode instead of losing its license.
TEST(RegistryOutage, ApSurvivesShortOutageDegraded) {
  sim::Simulator sim;
  net::Network net{sim};
  core::RadioEnvironment radio;
  spectrum::Registry reg{sim, spectrum::RegistryKind::kCentralizedSas};
  reg.set_grant_lifetime(Duration::seconds(30.0));
  reg.set_heartbeat_grace(Duration::seconds(60.0));

  const NodeId internet = net.add_node("internet");
  const NodeId node = net.add_node("ap1");
  net.add_link(node, internet,
               net::LinkConfig{DataRate::mbps(50.0), Duration::millis(15)});
  core::ApConfig cfg;
  cfg.id = ApId{1};
  cfg.cell = CellId{1};
  cfg.position = Position{};
  cfg.lease_grace = Duration::seconds(60.0);
  core::DlteAccessPoint ap{sim, net, node, radio, cfg};
  ap.bring_up(reg);
  sim.run_until(sim.now() + Duration::seconds(2.0));
  ASSERT_TRUE(ap.has_grant());

  FaultInjector injector{sim};
  injector.register_ap(&ap);
  injector.set_registry(&reg);
  FaultPlan plan;
  FaultSpec outage;
  outage.kind = FaultKind::kRegistryOutage;
  outage.at = sim.now() + Duration::seconds(5.0);
  outage.duration = Duration::seconds(25.0);  // Shorter than the grace.
  outage.outage = spectrum::RegistryOutage::kOffline;
  plan.add(outage);
  injector.arm(plan);

  // Mid-outage: renewals are failing, AP degrades but keeps its grant.
  sim.run_until(sim.now() + Duration::seconds(25.0));
  EXPECT_TRUE(ap.lease_degraded());
  EXPECT_TRUE(ap.has_grant());

  // Outage heals; the next heartbeat renews and leaves degraded mode.
  sim.run_until(sim.now() + Duration::seconds(30.0));
  EXPECT_FALSE(ap.lease_degraded());
  EXPECT_TRUE(ap.has_grant());
  EXPECT_EQ(reg.grants_lapsed(), 0u);
}

}  // namespace
}  // namespace dlte::fault
