// FaultPlan determinism: the resilience experiment is only an experiment
// if the failure schedule is exactly reproducible from its seed.
#include "fault/fault.h"

#include <gtest/gtest.h>

namespace dlte::fault {
namespace {

std::vector<ApId> three_aps() { return {ApId{1}, ApId{2}, ApId{3}}; }

std::vector<std::pair<NodeId, NodeId>> two_links() {
  return {{NodeId{10}, NodeId{20}}, {NodeId{20}, NodeId{30}}};
}

TEST(FaultPlan, SameSeedSameSchedule) {
  const auto a = FaultPlan::random(42, three_aps(), two_links());
  const auto b = FaultPlan::random(42, three_aps(), two_links());
  EXPECT_FALSE(a.summary().empty());
  EXPECT_EQ(a.summary(), b.summary());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.specs()[i].at, b.specs()[i].at);
    EXPECT_EQ(a.specs()[i].kind, b.specs()[i].kind);
  }
}

TEST(FaultPlan, DifferentSeedDifferentSchedule) {
  const auto a = FaultPlan::random(42, three_aps(), two_links());
  const auto b = FaultPlan::random(43, three_aps(), two_links());
  EXPECT_NE(a.summary(), b.summary());
}

TEST(FaultPlan, RandomPlanHonorsProfileCounts) {
  RandomFaultProfile profile;
  profile.ap_crashes = 3;
  profile.link_partitions = 1;
  profile.link_degrades = 2;
  profile.registry_outages = 1;
  const auto plan = FaultPlan::random(7, three_aps(), two_links(), profile);
  int crashes = 0, partitions = 0, degrades = 0, outages = 0;
  for (const auto& s : plan.specs()) {
    switch (s.kind) {
      case FaultKind::kApCrash: ++crashes; break;
      case FaultKind::kLinkPartition: ++partitions; break;
      case FaultKind::kLinkDegrade: ++degrades; break;
      case FaultKind::kRegistryOutage: ++outages; break;
      case FaultKind::kX2Impairment: break;
    }
  }
  EXPECT_EQ(crashes, 3);
  EXPECT_EQ(partitions, 1);
  EXPECT_EQ(degrades, 2);
  EXPECT_EQ(outages, 1);
}

TEST(FaultPlan, SpecsSortedByInjectionTime) {
  const auto plan = FaultPlan::random(11, three_aps(), two_links());
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan.specs()[i - 1].at, plan.specs()[i].at);
  }
}

TEST(FaultPlan, NoApsOrLinksYieldsOnlyRegistryFaults) {
  const auto plan = FaultPlan::random(5, {}, {});
  for (const auto& s : plan.specs()) {
    EXPECT_EQ(s.kind, FaultKind::kRegistryOutage);
  }
}

TEST(FaultSpec, DescribeNamesKindAndTarget) {
  FaultSpec s;
  s.kind = FaultKind::kApCrash;
  s.ap = ApId{7};
  EXPECT_EQ(s.describe(), "ap-crash ap=7");

  FaultSpec p;
  p.kind = FaultKind::kLinkPartition;
  p.link_a = NodeId{1};
  p.link_b = NodeId{2};
  EXPECT_EQ(p.describe(), "link-partition link=1<->2");

  FaultSpec o;
  o.kind = FaultKind::kRegistryOutage;
  o.outage = spectrum::RegistryOutage::kCommitStall;
  EXPECT_EQ(o.describe(), "registry-outage mode=commit-stall zone=all");
}

TEST(FaultPlan, SummaryMarksPermanentFaults) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kApCrash;
  s.ap = ApId{1};
  s.at = TimePoint{} + Duration::seconds(30.0);
  plan.add(s);  // duration stays zero = permanent.
  EXPECT_NE(plan.summary().find("dur=permanent"), std::string::npos);
  EXPECT_NE(plan.summary().find("t=30.000s"), std::string::npos);
}

}  // namespace
}  // namespace dlte::fault
