// FaultInjector against live components: partitions heal in the right
// order, AP crashes lose exactly the volatile state, X2 impairment bites.
#include "fault/fault.h"

#include <gtest/gtest.h>

#include "fault/failover.h"
#include "fault/resilience.h"
#include "ue/mobility.h"

namespace dlte::fault {
namespace {

TimePoint at_s(double s) { return TimePoint{} + Duration::seconds(s); }

TEST(FaultInjector, OverlappingPartitionsHealWhenLastWindowCloses) {
  sim::Simulator sim;
  net::Network net{sim};
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_link(a, b, net::LinkConfig{DataRate::mbps(10.0),
                                     Duration::millis(5)});

  FaultInjector injector{sim};
  injector.set_network(&net);

  FaultPlan plan;
  FaultSpec w1;
  w1.kind = FaultKind::kLinkPartition;
  w1.at = at_s(10.0);
  w1.duration = Duration::seconds(30.0);  // [10, 40].
  w1.link_a = a;
  w1.link_b = b;
  FaultSpec w2 = w1;
  w2.at = at_s(20.0);
  w2.duration = Duration::seconds(10.0);  // [20, 30] inside [10, 40].
  plan.add(w1).add(w2);
  injector.arm(plan);

  int received = 0;
  net.set_handler(b, [&](net::Packet&&) { ++received; });

  // t=35: inner window closed, outer still open — link must be DOWN.
  sim.run_until(at_s(35.0));
  net.send(net::Packet{a, b, 100, 0, {}});
  sim.run_until(at_s(38.0));
  EXPECT_EQ(received, 0);

  // t=45: last window closed — link healed.
  sim.run_until(at_s(45.0));
  net.send(net::Packet{a, b, 100, 0, {}});
  sim.run_until(at_s(48.0));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(injector.stats().injected, 2u);
  EXPECT_EQ(injector.stats().healed, 2u);
}

TEST(FaultInjector, LinkDegradeDropsAndDelays) {
  sim::Simulator sim;
  net::Network net{sim};
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_link(a, b, net::LinkConfig{DataRate::mbps(100.0),
                                     Duration::millis(1)});

  FaultInjector injector{sim};
  injector.set_network(&net);
  FaultPlan plan;
  FaultSpec d;
  d.kind = FaultKind::kLinkDegrade;
  d.at = at_s(1.0);
  d.duration = Duration::seconds(10.0);
  d.link_a = a;
  d.link_b = b;
  d.loss = 0.5;
  d.extra_latency = Duration::millis(50);
  plan.add(d);
  injector.arm(plan);

  int received = 0;
  net.set_handler(b, [&](net::Packet&&) { ++received; });
  sim.run_until(at_s(2.0));
  for (int i = 0; i < 200; ++i) net.send(net::Packet{a, b, 100, 0, {}});
  sim.run_until(at_s(5.0));
  // Half the packets die, statistically.
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_GT(net.link_stats(a, b).packets_lost_impaired, 0u);

  // After heal the link is clean again.
  sim.run_until(at_s(12.0));
  const int before = received;
  for (int i = 0; i < 50; ++i) net.send(net::Packet{a, b, 100, 0, {}});
  sim.run_all();
  EXPECT_EQ(received - before, 50);
}

// A little dLTE town with a resilient UE population, mirroring the C8
// bench topology at test scale.
struct Town {
  sim::Simulator sim;
  net::Network net{sim};
  core::RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};
  NodeId internet = net.add_node("internet");
  std::vector<std::unique_ptr<core::DlteAccessPoint>> aps;

  core::DlteAccessPoint& add_ap(std::uint32_t id, double x_m) {
    const NodeId node = net.add_node("ap" + std::to_string(id));
    net.add_link(node, internet,
                 net::LinkConfig{DataRate::mbps(50.0), Duration::millis(15)});
    core::ApConfig cfg;
    cfg.id = ApId{id};
    cfg.cell = CellId{id};
    cfg.position = Position{x_m, 0.0};
    cfg.seed = id;
    aps.push_back(std::make_unique<core::DlteAccessPoint>(sim, net, node,
                                                          radio, cfg));
    return *aps.back();
  }

  core::UeDevice make_ue(std::uint64_t imsi, Position pos) {
    crypto::Key128 k{};
    for (std::size_t i = 0; i < 16; ++i) {
      k[i] = static_cast<std::uint8_t>(imsi * 7 + i);
    }
    crypto::Block128 op{};
    op[0] = 0xcd;
    const auto opc = crypto::derive_opc(k, op);
    registry.publish_subscriber(epc::PublishedKeys{Imsi{imsi}, k, opc});
    ue::SimProfile profile{Imsi{imsi}, k, opc, true, "open"};
    return core::UeDevice{profile, std::make_unique<ue::StaticMobility>(pos)};
  }

  void run_for(double seconds) {
    sim.run_until(sim.now() + Duration::seconds(seconds));
  }
};

TEST(FaultInjector, ApCrashLosesVolatileStateAndRecovers) {
  Town town;
  auto& ap = town.add_ap(1, 0.0);
  ap.bring_up(town.registry);
  town.run_for(1.0);
  auto ue = town.make_ue(700001, Position{1'000.0, 0.0});
  ap.import_published_subscribers(town.registry);
  bool attached = false;
  ap.attach(ue, mac::UeTrafficConfig{}, [&](core::AttachOutcome o) {
    attached = o.success;
  });
  town.run_for(2.0);
  ASSERT_TRUE(attached);
  ASSERT_EQ(ap.core().gateway().session_count(), 1u);

  FaultInjector injector{town.sim};
  injector.register_ap(&ap);
  injector.set_registry(&town.registry);
  FaultPlan plan;
  FaultSpec crash;
  crash.kind = FaultKind::kApCrash;
  crash.at = town.sim.now() + Duration::seconds(1.0);
  crash.duration = Duration::seconds(5.0);
  crash.ap = ApId{1};
  plan.add(crash);
  injector.arm(plan);

  town.run_for(2.0);  // Inside the crash window.
  EXPECT_TRUE(ap.failed());
  // Volatile state gone: sessions, EMM contexts, MAC bearers, the cell.
  EXPECT_EQ(ap.core().gateway().session_count(), 0u);
  EXPECT_EQ(ap.core().mme().registered_count(), 0u);
  EXPECT_FALSE(ap.core().mme().is_registered(Imsi{700001}));
  EXPECT_FALSE(town.radio.cell_active(CellId{1}));
  EXPECT_EQ(ap.core().mme().stats().state_losses, 1u);
  // Persistent state survives: the HSS still knows the subscriber.
  EXPECT_TRUE(ap.core().hss().has_subscriber(Imsi{700001}));

  town.run_for(8.0);  // Past the heal.
  EXPECT_FALSE(ap.failed());
  EXPECT_TRUE(town.radio.cell_active(CellId{1}));

  // The UE re-attaches from scratch against the restarted core.
  bool reattached = false;
  ap.attach(ue, mac::UeTrafficConfig{}, [&](core::AttachOutcome o) {
    reattached = o.success;
  });
  town.run_for(3.0);
  EXPECT_TRUE(reattached);
  EXPECT_EQ(ap.core().gateway().session_count(), 1u);
}

TEST(FaultInjector, AttachFastFailsWhileApDown) {
  Town town;
  auto& ap = town.add_ap(1, 0.0);
  ap.bring_up(town.registry);
  town.run_for(1.0);
  auto ue = town.make_ue(700002, Position{1'000.0, 0.0});
  ap.import_published_subscribers(town.registry);
  ap.fail();
  bool done = false;
  bool success = true;
  ap.attach(ue, mac::UeTrafficConfig{}, [&](core::AttachOutcome o) {
    done = true;
    success = o.success;
  });
  town.run_for(1.0);  // Far less than the 15 s attach guard.
  EXPECT_TRUE(done);
  EXPECT_FALSE(success);
}

TEST(FaultInjector, FailoverAgentMovesUesToSurvivingAp) {
  Town town;
  auto& a = town.add_ap(1, 0.0);
  auto& b = town.add_ap(2, 4'000.0);
  a.bring_up(town.registry);
  b.bring_up(town.registry);
  town.run_for(2.0);

  std::vector<core::UeDevice> ues;
  ues.reserve(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    // Closer to A: they initially camp there.
    ues.push_back(town.make_ue(710000 + i, Position{500.0 + 100.0 * i, 0.0}));
  }
  a.import_published_subscribers(town.registry);
  b.import_published_subscribers(town.registry);

  ResilienceTracker tracker{town.sim};
  UeFailoverAgent agent{town.sim, town.radio, &tracker};
  agent.add_ap(&a);
  agent.add_ap(&b);
  for (auto& ue : ues) agent.manage(ue, mac::UeTrafficConfig{});
  agent.start();
  town.run_for(5.0);
  EXPECT_EQ(a.core().gateway().session_count(), 4u);

  // Permanent crash of A: everyone must end up on B.
  FaultInjector injector{town.sim};
  injector.register_ap(&a);
  injector.register_ap(&b);
  FaultPlan plan;
  FaultSpec crash;
  crash.kind = FaultKind::kApCrash;
  crash.at = town.sim.now() + Duration::seconds(1.0);
  crash.ap = ApId{1};  // duration zero: never heals.
  plan.add(crash);
  injector.arm(plan);

  town.run_for(30.0);
  EXPECT_EQ(b.core().gateway().session_count(), 4u);
  for (auto& ue : ues) EXPECT_TRUE(ue.attached());

  const auto report =
      tracker.report(town.sim.now());
  EXPECT_EQ(report.ues, 4u);
  EXPECT_EQ(report.service_losses, 4u);
  EXPECT_EQ(report.service_recoveries, 4u);
  EXPECT_DOUBLE_EQ(report.eventual_attach_rate, 1.0);
  EXPECT_GT(report.mttr_s, 0.0);
  EXPECT_GT(report.availability, 0.5);
  EXPECT_LT(report.availability, 1.0);
}

TEST(FaultInjector, X2ImpairmentDropsInjectedMessages) {
  Town town;
  auto& a = town.add_ap(1, 0.0);
  auto& b = town.add_ap(2, 6'000.0);
  a.bring_up(town.registry);
  b.bring_up(town.registry);
  town.run_for(2.0);

  FaultInjector injector{town.sim};
  injector.register_ap(&a);
  FaultPlan plan;
  FaultSpec imp;
  imp.kind = FaultKind::kX2Impairment;
  imp.at = town.sim.now() + Duration::seconds(1.0);
  imp.duration = Duration::seconds(10.0);
  imp.ap = ApId{1};
  imp.loss = 1.0;  // Drop everything.
  plan.add(imp);
  injector.arm(plan);

  town.run_for(8.0);
  EXPECT_GT(a.coordinator().stats().x2_drops_injected, 0u);

  // After heal, messages flow again.
  const auto dropped = a.coordinator().stats().x2_drops_injected;
  town.run_for(10.0);
  EXPECT_EQ(a.coordinator().stats().x2_drops_injected, dropped);
}

TEST(FaultInjector, SpansMarkFaultsAndAnnotateActiveProcedure) {
  sim::Simulator sim;
  net::Network net{sim};
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_link(a, b,
               net::LinkConfig{DataRate::mbps(10.0), Duration::millis(5)});

  obs::SpanTracer tracer{[&sim] { return sim.now(); }};
  FaultInjector injector{sim};
  injector.set_network(&net);
  injector.set_tracer(&tracer, "town/");

  FaultPlan plan;
  FaultSpec w;
  w.kind = FaultKind::kLinkPartition;
  w.at = at_s(1.0);
  w.duration = Duration::seconds(2.0);
  w.link_a = a;
  w.link_b = b;
  plan.add(w);
  injector.arm(plan);

  // A procedure is mid-flight across both the inject and the heal: the
  // fault must land as annotations on it, not just as markers.
  const obs::SpanId proc = tracer.begin("attach", "ran", obs::kNoSpan);
  tracer.activate(proc);
  sim.run_until(at_s(5.0));
  tracer.end(proc);

  const obs::Span* inject = nullptr;
  const obs::Span* heal = nullptr;
  for (const obs::Span& s : tracer.spans()) {
    if (s.name == "fault_inject") inject = &s;
    if (s.name == "fault_heal") heal = &s;
  }
  ASSERT_NE(inject, nullptr);
  ASSERT_NE(heal, nullptr);
  // Zero-duration markers on the injector's own track, stamped with the
  // spec so the timeline is self-describing.
  EXPECT_EQ(inject->category, "town/fault");
  EXPECT_EQ(inject->duration(), Duration{});
  EXPECT_EQ(inject->start, at_s(1.0));
  EXPECT_EQ(heal->start, at_s(3.0));
  ASSERT_EQ(inject->annotations.size(), 1u);
  EXPECT_EQ(inject->annotations[0].key, "spec");
  EXPECT_NE(inject->annotations[0].value.find("link-partition"),
            std::string::npos);

  const obs::Span* p = tracer.find(proc);
  ASSERT_EQ(p->annotations.size(), 2u);
  EXPECT_EQ(p->annotations[0].key, "fault");
  EXPECT_NE(p->annotations[0].value.find("inject"), std::string::npos);
  EXPECT_NE(p->annotations[1].value.find("heal"), std::string::npos);
}

TEST(ResilienceReport, ByteStableToString) {
  sim::Simulator sim;
  ResilienceTracker t{sim};
  t.track(Imsi{1});
  t.on_attach_attempt();
  t.on_attached(Imsi{1});
  sim.schedule(Duration::seconds(10.0), [&] { t.on_service_lost(Imsi{1}); });
  sim.schedule(Duration::seconds(14.0), [&] { t.on_attached(Imsi{1}); });
  sim.run_all();
  const auto r = t.report(TimePoint{} + Duration::seconds(20.0));
  EXPECT_EQ(r.to_string(), r.to_string());
  EXPECT_NE(r.to_string().find("mttr_s=4.000"), std::string::npos);
  EXPECT_NE(r.to_string().find("availability=0.800"), std::string::npos);
  EXPECT_NE(r.to_string().find("eventual_attach_rate=1.000"),
            std::string::npos);
}

}  // namespace
}  // namespace dlte::fault
