// Satellite of DESIGN.md §10: the exported telemetry artifacts — series
// JSON and OpenMetrics text — must be byte-identical across same-seed
// runs of a faulted scenario. CI re-proves this on the full C8 bench
// with cmp; this test keeps the property cheap to check in tier 1.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/failover.h"
#include "fault/fault.h"
#include "fault/health.h"
#include "fault/resilience.h"
#include "obs/openmetrics.h"
#include "obs/series_export.h"
#include "sim/telemetry.h"
#include "spectrum/health.h"
#include "ue/mobility.h"

namespace dlte::fault {
namespace {

struct Artifacts {
  std::string series_json;
  std::string openmetrics;
  std::string alert_timeline;
};

// A compressed C8: two APs, four UEs camped on AP 1, a registry outage
// at t=5 s and an AP 1 crash at t=15 s, fully metered and monitored.
Artifacts run_once(std::uint64_t seed) {
  sim::Simulator sim;
  obs::MetricsRegistry metrics;
  sim.set_metrics(&metrics);
  net::Network net{sim};
  net.set_metrics(&metrics);
  net.set_impairment_seed(seed);
  core::RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};
  registry.set_metrics(&metrics);
  registry.set_grant_lifetime(Duration::seconds(6.0));
  registry.set_heartbeat_grace(Duration::seconds(12.0));

  obs::TimeSeriesSampler sampler{metrics};
  obs::SloMonitor monitor{metrics};
  monitor.set_metrics(&metrics);
  monitor.add_rules(spectrum::default_registry_slo_rules());
  monitor.add_rules(default_resilience_slo_rules(/*min_ues_in_service=*/4.0));
  sim::TelemetryDriver telemetry{sim, &sampler, &monitor};
  telemetry.start();

  const NodeId internet = net.add_node("internet");
  std::vector<std::unique_ptr<core::DlteAccessPoint>> aps;
  for (std::uint32_t id = 1; id <= 2; ++id) {
    const NodeId node = net.add_node("ap" + std::to_string(id));
    net.add_link(node, internet,
                 net::LinkConfig{DataRate::mbps(50.0), Duration::millis(15)});
    core::ApConfig cfg;
    cfg.id = ApId{id};
    cfg.cell = CellId{id};
    cfg.position = Position{(id - 1) * 4'000.0, 0.0};
    cfg.seed = seed + id;
    aps.push_back(
        std::make_unique<core::DlteAccessPoint>(sim, net, node, radio, cfg));
    aps.back()->bring_up(registry);
    aps.back()->core().set_metrics(&metrics);
    aps.back()->set_metrics(&metrics);
  }
  sim.run_until(TimePoint{} + Duration::seconds(1.0));

  crypto::Block128 op{};
  op[0] = 0xcd;
  std::vector<std::unique_ptr<core::UeDevice>> ues;
  for (std::uint64_t u = 0; u < 4; ++u) {
    crypto::Key128 k{};
    for (std::size_t i = 0; i < 16; ++i) {
      k[i] = static_cast<std::uint8_t>(u * 7 + i);
    }
    const Imsi imsi{730010000000100ULL + u};
    const auto opc = crypto::derive_opc(k, op);
    registry.publish_subscriber(epc::PublishedKeys{imsi, k, opc});
    ues.push_back(std::make_unique<core::UeDevice>(
        ue::SimProfile{imsi, k, opc, true, "town"},
        std::make_unique<ue::StaticMobility>(
            Position{400.0 + 90.0 * static_cast<double>(u), 0.0})));
  }
  for (auto& ap : aps) ap->import_published_subscribers(registry);

  ResilienceTracker tracker{sim};
  tracker.set_metrics(&metrics);
  UeFailoverAgent agent{sim, radio, &tracker};
  for (auto& ap : aps) agent.add_ap(ap.get());
  for (auto& ue : ues) agent.manage(*ue, mac::UeTrafficConfig{});
  agent.start();

  FaultInjector injector{sim};
  injector.set_metrics(&metrics);
  for (auto& ap : aps) injector.register_ap(ap.get());
  injector.set_network(&net);
  injector.set_registry(&registry);
  FaultPlan plan;
  FaultSpec outage;
  outage.kind = FaultKind::kRegistryOutage;
  outage.at = TimePoint{} + Duration::seconds(5.0);
  outage.duration = Duration::seconds(6.0);
  outage.outage = spectrum::RegistryOutage::kOffline;
  plan.add(outage);
  FaultSpec crash;
  crash.kind = FaultKind::kApCrash;
  crash.at = TimePoint{} + Duration::seconds(15.0);
  crash.duration = Duration::seconds(10.0);
  crash.ap = ApId{1};
  plan.add(crash);
  injector.arm(plan);

  sim.run_until(TimePoint{} + Duration::seconds(35.0));

  Artifacts out;
  out.series_json =
      obs::SeriesExporter::to_json(sampler, &monitor, "telemetry_determinism");
  out.openmetrics = obs::OpenMetricsExporter::render(metrics);
  for (const auto& event : monitor.events()) {
    out.alert_timeline += event.describe() + "\n";
  }
  return out;
}

TEST(TelemetryDeterminism, SameSeedYieldsByteIdenticalArtifacts) {
  const Artifacts first = run_once(2018);
  const Artifacts second = run_once(2018);
  EXPECT_EQ(first.series_json, second.series_json);
  EXPECT_EQ(first.openmetrics, second.openmetrics);
  EXPECT_EQ(first.alert_timeline, second.alert_timeline);

  // The scenario is not vacuous: the registry outage shows up as failed
  // heartbeats and fires the registry_outage alert.
  EXPECT_NE(first.alert_timeline.find("FIRE registry_outage"),
            std::string::npos);
  EXPECT_NE(first.series_json.find("registry.heartbeats_failed"),
            std::string::npos);
  EXPECT_NE(first.openmetrics.find("registry_heartbeats_failed_total"),
            std::string::npos);
}

TEST(TelemetryDeterminism, DifferentSeedStillProducesValidArtifacts) {
  const Artifacts other = run_once(77);
  EXPECT_NE(other.series_json.find("\"schema\":\"dlte-series-v1\""),
            std::string::npos);
  EXPECT_EQ(other.openmetrics.substr(other.openmetrics.size() - 6), "# EOF\n");
}

}  // namespace
}  // namespace dlte::fault
