#include "net/network.h"

#include <gtest/gtest.h>

#include <limits>

namespace dlte::net {
namespace {

struct Fixture {
  sim::Simulator sim;
  Network net{sim};
};

TEST(Ipv4, Formatting) {
  EXPECT_EQ(Ipv4{0xC0A80001}.to_string(), "192.168.0.1");
  EXPECT_EQ(Ipv4{0}.to_string(), "0.0.0.0");
}

TEST(Network, DirectDelivery) {
  Fixture f;
  const NodeId a = f.net.add_node("a");
  const NodeId b = f.net.add_node("b");
  f.net.add_link(a, b, LinkConfig{DataRate::mbps(10.0), Duration::millis(5)});

  int received = 0;
  TimePoint arrival;
  f.net.set_handler(b, [&](Packet&& p) {
    ++received;
    arrival = f.sim.now();
    EXPECT_EQ(p.src, a);
  });
  f.net.send(Packet{a, b, 1250, 0, {}});
  f.sim.run_all();
  EXPECT_EQ(received, 1);
  // 1250 B at 10 Mb/s = 1 ms serialization + 5 ms propagation.
  EXPECT_NEAR((arrival - TimePoint{}).to_millis(), 6.0, 0.01);
}

TEST(Network, MultiHopRoutesViaShortestDelay) {
  Fixture f;
  const NodeId a = f.net.add_node("a");
  const NodeId m1 = f.net.add_node("m1");
  const NodeId m2 = f.net.add_node("m2");
  const NodeId b = f.net.add_node("b");
  // Short path a-m1-b (2+2), long path a-m2-b (10+10).
  f.net.add_link(a, m1, LinkConfig{DataRate::mbps(100.0), Duration::millis(2)});
  f.net.add_link(m1, b, LinkConfig{DataRate::mbps(100.0), Duration::millis(2)});
  f.net.add_link(a, m2, LinkConfig{DataRate::mbps(100.0), Duration::millis(10)});
  f.net.add_link(m2, b, LinkConfig{DataRate::mbps(100.0), Duration::millis(10)});

  EXPECT_EQ(f.net.hop_count(a, b), 2);
  EXPECT_NEAR(f.net.path_latency(a, b, 0).to_millis(), 4.0, 0.01);

  bool got = false;
  f.net.set_handler(b, [&](Packet&&) { got = true; });
  f.net.send(Packet{a, b, 100, 0, {}});
  f.sim.run_all();
  EXPECT_TRUE(got);
  EXPECT_GT(f.net.link_stats(a, m1).packets_sent, 0u);
  EXPECT_EQ(f.net.link_stats(a, m2).packets_sent, 0u);
}

TEST(Network, NoRouteDropsSilently) {
  Fixture f;
  const NodeId a = f.net.add_node("a");
  const NodeId b = f.net.add_node("b");  // Unconnected.
  EXPECT_FALSE(f.net.has_route(a, b));
  EXPECT_EQ(f.net.hop_count(a, b), -1);
  int received = 0;
  f.net.set_handler(b, [&](Packet&&) { ++received; });
  f.net.send(Packet{a, b, 100, 0, {}});
  f.sim.run_all();
  EXPECT_EQ(received, 0);
}

TEST(Network, SelfDeliveryIsImmediate) {
  Fixture f;
  const NodeId a = f.net.add_node("a");
  int received = 0;
  f.net.set_handler(a, [&](Packet&&) { ++received; });
  f.net.send(Packet{a, a, 100, 0, {}});
  f.sim.run_all();
  EXPECT_EQ(received, 1);
}

TEST(Network, SerializationQueuesBackToBackPackets) {
  Fixture f;
  const NodeId a = f.net.add_node("a");
  const NodeId b = f.net.add_node("b");
  // 1 Mb/s: a 1250 B packet takes 10 ms on the wire.
  f.net.add_link(a, b, LinkConfig{DataRate::mbps(1.0), Duration::millis(0),
                                  1 << 20});
  std::vector<double> arrivals;
  f.net.set_handler(b, [&](Packet&&) {
    arrivals.push_back(f.sim.now().to_millis());
  });
  for (int i = 0; i < 3; ++i) f.net.send(Packet{a, b, 1250, 0, {}});
  f.sim.run_all();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(arrivals[0], 10.0, 0.1);
  EXPECT_NEAR(arrivals[1], 20.0, 0.1);
  EXPECT_NEAR(arrivals[2], 30.0, 0.1);
}

TEST(Network, QueueOverflowDrops) {
  Fixture f;
  const NodeId a = f.net.add_node("a");
  const NodeId b = f.net.add_node("b");
  // Tiny queue: 2000 bytes of backlog allowed.
  f.net.add_link(a, b, LinkConfig{DataRate::mbps(1.0), Duration::millis(0),
                                  2000});
  int received = 0;
  f.net.set_handler(b, [&](Packet&&) { ++received; });
  for (int i = 0; i < 20; ++i) f.net.send(Packet{a, b, 1250, 0, {}});
  f.sim.run_all();
  EXPECT_LT(received, 20);
  EXPECT_GT(f.net.link_stats(a, b).packets_dropped, 0u);
  EXPECT_EQ(f.net.link_stats(a, b).packets_sent +
                f.net.link_stats(a, b).packets_dropped,
            20u);
}

TEST(Network, PathLatencyAccountsForPacketSize) {
  Fixture f;
  const NodeId a = f.net.add_node("a");
  const NodeId b = f.net.add_node("b");
  f.net.add_link(a, b, LinkConfig{DataRate::mbps(8.0), Duration::millis(1)});
  // 1000 B at 8 Mb/s = 1 ms + 1 ms propagation.
  EXPECT_NEAR(f.net.path_latency(a, b, 1000).to_millis(), 2.0, 0.01);
  EXPECT_NEAR(f.net.path_latency(a, b, 0).to_millis(), 1.0, 0.01);
}

TEST(Network, TopologyGrowsAfterTraffic) {
  // dLTE's openness claim depends on the substrate tolerating organic
  // growth: adding a node after routes were computed must work.
  Fixture f;
  const NodeId a = f.net.add_node("a");
  const NodeId b = f.net.add_node("b");
  f.net.add_link(a, b, LinkConfig{});
  f.net.send(Packet{a, b, 10, 0, {}});
  f.sim.run_all();

  const NodeId c = f.net.add_node("c");
  f.net.add_link(b, c, LinkConfig{});
  int received = 0;
  f.net.set_handler(c, [&](Packet&&) { ++received; });
  f.net.send(Packet{a, c, 10, 0, {}});
  f.sim.run_all();
  EXPECT_EQ(received, 1);
}

TEST(Network, NodeNamesStored) {
  Fixture f;
  const NodeId a = f.net.add_node("ap-papua-1");
  EXPECT_EQ(f.net.node_name(a), "ap-papua-1");
}

TEST(Network, ImpairedLinkDropsProbabilistically) {
  Fixture f;
  const NodeId a = f.net.add_node("a");
  const NodeId b = f.net.add_node("b");
  f.net.add_link(a, b, LinkConfig{DataRate::mbps(100.0),
                                  Duration::millis(1)});
  f.net.set_impairment_seed(42);
  f.net.set_link_impairment(a, b, LinkImpairment{0.5, Duration{}});
  int received = 0;
  f.net.set_handler(b, [&](Packet&&) { ++received; });
  const int sent = 400;
  for (int i = 0; i < sent; ++i) f.net.send(Packet{a, b, 100, 0, {}});
  f.sim.run_all();
  // ~50% loss; generous statistical bounds.
  EXPECT_GT(received, sent / 4);
  EXPECT_LT(received, sent * 3 / 4);
  const auto& stats = f.net.link_stats(a, b);
  EXPECT_EQ(stats.packets_lost_impaired + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(sent));
  // Impairment drops are also counted in the aggregate drop counter.
  EXPECT_EQ(stats.packets_dropped, stats.packets_lost_impaired);
}

TEST(Network, ImpairedLinkAddsLatency) {
  Fixture f;
  const NodeId a = f.net.add_node("a");
  const NodeId b = f.net.add_node("b");
  f.net.add_link(a, b, LinkConfig{DataRate::mbps(100.0),
                                  Duration::millis(5)});
  f.net.set_link_impairment(a, b,
                            LinkImpairment{0.0, Duration::millis(40)});
  TimePoint arrival;
  f.net.set_handler(b, [&](Packet&&) { arrival = f.sim.now(); });
  f.net.send(Packet{a, b, 0, 0, {}});
  f.sim.run_all();
  EXPECT_NEAR((arrival - TimePoint{}).to_millis(), 45.0, 0.1);
  // path_latency reflects the impairment too.
  EXPECT_NEAR(f.net.path_latency(a, b, 0).to_millis(), 45.0, 0.1);
}

TEST(Network, ClearingImpairmentRestoresCleanLink) {
  Fixture f;
  const NodeId a = f.net.add_node("a");
  const NodeId b = f.net.add_node("b");
  f.net.add_link(a, b, LinkConfig{DataRate::mbps(100.0),
                                  Duration::millis(1)});
  f.net.set_link_impairment(a, b, LinkImpairment{1.0, Duration{}});
  int received = 0;
  f.net.set_handler(b, [&](Packet&&) { ++received; });
  f.net.send(Packet{a, b, 100, 0, {}});
  f.sim.run_all();
  EXPECT_EQ(received, 0);
  f.net.set_link_impairment(a, b, LinkImpairment{});
  for (int i = 0; i < 10; ++i) f.net.send(Packet{a, b, 100, 0, {}});
  f.sim.run_all();
  EXPECT_EQ(received, 10);
}

TEST(Network, RemoteNodeHandsDeliveredPacketsToEgress) {
  Fixture f;
  obs::MetricsRegistry reg;
  f.net.set_metrics(&reg);
  const NodeId a = f.net.add_node("a");
  int egressed = 0;
  TimePoint at;
  const NodeId xg = f.net.add_remote_node("xg", [&](Packet&& p) {
    ++egressed;
    at = f.sim.now();
    EXPECT_EQ(p.protocol, 7);  // Payload tag survives the hand-off.
  });
  EXPECT_TRUE(f.net.is_remote(xg));
  EXPECT_FALSE(f.net.is_remote(a));
  f.net.add_link(a, xg, LinkConfig{DataRate::mbps(100.0),
                                   Duration::millis(3)});
  f.net.send(Packet{a, xg, 0, 7, {}});
  f.sim.run_all();
  EXPECT_EQ(egressed, 1);
  EXPECT_NEAR((at - TimePoint{}).to_millis(), 3.0, 0.01);
  EXPECT_EQ(reg.counter("net.remote_forwards").value(), 1u);
}

TEST(Network, MinLinkDelayQueries) {
  Fixture f;
  // No links at all: "never".
  EXPECT_EQ(f.net.min_link_delay().ns(),
            std::numeric_limits<std::int64_t>::max());
  const NodeId a = f.net.add_node("a");
  const NodeId b = f.net.add_node("b");
  const NodeId xg = f.net.add_remote_node("xg", [](Packet&&) {});
  f.net.add_link(a, b, LinkConfig{DataRate::mbps(100.0),
                                  Duration::millis(2)});
  f.net.add_link(b, xg, LinkConfig{DataRate::mbps(100.0),
                                   Duration::millis(5)});
  EXPECT_DOUBLE_EQ(f.net.min_link_delay().to_millis(), 2.0);
  // Only the b—xg link touches a remote node.
  EXPECT_DOUBLE_EQ(f.net.min_remote_link_delay().to_millis(), 5.0);
  // Disabling the local link leaves the remote one as the global min.
  f.net.set_link_enabled(a, b, false);
  EXPECT_DOUBLE_EQ(f.net.min_link_delay().to_millis(), 5.0);
}

}  // namespace
}  // namespace dlte::net
