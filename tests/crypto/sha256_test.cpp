#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dlte::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string to_hex(std::span<const std::uint8_t> d) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (std::uint8_t b : d) {
    s += digits[b >> 4];
    s += digits[b & 0xf];
  }
  return s;
}

// FIPS-180 known-answer vectors.
TEST(Sha256, EmptyInput) {
  EXPECT_EQ(
      to_hex(sha256({})),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(
      to_hex(sha256(bytes_of("abc"))),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(sha256(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactBlockBoundaryLengths) {
  // 55 bytes: padding fits one block; 56 bytes: padding spills to a second.
  const auto d55 = sha256(bytes_of(std::string(55, 'a')));
  const auto d56 = sha256(bytes_of(std::string(56, 'a')));
  const auto d64 = sha256(bytes_of(std::string(64, 'a')));
  EXPECT_NE(to_hex(d55), to_hex(d56));
  EXPECT_NE(to_hex(d56), to_hex(d64));
  // Regression: 64*'a' known value.
  EXPECT_EQ(
      to_hex(d64),
      "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(
      to_hex(hmac_sha256(key, bytes_of("Hi There"))),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(
      to_hex(hmac_sha256(bytes_of("Jefe"),
                         bytes_of("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 6: key longer than block size (hashed first).
TEST(HmacSha256, LongKeyIsHashed) {
  std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(
      to_hex(hmac_sha256(
          key, bytes_of("Test Using Larger Than Block-Size Key - Hash "
                        "Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

}  // namespace
}  // namespace dlte::crypto
