#include "crypto/milenage.h"

#include <gtest/gtest.h>

#include <string>

namespace dlte::crypto {
namespace {

template <std::size_t N>
std::array<std::uint8_t, N> from_hex_n(const std::string& hex) {
  std::array<std::uint8_t, N> out{};
  for (std::size_t i = 0; i < N; ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(i * 2, 2), nullptr, 16));
  }
  return out;
}

template <std::size_t N>
std::string to_hex(const std::array<std::uint8_t, N>& b) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (std::uint8_t byte : b) {
    s += digits[byte >> 4];
    s += digits[byte & 0xf];
  }
  return s;
}

// 3GPP TS 35.207 §4 Test Set 1.
struct TestSet1 {
  Key128 k = from_hex_n<16>("465b5ce8b199b49faa5f0a2ee238a6bc");
  Rand128 rand = from_hex_n<16>("23553cbe9637a89d218ae64dae47bf35");
  Sqn48 sqn = from_hex_n<6>("ff9bb4d0b607");
  Amf16 amf = from_hex_n<2>("b9b9");
  Block128 op = from_hex_n<16>("cdc202d5123e20f62b6d676ac72cb318");
};

TEST(Milenage, OpcDerivation) {
  TestSet1 t;
  EXPECT_EQ(to_hex(derive_opc(t.k, t.op)),
            "cd63cb71954a9f4e48a5994e37a02baf");
}

TEST(Milenage, F1MacA) {
  TestSet1 t;
  Milenage m{t.k, derive_opc(t.k, t.op)};
  const auto out = m.f1(t.rand, t.sqn, t.amf);
  EXPECT_EQ(to_hex(out.mac_a), "4a9ffac354dfafb3");
}

TEST(Milenage, F1StarMacS) {
  TestSet1 t;
  Milenage m{t.k, derive_opc(t.k, t.op)};
  const auto out = m.f1(t.rand, t.sqn, t.amf);
  EXPECT_EQ(to_hex(out.mac_s), "01cfaf9ec4e871e9");
}

TEST(Milenage, F2Response) {
  TestSet1 t;
  Milenage m{t.k, derive_opc(t.k, t.op)};
  EXPECT_EQ(to_hex(m.f2_f5(t.rand).res), "a54211d5e3ba50bf");
}

TEST(Milenage, F5AnonymityKey) {
  TestSet1 t;
  Milenage m{t.k, derive_opc(t.k, t.op)};
  EXPECT_EQ(to_hex(m.f2_f5(t.rand).ak), "aa689c648370");
}

TEST(Milenage, F3CipherKey) {
  TestSet1 t;
  Milenage m{t.k, derive_opc(t.k, t.op)};
  EXPECT_EQ(to_hex(m.f3(t.rand)), "b40ba9a3c58b2a05bbf0d987b21bf8cb");
}

TEST(Milenage, F4IntegrityKey) {
  TestSet1 t;
  Milenage m{t.k, derive_opc(t.k, t.op)};
  EXPECT_EQ(to_hex(m.f4(t.rand)), "f769bcd751044604127672711c6d3441");
}

TEST(Milenage, F5StarResyncKey) {
  TestSet1 t;
  Milenage m{t.k, derive_opc(t.k, t.op)};
  EXPECT_EQ(to_hex(m.f5_star(t.rand)), "451e8beca43b");
}

// The mutual-authentication property dLTE's open-key mode rests on: any
// party holding (K, OPc) — e.g. an AP that fetched published keys from
// the registry — computes the same vector the USIM expects.
TEST(Milenage, TwoPartiesAgree) {
  TestSet1 t;
  const Block128 opc = derive_opc(t.k, t.op);
  Milenage hss{t.k, opc};
  Milenage usim{t.k, opc};
  EXPECT_EQ(to_hex(hss.f2_f5(t.rand).res), to_hex(usim.f2_f5(t.rand).res));
  EXPECT_EQ(to_hex(hss.f3(t.rand)), to_hex(usim.f3(t.rand)));
  EXPECT_EQ(to_hex(hss.f1(t.rand, t.sqn, t.amf).mac_a),
            to_hex(usim.f1(t.rand, t.sqn, t.amf).mac_a));
}

TEST(Milenage, WrongKeyFailsAgreement) {
  TestSet1 t;
  const Block128 opc = derive_opc(t.k, t.op);
  Key128 wrong = t.k;
  wrong[0] ^= 0x01;
  Milenage hss{t.k, opc};
  Milenage impostor{wrong, opc};
  EXPECT_NE(to_hex(hss.f2_f5(t.rand).res),
            to_hex(impostor.f2_f5(t.rand).res));
}

}  // namespace
}  // namespace dlte::crypto
