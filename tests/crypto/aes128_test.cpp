#include "crypto/aes128.h"

#include <gtest/gtest.h>

#include <string>

namespace dlte::crypto {
namespace {

Block128 from_hex(const std::string& hex) {
  Block128 out{};
  for (std::size_t i = 0; i < 16; ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(i * 2, 2), nullptr, 16));
  }
  return out;
}

std::string to_hex(const Block128& b) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (std::uint8_t byte : b) {
    s += digits[byte >> 4];
    s += digits[byte & 0xf];
  }
  return s;
}

// FIPS-197 Appendix C.1 known-answer vector.
TEST(Aes128, Fips197AppendixC1) {
  const Key128 key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Block128 pt = from_hex("00112233445566778899aabbccddeeff");
  Aes128 aes{key};
  EXPECT_EQ(to_hex(aes.encrypt(pt)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// FIPS-197 Appendix B example.
TEST(Aes128, Fips197AppendixB) {
  const Key128 key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block128 pt = from_hex("3243f6a8885a308d313198a2e0370734");
  Aes128 aes{key};
  EXPECT_EQ(to_hex(aes.encrypt(pt)), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, DifferentKeysDifferentCiphertext) {
  const Block128 pt = from_hex("00000000000000000000000000000000");
  Aes128 a{from_hex("00000000000000000000000000000001")};
  Aes128 b{from_hex("00000000000000000000000000000002")};
  EXPECT_NE(to_hex(a.encrypt(pt)), to_hex(b.encrypt(pt)));
}

TEST(Aes128, DeterministicEncryption) {
  const Key128 key = from_hex("465b5ce8b199b49faa5f0a2ee238a6bc");
  const Block128 pt = from_hex("23553cbe9637a89d218ae64dae47bf35");
  Aes128 aes{key};
  EXPECT_EQ(to_hex(aes.encrypt(pt)), to_hex(aes.encrypt(pt)));
}

TEST(XorBlocks, BasicProperties) {
  const Block128 a = from_hex("ffffffffffffffffffffffffffffffff");
  const Block128 b = from_hex("0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f");
  EXPECT_EQ(to_hex(xor_blocks(a, b)), "f0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f0");
  EXPECT_EQ(to_hex(xor_blocks(a, a)), "00000000000000000000000000000000");
}

}  // namespace
}  // namespace dlte::crypto
