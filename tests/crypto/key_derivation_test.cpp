#include "crypto/key_derivation.h"

#include <gtest/gtest.h>

namespace dlte::crypto {
namespace {

Ck128 test_ck() {
  Ck128 ck{};
  for (std::size_t i = 0; i < 16; ++i) ck[i] = static_cast<std::uint8_t>(i);
  return ck;
}

Ik128 test_ik() {
  Ik128 ik{};
  for (std::size_t i = 0; i < 16; ++i) {
    ik[i] = static_cast<std::uint8_t>(0xf0 + i);
  }
  return ik;
}

TEST(KeyDerivation, KasmeIsDeterministic) {
  const Sqn48 sa{1, 2, 3, 4, 5, 6};
  const auto k1 = derive_kasme(test_ck(), test_ik(), "dlte-ap-001", sa);
  const auto k2 = derive_kasme(test_ck(), test_ik(), "dlte-ap-001", sa);
  EXPECT_EQ(k1, k2);
}

// The serving-network binding: a session key derived for one AP is useless
// at another — this is what scopes a dLTE session to one local core even
// with published (open) subscriber keys.
TEST(KeyDerivation, KasmeBoundToServingNetwork) {
  const Sqn48 sa{1, 2, 3, 4, 5, 6};
  const auto k1 = derive_kasme(test_ck(), test_ik(), "dlte-ap-001", sa);
  const auto k2 = derive_kasme(test_ck(), test_ik(), "dlte-ap-002", sa);
  EXPECT_NE(k1, k2);
}

TEST(KeyDerivation, KasmeDependsOnSqn) {
  const auto k1 =
      derive_kasme(test_ck(), test_ik(), "net", Sqn48{0, 0, 0, 0, 0, 1});
  const auto k2 =
      derive_kasme(test_ck(), test_ik(), "net", Sqn48{0, 0, 0, 0, 0, 2});
  EXPECT_NE(k1, k2);
}

TEST(KeyDerivation, KenbDependsOnNasCount) {
  const auto kasme =
      derive_kasme(test_ck(), test_ik(), "net", Sqn48{1, 2, 3, 4, 5, 6});
  EXPECT_NE(derive_kenb(kasme, 0), derive_kenb(kasme, 1));
  EXPECT_EQ(derive_kenb(kasme, 7), derive_kenb(kasme, 7));
}

TEST(KeyDerivation, NasKeysSeparatedByAlgorithmIdentity) {
  const auto kasme =
      derive_kasme(test_ck(), test_ik(), "net", Sqn48{1, 2, 3, 4, 5, 6});
  // Integrity (type 0x02) vs ciphering (type 0x01) keys must differ, as
  // must different algorithm ids of the same type.
  EXPECT_NE(derive_nas_key(kasme, 0x01, 1), derive_nas_key(kasme, 0x02, 1));
  EXPECT_NE(derive_nas_key(kasme, 0x01, 1), derive_nas_key(kasme, 0x01, 2));
}

}  // namespace
}  // namespace dlte::crypto
