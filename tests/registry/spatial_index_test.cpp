#include "registry/spatial.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace dlte::registry {
namespace {

constexpr double kZone = 50'000.0;

SiteEntry site(std::uint64_t id, double x, double y, double range_m,
               double center_mhz = 3550.0, double bw_mhz = 10.0) {
  SiteEntry e;
  e.id = id;
  e.location = Position{x, y};
  e.range_m = range_m;
  e.center_hz = center_mhz * 1e6;
  e.half_bw_hz = bw_mhz * 1e6 / 2.0;
  return e;
}

std::vector<std::uint64_t> reaching_ids(const SpatialIndex& index,
                                        Position pos) {
  std::vector<std::uint64_t> ids;
  index.for_each_reaching(pos, [&](const SiteEntry& e) { ids.push_back(e.id); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(ZoneKey, ExactAndDistinct) {
  // Adjacent zones, including negative coordinates, never collide.
  const auto a = zone_key(Position{0.0, 0.0}, kZone);
  const auto b = zone_key(Position{kZone + 1.0, 0.0}, kZone);
  const auto c = zone_key(Position{0.0, kZone + 1.0}, kZone);
  const auto d = zone_key(Position{-1.0, 0.0}, kZone);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  EXPECT_NE(a, d);
  // Same zone → same key, wherever in the square.
  EXPECT_EQ(a, zone_key(Position{kZone - 1.0, kZone - 1.0}, kZone));
  EXPECT_EQ(zone_key(Position{2.5 * kZone, 3.5 * kZone}, kZone),
            zone_key_of(2, 3));
}

TEST(SpatialIndex, ReachingMatchesPredicate) {
  SpatialIndex index{kZone};
  index.insert(site(1, 0.0, 0.0, 10'000.0));        // Covers origin area.
  index.insert(site(2, 8'000.0, 0.0, 10'000.0));    // Also covers origin.
  index.insert(site(3, 30'000.0, 0.0, 10'000.0));   // Too far.
  index.insert(site(4, 60'000.0, 0.0, 70'000.0));   // Next zone, huge reach.
  EXPECT_EQ(reaching_ids(index, Position{0.0, 0.0}),
            (std::vector<std::uint64_t>{1, 2, 4}));
  EXPECT_EQ(index.size(), 4u);
}

TEST(SpatialIndex, CrossZoneReachIsFound) {
  SpatialIndex index{kZone};
  // Entry sits near its zone's edge; its reach spills into the next zone.
  index.insert(site(7, kZone - 100.0, 100.0, 5'000.0));
  EXPECT_EQ(reaching_ids(index, Position{kZone + 1'000.0, 100.0}),
            (std::vector<std::uint64_t>{7}));
  // Beyond the reach: nothing.
  EXPECT_TRUE(reaching_ids(index, Position{kZone + 20'000.0, 100.0}).empty());
}

TEST(SpatialIndex, EraseRemovesExactly) {
  SpatialIndex index{kZone};
  index.insert(site(1, 0.0, 0.0, 10'000.0));
  index.insert(site(2, 100.0, 0.0, 10'000.0));
  EXPECT_TRUE(index.erase(1, Position{0.0, 0.0}));
  EXPECT_FALSE(index.erase(1, Position{0.0, 0.0}));  // Already gone.
  EXPECT_FALSE(index.erase(99, Position{0.0, 0.0}));
  EXPECT_EQ(reaching_ids(index, Position{0.0, 0.0}),
            (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(index.size(), 1u);
}

TEST(SpatialIndex, ContendingFiltersBandAndSelf) {
  SpatialIndex index{kZone};
  index.insert(site(1, 0.0, 0.0, 10'000.0, 3550.0));
  index.insert(site(2, 1'000.0, 0.0, 10'000.0, 3550.0));  // Co-channel.
  index.insert(site(3, 1'000.0, 0.0, 10'000.0, 3555.0));  // Overlapping.
  index.insert(site(4, 1'000.0, 0.0, 10'000.0, 3580.0));  // Disjoint band.
  std::vector<std::uint64_t> ids;
  index.for_each_contending(Position{0.0, 0.0}, 3550.0 * 1e6, 5.0 * 1e6,
                            10'000.0, /*skip_id=*/1,
                            [&](const SiteEntry& e) { ids.push_back(e.id); });
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 3}));
}

TEST(SpatialIndex, ContendingUsesMaxOfRanges) {
  SpatialIndex index{kZone};
  // Entry too far for its own 1 km reach, but the querier reaches 30 km:
  // contention is symmetric, max(own, entry) applies.
  index.insert(site(5, 20'000.0, 0.0, 1'000.0, 3550.0));
  std::vector<std::uint64_t> ids;
  index.for_each_contending(Position{0.0, 0.0}, 3550.0 * 1e6, 5.0 * 1e6,
                            30'000.0, 0,
                            [&](const SiteEntry& e) { ids.push_back(e.id); });
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{5}));
}

TEST(SpatialIndex, ContendingFindsShortReachEntryAcrossZones) {
  SpatialIndex index{kZone};
  // Entry in the next zone with a tiny 1 km reach: the gap from the
  // query point to its zone (10 km) exceeds every reach indexed there,
  // but the querier's own 70 km range still covers it. The zone-level
  // reject must honour the querier-side floor, not just the zone max.
  index.insert(site(6, 60'000.0, 0.0, 1'000.0, 3550.0));
  std::vector<std::uint64_t> ids;
  index.for_each_contending(Position{0.0, 0.0}, 3550.0 * 1e6, 5.0 * 1e6,
                            70'000.0, 0,
                            [&](const SiteEntry& e) { ids.push_back(e.id); });
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{6}));
  // A reaching query at the same point must NOT see it: 1 km reach
  // cannot cover the origin, floor only applies to contention.
  EXPECT_TRUE(reaching_ids(index, Position{0.0, 0.0}).empty());
}

TEST(SpatialIndex, TouchingZoneSnapshot) {
  SpatialIndex index{kZone};
  const std::int64_t zone = zone_key_of(0, 0);
  index.insert(site(1, 1'000.0, 1'000.0, 500.0));           // Inside.
  index.insert(site(2, kZone + 3'000.0, 100.0, 5'000.0));   // Reaches in.
  index.insert(site(3, kZone + 30'000.0, 100.0, 5'000.0));  // Does not.
  std::vector<std::uint64_t> ids;
  index.for_each_touching_zone(zone,
                               [&](const SiteEntry& e) { ids.push_back(e.id); });
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2}));
}

TEST(SpatialIndex, VisitOrderIsDeterministic) {
  // Two identically-built indexes produce the same visit sequence.
  SpatialIndex a{kZone};
  SpatialIndex b{kZone};
  for (int i = 0; i < 200; ++i) {
    const auto e = site(static_cast<std::uint64_t>(i + 1),
                        (i % 17) * 9'000.0, (i % 13) * 11'000.0, 12'000.0,
                        3550.0 + (i % 4) * 10.0);
    a.insert(e);
    b.insert(e);
  }
  std::vector<std::uint64_t> seq_a;
  std::vector<std::uint64_t> seq_b;
  a.for_each_reaching(Position{40'000.0, 40'000.0},
                      [&](const SiteEntry& e) { seq_a.push_back(e.id); });
  b.for_each_reaching(Position{40'000.0, 40'000.0},
                      [&](const SiteEntry& e) { seq_b.push_back(e.id); });
  EXPECT_FALSE(seq_a.empty());
  EXPECT_EQ(seq_a, seq_b);
}

}  // namespace
}  // namespace dlte::registry
