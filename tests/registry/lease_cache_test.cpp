#include "registry/cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "obs/metrics.h"

namespace dlte::registry {
namespace {

TimePoint at(double seconds) { return TimePoint{} + Duration::seconds(seconds); }

ZoneSnapshot snap(std::vector<std::uint64_t> ids) {
  return std::make_shared<const std::vector<std::uint64_t>>(std::move(ids));
}

CacheConfig small_config() {
  CacheConfig c;
  c.local_ttl = Duration::seconds(2.0);
  c.zone_ttl = Duration::seconds(10.0);
  c.root_ttl = Duration::seconds(60.0);
  c.root_capacity = 2;
  c.capacity_window = Duration::seconds(1.0);
  return c;
}

TEST(LeaseCache, MissThenFillThenLocalHit) {
  LeaseCache cache{small_config()};
  auto miss = cache.lookup(7, 1, 1, at(0.0));
  EXPECT_EQ(miss.tier, CacheTier::kAuthoritative);
  EXPECT_EQ(miss.snapshot, nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  cache.fill(7, 1, 1, snap({10, 11}), at(0.0));
  auto hit = cache.lookup(7, 1, 1, at(1.0));
  EXPECT_EQ(hit.tier, CacheTier::kLocal);
  EXPECT_FALSE(hit.stale);
  ASSERT_NE(hit.snapshot, nullptr);
  EXPECT_EQ(hit.snapshot->size(), 2u);
  EXPECT_EQ(cache.hits_local(), 1u);
}

TEST(LeaseCache, TierWalkRefillsLowerTiers) {
  LeaseCache cache{small_config()};
  cache.fill(7, 1, 1, snap({10}), at(0.0));
  // Past local TTL (2s) but inside zone TTL (10s): zone tier serves and
  // refills requester 7's local entry with the ORIGINAL fill time.
  auto z = cache.lookup(7, 1, 1, at(5.0));
  EXPECT_EQ(z.tier, CacheTier::kZone);
  EXPECT_DOUBLE_EQ(z.age_ms, 5'000.0);
  // The refilled local entry still carries filled_at = 0, so it is
  // already past the local TTL again — next lookup is another zone hit,
  // not a bogus "fresh" local hit.
  auto z2 = cache.lookup(7, 1, 1, at(6.0));
  EXPECT_EQ(z2.tier, CacheTier::kZone);
  // A different requester never filled locally: also a zone hit.
  auto other = cache.lookup(8, 1, 1, at(5.5));
  EXPECT_EQ(other.tier, CacheTier::kZone);
}

TEST(LeaseCache, TtlExpiryIsDeterministic) {
  LeaseCache cache{small_config()};
  cache.fill(7, 1, 1, snap({10}), at(0.0));
  // Exactly at the zone TTL boundary: still fresh (<=).
  EXPECT_EQ(cache.lookup(7, 1, 1, at(10.0)).tier, CacheTier::kZone);
  // Past every TTL except root (60s): root serves.
  EXPECT_EQ(cache.lookup(7, 1, 1, at(10.001)).tier, CacheTier::kRoot);
  // Past the root TTL: authoritative fall-through.
  EXPECT_EQ(cache.lookup(7, 1, 1, at(61.0)).tier, CacheTier::kAuthoritative);
}

TEST(LeaseCache, StaleServeBeforeAuthoritativeFallback) {
  LeaseCache cache{small_config()};
  cache.fill(7, 1, /*version=*/3, snap({10}), at(0.0));
  // Authoritative version moved to 5: inside TTL the cache still serves
  // (DNS semantics) but counts the serve as stale.
  auto stale = cache.lookup(7, 1, /*version=*/5, at(1.0));
  EXPECT_EQ(stale.tier, CacheTier::kLocal);
  EXPECT_TRUE(stale.stale);
  EXPECT_EQ(cache.stale_serves(), 1u);
  // Once the TTL runs out the stale entry is NOT served: authoritative.
  auto after = cache.lookup(7, 1, /*version=*/5, at(61.0));
  EXPECT_EQ(after.tier, CacheTier::kAuthoritative);
  EXPECT_FALSE(after.stale);
}

TEST(LeaseCache, RootShedsExactlyPastCapacity) {
  LeaseCache cache{small_config()};  // root_capacity = 2 per 1 s window.
  cache.fill(1, 1, 1, snap({10}), at(0.0));
  // Root-tier serves need the local+zone tiers cold: use distinct
  // requesters past the zone TTL... simpler: age past zone TTL so only
  // the root is fresh.
  EXPECT_EQ(cache.lookup(1, 1, 1, at(20.0)).tier, CacheTier::kRoot);
  // Re-age: lookups refill zone with original filled_at (still expired),
  // so the next lookup hits root again inside the same window.
  EXPECT_EQ(cache.lookup(2, 1, 1, at(20.1)).tier, CacheTier::kRoot);
  // Third root admission in the window: exactly past capacity → shed.
  auto shed = cache.lookup(3, 1, 1, at(20.2));
  EXPECT_EQ(shed.tier, CacheTier::kShed);
  EXPECT_EQ(shed.snapshot, nullptr);
  EXPECT_EQ(cache.root_sheds(), 1u);
  // Next window (grid-anchored at t=0): capacity resets.
  EXPECT_EQ(cache.lookup(4, 1, 1, at(21.0)).tier, CacheTier::kRoot);
}

TEST(LeaseCache, InvalidateDropsEveryTier) {
  LeaseCache cache{small_config()};
  cache.fill(7, 1, 1, snap({10}), at(0.0));
  cache.fill(7, 2, 1, snap({20}), at(0.0));
  cache.invalidate(1);
  EXPECT_EQ(cache.lookup(7, 1, 1, at(0.5)).tier, CacheTier::kAuthoritative);
  // Other zones untouched.
  EXPECT_EQ(cache.lookup(7, 2, 1, at(0.5)).tier, CacheTier::kLocal);
}

TEST(LeaseCache, MetricsMirrorTallies) {
  obs::MetricsRegistry metrics;
  LeaseCache cache{small_config()};
  cache.set_metrics(&metrics, "reg.");
  (void)cache.lookup(7, 1, 1, at(0.0));  // Miss.
  cache.fill(7, 1, 1, snap({10}), at(0.0));
  (void)cache.lookup(7, 1, /*version=*/2, at(1.0));  // Stale local hit.
  EXPECT_EQ(metrics.counter("reg.registry.cache.misses").value(), 1u);
  EXPECT_EQ(metrics.counter("reg.registry.cache.hits_local").value(), 1u);
  EXPECT_EQ(metrics.counter("reg.registry.cache.stale_serves").value(), 1u);
  EXPECT_EQ(metrics.histogram("reg.registry.cache.staleness_ms").count(), 1u);
}

}  // namespace
}  // namespace dlte::registry
