// Batched commit windows for the blockchain registry (DESIGN.md §16):
// per-block record caps, commits_per_block accounting, and the
// kCommitStall × batch interaction.
#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.h"
#include "spectrum/chain.h"
#include "spectrum/registry.h"

namespace dlte::spectrum {
namespace {

ChainRecord grant_record(std::uint8_t tag) {
  return ChainRecord{ChainRecordKind::kGrant, {tag, 0x01, 0x02}};
}

GrantRequest cbrs_request(std::uint32_t ap) {
  GrantRequest r;
  r.ap = ApId{ap};
  r.location = Position{ap * 100.0, 0.0};
  r.center_frequency = Hertz::mhz(3550.0);
  r.bandwidth = Hertz::mhz(10.0);
  r.operator_contact = "op" + std::to_string(ap) + "@example.net";
  r.coordination_node = NodeId{ap};
  return r;
}

TEST(BatchCommit, CapSlicesFifoAcrossBlocks) {
  sim::Simulator sim;
  SpectrumChain chain{sim, Duration::seconds(10.0)};
  chain.set_max_records_per_block(2);
  chain.start();
  std::vector<std::uint64_t> heights(5, 0);
  for (std::uint8_t i = 0; i < 5; ++i) {
    chain.submit(grant_record(i),
                 [&heights, i](std::uint64_t h) { heights[i] = h; });
  }
  sim.run_until(sim.now() + Duration::seconds(35.0));
  // 5 records at 2/block: blocks of 2, 2, 1 — strictly FIFO.
  ASSERT_EQ(chain.block_count(), 4u);  // Genesis + 3.
  EXPECT_EQ(chain.block(1).records.size(), 2u);
  EXPECT_EQ(chain.block(2).records.size(), 2u);
  EXPECT_EQ(chain.block(3).records.size(), 1u);
  EXPECT_EQ(heights, (std::vector<std::uint64_t>{1, 1, 2, 2, 3}));
  EXPECT_EQ(chain.block(1).records[0].payload[0], 0u);
  EXPECT_EQ(chain.block(3).records[0].payload[0], 4u);
  EXPECT_TRUE(chain.verify());
}

TEST(BatchCommit, UncappedKeepsHistoricalBehaviour) {
  sim::Simulator sim;
  SpectrumChain chain{sim, Duration::seconds(10.0)};
  chain.start();
  for (std::uint8_t i = 0; i < 7; ++i) chain.submit(grant_record(i));
  sim.run_until(sim.now() + Duration::seconds(11.0));
  ASSERT_EQ(chain.block_count(), 2u);
  EXPECT_EQ(chain.block(1).records.size(), 7u);
}

TEST(BatchCommit, MetricsTrackBatchEfficiency) {
  sim::Simulator sim;
  obs::MetricsRegistry metrics;
  SpectrumChain chain{sim, Duration::seconds(10.0)};
  chain.set_max_records_per_block(4);
  chain.set_metrics(&metrics, "reg.");
  chain.start();
  for (std::uint8_t i = 0; i < 6; ++i) chain.submit(grant_record(i));
  sim.run_until(sim.now() + Duration::seconds(10.5));
  // First seal: 4 committed, 2 still pending.
  EXPECT_EQ(metrics.counter("reg.registry.blocks_sealed").value(), 1u);
  EXPECT_EQ(metrics.histogram("reg.registry.commits_per_block").count(), 1u);
  EXPECT_DOUBLE_EQ(metrics.gauge("reg.registry.commit_backlog").value(), 2.0);
  sim.run_until(sim.now() + Duration::seconds(10.0));
  EXPECT_EQ(metrics.counter("reg.registry.blocks_sealed").value(), 2u);
  EXPECT_DOUBLE_EQ(metrics.gauge("reg.registry.commit_backlog").value(), 0.0);
}

TEST(BatchCommit, ThroughputScalesWithBatchSize) {
  // The C12 acceptance shape in miniature: same offered load, same
  // horizon — commit throughput grows >= 4x from batch=1 to batch=64.
  auto committed_with_cap = [](std::size_t cap) {
    sim::Simulator sim;
    SpectrumChain chain{sim, Duration::seconds(1.0)};
    chain.set_max_records_per_block(cap);
    chain.start();
    std::uint64_t committed = 0;
    for (int i = 0; i < 1'000; ++i) {
      chain.submit(grant_record(static_cast<std::uint8_t>(i)),
                   [&committed](std::uint64_t) { ++committed; });
    }
    sim.run_until(sim.now() + Duration::seconds(10.0));
    return committed;
  };
  const auto batch1 = committed_with_cap(1);
  const auto batch64 = committed_with_cap(64);
  EXPECT_EQ(batch1, 10u);   // One record per 1 s block.
  EXPECT_EQ(batch64, 640u);  // 64 per block.
  EXPECT_GE(batch64, 4 * batch1);
}

TEST(BatchCommit, StalledBatchReplaysThroughChain) {
  // kCommitStall defers grant commits; on recovery the whole stalled
  // batch replays in submission order and commits by block inclusion.
  sim::Simulator sim;
  SpectrumChain chain{sim, Duration::seconds(5.0)};
  chain.set_max_records_per_block(64);
  chain.start();
  Registry reg{sim, RegistryKind::kBlockchain};
  reg.attach_chain(&chain);

  reg.set_outage(RegistryOutage::kCommitStall);
  std::vector<std::uint64_t> granted;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    reg.request_grant(cbrs_request(i),
                      [&granted](Result<SpectrumGrant> result) {
                        ASSERT_TRUE(result.ok());
                        granted.push_back(result->id.value());
                      });
  }
  sim.run_until(sim.now() + Duration::seconds(20.0));
  EXPECT_TRUE(granted.empty());  // Stalled: nothing commits.

  reg.set_outage(RegistryOutage::kNone);
  sim.run_until(sim.now() + Duration::seconds(20.0));
  // The batch lands together, in submission order.
  ASSERT_EQ(granted.size(), 8u);
  for (std::size_t i = 1; i < granted.size(); ++i) {
    EXPECT_LT(granted[i - 1], granted[i]);
  }
  EXPECT_EQ(reg.grant_count(), 8u);
  EXPECT_TRUE(chain.verify());
}

}  // namespace
}  // namespace dlte::spectrum
