// Quickstart: bring up one dLTE access point and serve a phone.
//
// The minimal end-to-end path through the library:
//   1. create the simulated world (event loop, IP substrate, radio env);
//   2. stand up an access point (eNodeB + local core stub + coordinator);
//   3. let it acquire a spectrum grant from the open registry;
//   4. publish a subscriber's keys (the §4.2 open-identity flow);
//   5. attach the phone — full RRC + EPS-AKA against the on-box core;
//   6. pass data and read the counters.
#include <iostream>
#include <memory>
#include <string>

#include "core/access_point.h"
#include "obs/trace_export.h"
#include "ue/mobility.h"

using namespace dlte;

int main(int argc, char** argv) {
  // Optional: `--trace-out=<file>` exports a causal span trace of the
  // whole bring-up + attach as Chrome trace-event JSON (open it in
  // ui.perfetto.dev or chrome://tracing).
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::string("--trace-out=").size());
    }
  }

  // 1. World.
  sim::Simulator sim;
  std::unique_ptr<obs::SpanTracer> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<obs::SpanTracer>([&sim] { return sim.now(); });
  }
  net::Network net{sim};
  net.set_tracer(tracer.get());
  core::RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};
  registry.set_tracer(tracer.get());

  const NodeId internet = net.add_node("internet");
  const NodeId ap_node = net.add_node("barn-roof-ap");
  net.add_link(ap_node, internet,
               net::LinkConfig{DataRate::mbps(50.0), Duration::millis(15)});

  // 2. The access point: one box, whole network.
  core::ApConfig cfg;
  cfg.id = ApId{1};
  cfg.cell = CellId{1};
  cfg.position = Position{0.0, 0.0};
  cfg.operator_contact = "farmer@valley.example";
  core::DlteAccessPoint ap{sim, net, ap_node, radio, cfg};
  ap.set_span_tracer(tracer.get());

  // 3. License + peer discovery through the registry.
  ap.bring_up(registry, [&](bool ok) {
    std::cout << "[" << sim.now().to_seconds() << "s] grant "
              << (ok ? "acquired" : "REFUSED") << ", band 5 @ "
              << ap.grant().center_frequency.to_mhz() << " MHz\n";
  });
  sim.run_until(sim.now() + Duration::seconds(1.0));

  // 4. A phone with an open identity: keys published in the registry so
  //    any dLTE AP can authenticate it.
  crypto::Key128 k{};
  k[0] = 0x46;
  crypto::Block128 op{};
  op[0] = 0xcd;
  const Imsi imsi{510995550001234ULL};
  registry.publish_subscriber(
      epc::PublishedKeys{imsi, k, crypto::derive_opc(k, op)});
  std::cout << "published subscriber keys for IMSI " << imsi.value()
            << " (open identity)\n";
  const std::size_t imported = ap.import_published_subscribers(registry);
  std::cout << "AP imported " << imported
            << " published identities into its local HSS\n";

  core::UeDevice phone{
      ue::SimProfile{imsi, k, crypto::derive_opc(k, op), true, "open-dlte"},
      std::make_unique<ue::StaticMobility>(Position{1800.0, 400.0})};

  // 5. Attach: the standard LTE dialogue, served entirely on the AP.
  ap.attach(phone, mac::UeTrafficConfig{.full_buffer = true},
            [&](core::AttachOutcome o) {
              std::cout << "[" << sim.now().to_seconds() << "s] attach "
                        << (o.success ? "OK" : "FAILED") << " in "
                        << o.elapsed.to_millis() << " ms, UE IP "
                        << net::Ipv4{o.ue_ip}.to_string() << "\n";
            });
  sim.run_until(sim.now() + Duration::seconds(1.0));

  // 6. Data: run the cell for two seconds of full-buffer downlink.
  ap.cell_mac().run(Duration::seconds(2.0));
  for (UeId id : ap.cell_mac().ue_ids()) {
    const auto& st = ap.cell_mac().stats(id);
    std::cout << "downlink goodput at 1.8 km: "
              << st.goodput(ap.cell_mac().elapsed()).to_mbps()
              << " Mb/s (HARQ retx: " << st.harq_retransmissions << ")\n";
  }
  std::cout << "sessions on the local core: "
            << ap.core().gateway().session_count()
            << ", billing records: " << ap.core().cdr_count()
            << " (the stub does not bill — §4.1)\n";

  if (tracer != nullptr) {
    if (obs::ChromeTraceExporter::write_file(*tracer, trace_out)) {
      std::cout << "span trace (" << tracer->spans().size()
                << " spans) written to " << trace_out
                << " — load it in ui.perfetto.dev\n";
    } else {
      std::cerr << "failed to write trace to " << trace_out << "\n";
      return 1;
    }
  }
  return 0;
}
