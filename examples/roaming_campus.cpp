// Roaming: endpoint mobility across two independently-owned dLTE APs.
//
// A student walks from the farm co-op's AP to the school's AP. The two
// APs never share core state — there is no MME handover. Instead (§4.2):
// the phone re-attaches at the new AP, gets a new public address, and the
// QUIC-like transport migrates the application connection. We narrate the
// timeline and measure the application-visible gap.
#include <iostream>

#include "core/access_point.h"
#include "transport/transport.h"
#include "ue/mobility.h"
#include "workload/ott_service.h"
#include "workload/sources.h"

using namespace dlte;

int main() {
  sim::Simulator sim;
  net::Network net{sim};
  core::RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};

  const NodeId internet = net.add_node("internet");
  const NodeId coop_node = net.add_node("coop-ap");
  const NodeId school_node = net.add_node("school-ap");
  const NodeId chat_node = net.add_node("chat-service");
  const net::LinkConfig isp{DataRate::mbps(50.0), Duration::millis(15)};
  net.add_link(coop_node, internet, isp);
  net.add_link(school_node, internet, isp);
  net.add_link(internet, chat_node,
               net::LinkConfig{DataRate::mbps(1000.0), Duration::millis(20)});

  auto make_ap = [&](std::uint32_t id, NodeId node, double x,
                     const char* contact) {
    core::ApConfig cfg;
    cfg.id = ApId{id};
    cfg.cell = CellId{id};
    cfg.position = Position{x, 0.0};
    cfg.operator_contact = contact;
    return std::make_unique<core::DlteAccessPoint>(sim, net, node, radio,
                                                   cfg);
  };
  auto coop = make_ap(1, coop_node, 0.0, "coop@valley.example");
  auto school = make_ap(2, school_node, 7'000.0, "it@school.example");
  coop->bring_up(registry);
  school->bring_up(registry);
  sim.run_until(sim.now() + Duration::seconds(1.0));

  // The student's phone, walking toward the school.
  crypto::Key128 k{};
  k[0] = 0x31;
  crypto::Block128 op{};
  op[0] = 0xcd;
  const Imsi imsi{510991234500042ULL};
  registry.publish_subscriber(
      epc::PublishedKeys{imsi, k, crypto::derive_opc(k, op)});
  coop->import_published_subscribers(registry);
  school->import_published_subscribers(registry);

  core::UeDevice phone{
      ue::SimProfile{imsi, k, crypto::derive_opc(k, op), true, "open"},
      std::make_unique<ue::LinearMobility>(Position{1'000.0, 100.0}, 1.5,
                                           0.0)};

  // Attach at the co-op, then start a chat/voice stream to the service.
  // The UE's data plane breaks out at its serving AP, so its transport
  // endpoint lives on that AP's node and moves when it re-attaches.
  workload::OttService chat{sim, net, chat_node};
  transport::TransportHost at_coop{sim, net, coop_node};
  transport::TransportHost at_school{sim, net, school_node};

  transport::Connection* conn = nullptr;
  coop->attach(phone, mac::UeTrafficConfig{.offered = DataRate::kbps(128.0)},
               [&](core::AttachOutcome o) {
                 std::cout << "[" << sim.now().to_seconds()
                           << "s] attached at co-op ("
                           << o.elapsed.to_millis() << " ms), address "
                           << net::Ipv4{o.ue_ip}.to_string() << "\n";
                 conn = &at_coop.connect(chat_node,
                                         transport::TransportConfig{});
               });
  sim.run_until(sim.now() + Duration::seconds(1.0));

  workload::CbrSource voice{sim, *conn, DataRate::kbps(128.0)};
  voice.start();
  sim.run_until(sim.now() + Duration::seconds(10.0));
  std::cout << "[" << sim.now().to_seconds() << "s] streaming 128 kb/s, "
            << chat.delivered_bytes(conn->id()) / 1000.0
            << " kB delivered so far\n";

  // Walk out of co-op coverage: re-attach at the school and migrate.
  const TimePoint move_at = sim.now();
  school->attach(phone, mac::UeTrafficConfig{.offered = DataRate::kbps(128.0)},
                 [&](core::AttachOutcome o) {
                   std::cout << "[" << sim.now().to_seconds()
                             << "s] re-attached at school ("
                             << o.elapsed.to_millis()
                             << " ms), new address "
                             << net::Ipv4{o.ue_ip}.to_string()
                             << " — migrating the chat connection\n";
                   conn->rebind(at_school);
                 });
  sim.run_until(sim.now() + Duration::seconds(10.0));

  const Duration gap = chat.longest_stall(conn->id(), move_at,
                                          move_at + Duration::seconds(5.0));
  std::cout << "[" << sim.now().to_seconds() << "s] stream continued: "
            << chat.delivered_bytes(conn->id()) / 1000.0
            << " kB total; application-visible gap during the move: "
            << gap.to_millis() << " ms\n";
  std::cout << "\nNo state was shared between the APs: co-op sessions="
            << coop->core().gateway().session_count()
            << ", school sessions="
            << school->core().gateway().session_count()
            << ". Continuity came from the endpoint transport (§4.2).\n";
  return 0;
}
