// Coexistence walkthrough: one city block, one unlicensed channel.
//
// Two apartment-building WiFi BSSs and one dLTE AP land on the same
// 2.4 GHz channel. The dLTE operator tries each access behaviour in
// turn — the oblivious scheduled waveform (never listens), LAA-style
// listen-before-talk, and blind + adaptive CSAT duty-cycling — and the
// table shows who actually got the air: per-transmitter airtime shares,
// Jain fairness across the block, and each side's goodput.
//
// The closing section shows the control-plane guard: a PeerCoordinator
// refuses to switch into a coexistence mode until the spectrum registry
// reports WiFi occupants on the band (Registry::mark_band_shared), so an
// AP cannot silently drop out of X2 share rounds on a licensed carrier.
#include <iostream>
#include <string>

#include "coex/shared_channel.h"
#include "common/table.h"
#include "net/network.h"
#include "phy/wifi_phy.h"
#include "sim/simulator.h"
#include "spectrum/coordinator.h"
#include "spectrum/registry.h"

using namespace dlte;

namespace {

coex::TransmitterSite block_site(double ap_x, double client_x) {
  coex::TransmitterSite s;
  s.tx_pos = Position{ap_x, 0.0};
  s.rx_pos = Position{client_x, 40.0};
  s.tx_profile = phy::DeviceProfiles::wifi_ap_outdoor();
  s.rx_profile = phy::DeviceProfiles::wifi_client();
  return s;
}

struct BlockResult {
  double wifi_air{0.0};
  double dlte_air{0.0};
  double fairness{0.0};
  double wifi_mbps{0.0};
  double dlte_mbps{0.0};
};

BlockResult run_block(coex::LteCoexPolicy policy, bool adaptive) {
  coex::SharedChannel ch{coex::SharedChannelConfig{}};
  // Two WiFi BSSs at the ends of the block, the dLTE AP mid-block:
  // everyone within carrier-sense range of everyone.
  coex::WifiStationConfig w1;
  w1.site = block_site(0.0, 30.0);
  coex::WifiStationConfig w2;
  w2.site = block_site(120.0, 90.0);
  const int a = ch.add_wifi_station(w1);
  const int b = ch.add_wifi_station(w2);
  coex::LteTransmitterConfig lc;
  lc.site = block_site(60.0, 95.0);
  lc.policy = policy;
  lc.cca_dbm = -82.0;  // WiFi-class energy detect.
  lc.adaptive = adaptive;
  const int l = ch.add_lte_transmitter(lc);
  ch.run(Duration::seconds(2.0));

  BlockResult r;
  r.wifi_air = ch.airtime_share(coex::Waveform::kWifi);
  r.dlte_air = ch.airtime_share(coex::Waveform::kDlte);
  r.fairness = jain_fairness(ch.airtime_fractions());
  for (int id : {a, b}) {
    r.wifi_mbps += ch.stats(id).goodput(ch.elapsed()).to_mbps();
  }
  r.dlte_mbps = ch.stats(l).goodput(ch.elapsed()).to_mbps();
  return r;
}

}  // namespace

int main() {
  std::cout << "== One city block, one unlicensed channel ==\n"
            << "2 WiFi BSSs + 1 dLTE AP, all saturated, all in carrier-sense "
               "range.\n\n";

  TextTable t{{"dLTE behaviour", "WiFi airtime", "dLTE airtime", "Jain",
               "WiFi goodput", "dLTE goodput"}};
  struct Row {
    const char* name;
    coex::LteCoexPolicy policy;
    bool adaptive;
  };
  for (const auto& row :
       {Row{"oblivious (never listens)", coex::LteCoexPolicy::kOblivious,
            false},
        Row{"listen-before-talk (LAA)", coex::LteCoexPolicy::kLbt, false},
        Row{"duty-cycle 50/50 (CSAT)", coex::LteCoexPolicy::kDutyCycle,
            false},
        Row{"duty-cycle adaptive", coex::LteCoexPolicy::kDutyCycle, true}}) {
    const BlockResult r = run_block(row.policy, row.adaptive);
    t.row()
        .add(row.name)
        .num(r.wifi_air, 3)
        .num(r.dlte_air, 3)
        .num(r.fairness, 3)
        .num(r.wifi_mbps, 1, "Mb/s")
        .num(r.dlte_mbps, 1, "Mb/s");
  }
  t.print(std::cout);

  std::cout << "\nThe oblivious waveform owns the channel and the WiFi "
               "households get nothing;\nLBT contends like a (greedy) "
               "802.11 peer; duty-cycling splits the air by clock,\nand "
               "the adaptive variant backs off to what WiFi leaves "
               "unused.\n\n";

  // --- Control-plane guard: no coexistence mode without WiFi on the band.
  std::cout << "== Switching the AP's coordinator into coexistence mode ==\n";
  sim::Simulator sim;
  net::Network net{sim};
  const NodeId node = net.add_node("dlte-ap");
  spectrum::PeerCoordinator coord{
      sim, net, node,
      spectrum::CoordinatorConfig{ApId{1}, lte::DlteMode::kFairShare,
                                  Duration::seconds(1.0)}};

  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};
  const Hertz band = Hertz::ghz(2.4);

  bool ok = coord.set_mode(lte::DlteMode::kLbt);
  std::cout << "registry says " << registry.wifi_occupants(band)
            << " WiFi occupant(s) -> set_mode(kLbt) "
            << (ok ? "accepted" : "REFUSED") << " (mode_rejects="
            << coord.stats().mode_rejects << ")\n";

  registry.mark_band_shared(band, 2);  // Site survey found both BSSs.
  coord.set_wifi_occupants(registry.wifi_occupants(band));
  ok = coord.set_mode(lte::DlteMode::kLbt);
  std::cout << "registry says " << registry.wifi_occupants(band)
            << " WiFi occupant(s) -> set_mode(kLbt) "
            << (ok ? "accepted" : "REFUSED")
            << "; X2 share rounds stop, the on-air LBT policy arbitrates "
               "airtime instead.\n";
  return ok ? 0 : 1;
}
