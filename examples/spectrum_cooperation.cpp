// Spectrum cooperation: organic growth of a contention domain (§4.3).
//
// Three operators bring up co-channel APs over the course of a day. Each
// join is fully automated: registry grant → contention-domain query →
// hello → coordinated shares. We watch the shares rebalance as the
// domain grows, then two members opt into cooperative mode (which only
// takes effect when the whole domain agrees — coordination is consensual).
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "core/access_point.h"

using namespace dlte;

namespace {
void print_shares(sim::Simulator& sim,
                  const std::vector<std::unique_ptr<core::DlteAccessPoint>>&
                      aps) {
  std::cout << "[" << std::setw(5) << sim.now().to_seconds() << "s] shares:";
  for (const auto& ap : aps) {
    std::cout << "  AP" << ap->id().value() << "="
              << std::fixed << std::setprecision(2)
              << ap->coordinator().current_share();
  }
  std::cout << "\n";
}
}  // namespace

int main() {
  sim::Simulator sim;
  net::Network net{sim};
  core::RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kFederated};

  const NodeId internet = net.add_node("internet");
  std::vector<std::unique_ptr<core::DlteAccessPoint>> aps;

  auto join = [&](std::uint32_t id, double x, double load,
                  const char* contact) {
    const NodeId node = net.add_node("ap" + std::to_string(id));
    net.add_link(node, internet,
                 net::LinkConfig{DataRate::mbps(20.0), Duration::millis(12)});
    core::ApConfig cfg;
    cfg.id = ApId{id};
    cfg.cell = CellId{id};
    cfg.position = Position{x, 0.0};
    cfg.operator_contact = contact;
    aps.push_back(
        std::make_unique<core::DlteAccessPoint>(sim, net, node, radio, cfg));
    auto& ap = *aps.back();
    ap.coordinator().set_offered_load(load);
    ap.bring_up(registry, [&, id](bool ok) {
      std::cout << "[" << std::setw(5) << sim.now().to_seconds() << "s] AP"
                << id << " " << (ok ? "joined" : "refused") << " — domain "
                << "members now: "
                << registry.grant_count() << " (contact: "
                << ap.grant().operator_contact << ")\n";
    });
  };

  std::cout << "Morning: the farm co-op lights up the first AP.\n";
  join(1, 0.0, 1.0, "coop@valley.example");
  sim.run_until(sim.now() + Duration::seconds(5.0));
  print_shares(sim, aps);

  std::cout << "\nNoon: the school joins, 5 km away, same band — no "
               "permission needed,\nonly the registry's protocol.\n";
  join(2, 5'000.0, 1.0, "it@school.example");
  sim.run_until(sim.now() + Duration::seconds(6.0));
  print_shares(sim, aps);

  std::cout << "\nEvening: a homestead joins with a light load (0.2).\n";
  join(3, 2'500.0, 0.2, "family@homestead.example");
  sim.run_until(sim.now() + Duration::seconds(6.0));
  print_shares(sim, aps);
  std::cout << "(max-min fair: the homestead keeps its 0.20 ask; the two "
               "busy APs split the rest)\n";

  std::cout << "\nThe co-op and school opt into cooperative mode — but the "
               "homestead hasn't,\nso the domain stays on fair sharing "
               "(cooperation requires unanimity):\n";
  aps[0]->coordinator().set_mode(lte::DlteMode::kCooperative);
  aps[1]->coordinator().set_mode(lte::DlteMode::kCooperative);
  sim.run_until(sim.now() + Duration::seconds(5.0));
  print_shares(sim, aps);

  std::cout << "\nThe homestead opts in too; shares become "
               "demand-proportional (resource fusion):\n";
  aps[2]->coordinator().set_mode(lte::DlteMode::kCooperative);
  sim.run_until(sim.now() + Duration::seconds(5.0));
  print_shares(sim, aps);

  std::cout << "\nX2 signaling spent all day by AP1: "
            << aps[0]->coordinator().stats().bytes_sent
            << " bytes (" << aps[0]->coordinator().stats().messages_sent
            << " messages) — coordination is cheap (§4.3).\n";
  return 0;
}
