// Rural deployment: the §5 Papua scenario.
//
// One band-5 site on the town gym (power + backhaul available), two
// sectors, 15 dBi antennas, permissive secondary-use license; data-only
// service with voice/messaging as OTT applications. Households are
// scattered over the town; we attach them all, run a realistic evening
// traffic mix, and report the per-household experience plus what the
// deployment did NOT need: no carrier, no remote EPC, no billing system.
#include <iostream>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "core/access_point.h"
#include "ue/mobility.h"

using namespace dlte;

int main() {
  sim::Simulator sim;
  net::Network net{sim};
  core::RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};

  const NodeId internet = net.add_node("vsat-backhaul");
  const NodeId gym = net.add_node("gym-site");
  // Rural satellite/long-haul backhaul: modest rate, high latency.
  net.add_link(gym, internet,
               net::LinkConfig{DataRate::mbps(30.0), Duration::millis(40)});

  core::ApConfig cfg;
  cfg.id = ApId{1};
  cfg.cell = CellId{1};
  cfg.position = Position{0.0, 0.0};
  cfg.operator_contact = "school@obanggen.example";
  core::DlteAccessPoint ap{sim, net, gym, radio, cfg};
  bool granted = false;
  ap.bring_up(registry, [&](bool ok) { granted = ok; });
  sim.run_until(sim.now() + Duration::seconds(1.0));
  std::cout << "site up on the gym, grant="
            << (granted ? "secondary-use band 5" : "NONE") << "\n\n";

  // Twelve households across the town (0.3–6 km from the gym).
  crypto::Block128 op{};
  op[0] = 0xcd;
  std::vector<std::unique_ptr<core::UeDevice>> homes;
  sim::RngStream placement{2026};
  for (std::uint64_t h = 0; h < 12; ++h) {
    crypto::Key128 k{};
    for (std::size_t i = 0; i < 16; ++i) {
      k[i] = static_cast<std::uint8_t>(h * 11 + i);
    }
    const Imsi imsi{510990000000100ULL + h};
    registry.publish_subscriber(
        epc::PublishedKeys{imsi, k, crypto::derive_opc(k, op)});
    const double angle = placement.uniform(0.0, 6.283);
    const double dist = 300.0 + placement.uniform(0.0, 5'700.0);
    homes.push_back(std::make_unique<core::UeDevice>(
        ue::SimProfile{imsi, k, crypto::derive_opc(k, op), true, "home"},
        std::make_unique<ue::StaticMobility>(Position{
            dist * std::cos(angle), dist * std::sin(angle)})));
  }
  ap.import_published_subscribers(registry);

  // Evening mix: four streamers (2 Mb/s video), the rest messaging-grade.
  int attached = 0;
  Quantiles attach_times;
  for (std::size_t h = 0; h < homes.size(); ++h) {
    const bool heavy = h % 3 == 0;
    ap.attach(*homes[h],
              mac::UeTrafficConfig{
                  .offered = heavy ? DataRate::mbps(2.0)
                                   : DataRate::kbps(96.0)},
              [&](core::AttachOutcome o) {
                if (o.success) {
                  ++attached;
                  attach_times.add(o.elapsed.to_millis());
                }
              });
  }
  sim.run_until(sim.now() + Duration::seconds(2.0));
  std::cout << attached << "/12 households attached (median "
            << attach_times.median() << " ms, all served by the on-site "
            << "core stub)\n";

  ap.cell_mac().run(Duration::seconds(10.0));

  std::cout << "\nper-household downlink over a 10 s busy period:\n";
  Quantiles rates;
  std::size_t idx = 0;
  for (UeId id : ap.cell_mac().ue_ids()) {
    const auto& st = ap.cell_mac().stats(id);
    const double got = st.goodput(ap.cell_mac().elapsed()).to_kbps();
    const double dist =
        radio.cell_distance_m(CellId{1}, homes[idx]->position());
    const bool heavy = idx % 3 == 0;
    std::cout << "  home-" << idx << "  " << dist / 1000.0 << " km  "
              << (heavy ? "video    " : "messaging") << "  offered "
              << (heavy ? 2000.0 : 96.0) << " kb/s, delivered " << got
              << " kb/s\n";
    rates.add(got);
    ++idx;
  }
  std::cout << "\ncell served all offered load: median " << rates.median()
            << " kb/s, min " << rates.quantile(0.0) << " kb/s\n";
  std::cout << "what this deployment did not need: a carrier contract, a "
               "remote EPC site,\nSIM provisioning through an operator, or "
               "a billing system (CDRs: "
            << ap.core().cdr_count() << ").\n";
  return 0;
}
