// AP failover walkthrough: what §4.1's "local core per AP" buys you
// when hardware dies.
//
// Two neighborhood APs share a town. Eight households camp on AP 1
// (it is closer). At t=30 s AP 1's box loses power — its local
// MME/S-GW state evaporates with it, exactly like a WiFi AP rebooting.
// Each UE's failover watchdog notices the dead cell, picks the best
// surviving AP by RSRP, and re-attaches with exponential backoff. The
// timeline below shows the injected fault, the degraded window, and the
// re-attach wave; the closing report puts numbers on it.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fault/failover.h"
#include "fault/fault.h"
#include "fault/health.h"
#include "fault/resilience.h"
#include "obs/series.h"
#include "obs/series_export.h"
#include "obs/slo.h"
#include "obs/trace_export.h"
#include "sim/telemetry.h"
#include "sim/trace.h"
#include "ue/mobility.h"

using namespace dlte;

int main(int argc, char** argv) {
  // Optional: `--trace-out=<file>` exports the whole walkthrough —
  // attach waves, X2 rounds, the injected crash — as Chrome trace-event
  // JSON for ui.perfetto.dev. Fault events land as annotations on
  // whatever procedure span they interrupt. `--series-out=<file>` writes
  // the health-monitoring time series (dlte-series-v1 JSON) that
  // tools/health_report.py renders.
  std::string trace_out;
  std::string series_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg.rfind("--series-out=", 0) == 0) {
      series_out = arg.substr(std::string("--series-out=").size());
    }
  }

  sim::Simulator sim;
  std::unique_ptr<obs::SpanTracer> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<obs::SpanTracer>([&sim] { return sim.now(); });
  }
  net::Network net{sim};
  net.set_tracer(tracer.get());
  core::RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};
  registry.set_tracer(tracer.get());
  sim::TraceLog trace{sim};
  // Bridge: TraceLog lines recorded while a span is active become that
  // span's annotations (the legacy log joins the causal tree).
  trace.set_tracer(tracer.get());

  // Health monitoring (DESIGN.md §10): sample the metrics plane every
  // 500 ms of simulated time and judge SLO rules against it. The alert
  // timeline prints at the end; kHealth trace events interleave with the
  // fault timeline as the run unfolds.
  obs::MetricsRegistry metrics;
  obs::TimeSeriesSampler sampler{metrics};
  obs::SloMonitor monitor{metrics};
  monitor.set_metrics(&metrics);
  monitor.set_tracer(tracer.get());
  monitor.add_rules(fault::default_resilience_slo_rules(
      /*min_ues_in_service=*/8.0, "", "service"));
  for (int id = 1; id <= 2; ++id) {
    obs::SloRule up;
    up.name = "ap" + std::to_string(id) + "_down";
    up.scope = "ap" + std::to_string(id);
    up.metric = "ap" + std::to_string(id) + ".up";
    up.predicate = obs::SloPredicate::kGaugeAtLeast;
    up.threshold = 1.0;
    monitor.add_rule(up);
  }
  sim::TelemetryDriver telemetry{sim, &sampler, &monitor};
  telemetry.set_trace(&trace);
  telemetry.start();

  const NodeId internet = net.add_node("internet");

  // Two APs 3.5 km apart, both with their own core stub.
  std::vector<std::unique_ptr<core::DlteAccessPoint>> aps;
  for (std::uint32_t id = 1; id <= 2; ++id) {
    const NodeId node = net.add_node("ap" + std::to_string(id));
    net.add_link(node, internet,
                 net::LinkConfig{DataRate::mbps(50.0), Duration::millis(15)});
    core::ApConfig cfg;
    cfg.id = ApId{id};
    cfg.cell = CellId{id};
    cfg.position = Position{(id - 1) * 3'500.0, 0.0};
    cfg.seed = 40 + id;
    aps.push_back(
        std::make_unique<core::DlteAccessPoint>(sim, net, node, radio, cfg));
    aps.back()->set_trace(&trace);
    aps.back()->set_span_tracer(tracer.get(),
                                "ap" + std::to_string(id) + "/");
    aps.back()->set_metrics(&metrics);
    aps.back()->bring_up(registry);
  }
  sim.run_until(sim.now() + Duration::seconds(2.0));
  std::cout << "two APs up, each with a local core\n";

  // Eight households, all closer to AP 1.
  crypto::Block128 op{};
  op[0] = 0xcd;
  std::vector<std::unique_ptr<core::UeDevice>> homes;
  for (std::uint64_t h = 0; h < 8; ++h) {
    crypto::Key128 k{};
    for (std::size_t i = 0; i < 16; ++i) {
      k[i] = static_cast<std::uint8_t>(h * 13 + i);
    }
    const Imsi imsi{510990000000200ULL + h};
    const auto opc = crypto::derive_opc(k, op);
    registry.publish_subscriber(epc::PublishedKeys{imsi, k, opc});
    homes.push_back(std::make_unique<core::UeDevice>(
        ue::SimProfile{imsi, k, opc, true, "home"},
        std::make_unique<ue::StaticMobility>(
            Position{300.0 + 120.0 * static_cast<double>(h), 0.0})));
  }
  for (auto& ap : aps) ap->import_published_subscribers(registry);

  fault::ResilienceTracker tracker{sim};
  tracker.set_metrics(&metrics);
  fault::UeFailoverAgent agent{sim, radio, &tracker};
  for (auto& ap : aps) agent.add_ap(ap.get());
  for (auto& home : homes) agent.manage(*home, mac::UeTrafficConfig{});
  agent.start();
  sim.run_until(sim.now() + Duration::seconds(5.0));
  std::cout << "all " << homes.size() << " households attached; AP 1 serves "
            << aps[0]->core().gateway().session_count() << ", AP 2 serves "
            << aps[1]->core().gateway().session_count() << "\n\n";

  // The fault: AP 1 dies at t=30 s and stays dead.
  fault::FaultInjector injector{sim};
  injector.register_ap(aps[0].get());
  injector.register_ap(aps[1].get());
  injector.set_registry(&registry);
  injector.set_trace(&trace);
  injector.set_tracer(tracer.get());
  fault::FaultPlan plan;
  fault::FaultSpec crash;
  crash.kind = fault::FaultKind::kApCrash;
  crash.at = TimePoint{} + Duration::seconds(30.0);
  crash.ap = ApId{1};  // Duration zero: permanent.
  plan.add(crash);
  injector.arm(plan);
  std::cout << "fault plan:\n" << plan.summary() << "\n";

  const TimePoint horizon = TimePoint{} + Duration::seconds(60.0);
  sim.run_until(horizon);

  std::cout << "fault timeline:\n";
  for (const auto& ev : trace.events()) {
    if (ev.category != sim::TraceCategory::kFault) continue;
    std::cout << "  t=" << (ev.when - TimePoint{}).to_seconds() << "s  ["
              << ev.component
              << "] " << ev.message << "\n";
  }

  std::cout << "\nafter the crash: AP 2 now serves "
            << aps[1]->core().gateway().session_count() << " of "
            << homes.size() << " households\n";

  std::cout << "\nhealth timeline (SLO alerts):\n";
  for (const auto& event : monitor.events()) {
    std::cout << "  " << event.describe() << "\n";
  }
  std::cout << "final health scores:";
  for (const auto& scope : monitor.scopes()) {
    std::cout << "  " << scope << "=" << monitor.health(scope);
  }
  std::cout << "\n";

  auto report = tracker.report(horizon);
  report.fault_events = trace.count(sim::TraceCategory::kFault);
  std::cout << "\nresilience report:\n" << report.to_string();
  std::cout << "\nno carrier NOC was paged; the town healed itself.\n";

  if (!series_out.empty()) {
    if (obs::SeriesExporter::write_file(sampler, &monitor, "ap_failover",
                                        series_out)) {
      std::cout << "series json (" << sampler.series().size()
                << " series) written to " << series_out
                << " — render with tools/health_report.py\n";
    } else {
      std::cerr << "failed to write series to " << series_out << "\n";
      return 1;
    }
  }

  if (tracer != nullptr) {
    if (obs::ChromeTraceExporter::write_file(*tracer, trace_out)) {
      std::cout << "span trace (" << tracer->spans().size()
                << " spans) written to " << trace_out
                << " — load it in ui.perfetto.dev\n";
    } else {
      std::cerr << "failed to write trace to " << trace_out << "\n";
      return 1;
    }
  }
  return 0;
}
