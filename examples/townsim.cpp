// townsim: a configurable dLTE town — the downstream user's sandbox.
//
//   townsim [--aps N] [--ues M] [--mode fair|coop|isolated]
//           [--registry sas|federated|blockchain] [--spacing METERS]
//           [--duration SECONDS] [--seed S]
//           [--shards N] [--par-threads T]
//
// Builds N APs in a line with M clients scattered around them, brings
// everything up through the chosen registry, serves a mixed traffic
// load, and prints the operator's-eye report: shares, per-client
// service, fairness, and coordination cost.
//
// With --shards N the town instead runs on the sharded parallel runtime
// (src/par/): per-AP islands exchanging X2 load reports across shards,
// merged telemetry byte-identical at any shard/thread count. --mode,
// --registry and --spacing do not apply there.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/access_point.h"
#include "par/town.h"
#include "sim/trace.h"
#include "spectrum/chain.h"
#include "ue/mobility.h"

using namespace dlte;

namespace {

struct Options {
  int aps{3};
  int ues{12};
  lte::DlteMode mode{lte::DlteMode::kFairShare};
  spectrum::RegistryKind registry{spectrum::RegistryKind::kCentralizedSas};
  double spacing_m{5'000.0};
  double duration_s{10.0};
  std::uint64_t seed{1};
  bool trace{false};
  std::size_t shards{0};  // 0 = classic single-simulator town
  std::size_t par_threads{0};
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::stod(argv[++i]);
      return true;
    };
    double v = 0.0;
    if (arg == "--aps" && next(v)) {
      opt.aps = static_cast<int>(v);
    } else if (arg == "--ues" && next(v)) {
      opt.ues = static_cast<int>(v);
    } else if (arg == "--spacing" && next(v)) {
      opt.spacing_m = v;
    } else if (arg == "--duration" && next(v)) {
      opt.duration_s = v;
    } else if (arg == "--seed" && next(v)) {
      opt.seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--shards" && next(v)) {
      opt.shards = static_cast<std::size_t>(v);
    } else if (arg == "--par-threads" && next(v)) {
      opt.par_threads = static_cast<std::size_t>(v);
    } else if (arg == "--mode" && i + 1 < argc) {
      const std::string m = argv[++i];
      if (m == "fair") {
        opt.mode = lte::DlteMode::kFairShare;
      } else if (m == "coop") {
        opt.mode = lte::DlteMode::kCooperative;
      } else if (m == "isolated") {
        opt.mode = lte::DlteMode::kIsolated;
      } else {
        return false;
      }
    } else if (arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--registry" && i + 1 < argc) {
      const std::string r = argv[++i];
      if (r == "sas") {
        opt.registry = spectrum::RegistryKind::kCentralizedSas;
      } else if (r == "federated") {
        opt.registry = spectrum::RegistryKind::kFederated;
      } else if (r == "blockchain") {
        opt.registry = spectrum::RegistryKind::kBlockchain;
      } else {
        return false;
      }
    } else {
      return false;
    }
  }
  return opt.aps >= 1 && opt.ues >= 0 && opt.duration_s > 0.0;
}

// --shards mode: the X2-coupled island town on the parallel runtime.
int run_sharded(const Options& opt) {
  par::TownConfig cfg;
  cfg.aps = static_cast<std::size_t>(opt.aps);
  cfg.ues_per_ap = static_cast<std::size_t>(
      opt.ues > 0 ? std::max(1, opt.ues / opt.aps) : 0);
  cfg.shards = opt.shards;
  cfg.threads = opt.par_threads;
  cfg.seed = opt.seed;
  cfg.horizon = Duration::seconds(opt.duration_s);
  par::ShardedTown town{cfg};
  const auto start = std::chrono::steady_clock::now();
  const par::TownResult r = town.run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << "sharded town: " << cfg.aps << " AP islands on "
            << town.runtime().shard_count() << " shards\n\n";
  TextTable t{{"", ""}};
  t.row()
      .add("attaches completed")
      .integer(static_cast<long long>(r.attaches_completed));
  t.row()
      .add("attaches failed")
      .integer(static_cast<long long>(r.attaches_failed));
  t.row()
      .add("X2 load reports rx")
      .integer(static_cast<long long>(r.x2_reports_rx));
  t.row().add("barrier windows").integer(static_cast<long long>(r.windows));
  t.row().add("cross-shard msgs").integer(static_cast<long long>(r.messages));
  t.row().add("simulated").num(r.sim_seconds, 1, "s");
  t.row().add("wall").num(wall * 1000.0, 1, "ms");
  t.print(std::cout);
  std::cout << "\nMerged telemetry is byte-identical at any --shards / "
               "--par-threads\nsetting (bench_c9 and par_test check this "
               "on every run).\n";
  return r.attaches_failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    std::cerr << "usage: townsim [--aps N] [--ues M] "
                 "[--mode fair|coop|isolated]\n"
                 "               [--registry sas|federated|blockchain] "
                 "[--spacing M]\n"
                 "               [--duration SEC] [--seed S] [--trace]\n"
                 "               [--shards N] [--par-threads T]\n";
    return 2;
  }
  if (opt.shards > 0) return run_sharded(opt);

  sim::Simulator sim;
  net::Network net{sim};
  core::RadioEnvironment radio;
  spectrum::Registry registry{sim, opt.registry};
  spectrum::SpectrumChain chain{sim, Duration::seconds(30.0)};
  if (opt.registry == spectrum::RegistryKind::kBlockchain) {
    registry.attach_chain(&chain);
  }
  const NodeId internet = net.add_node("internet");
  sim::TraceLog trace{sim};

  // Access points.
  std::vector<std::unique_ptr<core::DlteAccessPoint>> aps;
  int grants = 0;
  for (int a = 0; a < opt.aps; ++a) {
    const NodeId node = net.add_node("ap" + std::to_string(a + 1));
    net.add_link(node, internet,
                 net::LinkConfig{DataRate::mbps(50.0), Duration::millis(15)});
    core::ApConfig cfg;
    cfg.id = ApId{static_cast<std::uint32_t>(a + 1)};
    cfg.cell = CellId{static_cast<std::uint32_t>(a + 1)};
    cfg.position = Position{a * opt.spacing_m, 0.0};
    cfg.mode = opt.mode;
    cfg.operator_contact = "op" + std::to_string(a + 1) + "@town.example";
    cfg.seed = opt.seed + static_cast<std::uint64_t>(a);
    aps.push_back(
        std::make_unique<core::DlteAccessPoint>(sim, net, node, radio, cfg));
    if (opt.trace) aps.back()->set_trace(&trace);
    aps.back()->bring_up(registry, [&](bool ok) { grants += ok ? 1 : 0; });
  }
  // Blockchain commits wait for a block; give bring-up time to finish.
  const double bring_up_s =
      opt.registry == spectrum::RegistryKind::kBlockchain ? 70.0 : 3.0;
  sim.run_until(sim.now() + Duration::seconds(bring_up_s));
  std::cout << grants << "/" << opt.aps << " APs hold grants ("
            << (opt.registry == spectrum::RegistryKind::kCentralizedSas
                    ? "SAS"
                : opt.registry == spectrum::RegistryKind::kFederated
                    ? "federated"
                    : "blockchain")
            << " registry)\n";

  // Clients: scattered around their home AP, identities published.
  crypto::Block128 op{};
  op[0] = 0xcd;
  sim::RngStream placement = sim::RngStream::derive(opt.seed, "placement");
  std::vector<std::unique_ptr<core::UeDevice>> ues;
  int attached = 0;
  Quantiles attach_ms;
  for (int u = 0; u < opt.ues; ++u) {
    crypto::Key128 k{};
    for (std::size_t i = 0; i < 16; ++i) {
      k[i] = static_cast<std::uint8_t>(u * 17 + i);
    }
    const Imsi imsi{900000000000000ULL + static_cast<std::uint64_t>(u)};
    registry.publish_subscriber(
        epc::PublishedKeys{imsi, k, crypto::derive_opc(k, op)});
    const int home = u % opt.aps;
    const double off = placement.uniform(-0.25, 0.25) * opt.spacing_m;
    ues.push_back(std::make_unique<core::UeDevice>(
        ue::SimProfile{imsi, k, crypto::derive_opc(k, op), true, "u"},
        std::make_unique<ue::StaticMobility>(
            Position{home * opt.spacing_m + off,
                     placement.uniform(100.0, 800.0)})));
    auto& ap = *aps[static_cast<std::size_t>(home)];
    ap.import_published_subscribers(registry);
    const bool heavy = u % 3 == 0;
    ap.attach(*ues.back(),
              mac::UeTrafficConfig{.offered = heavy ? DataRate::mbps(4.0)
                                                    : DataRate::kbps(256.0)},
              [&](core::AttachOutcome o) {
                if (o.success) {
                  ++attached;
                  attach_ms.add(o.elapsed.to_millis());
                }
              });
  }
  sim.run_until(sim.now() + Duration::seconds(3.0));
  std::cout << attached << "/" << opt.ues << " clients attached (median "
            << attach_ms.median() << " ms)\n\n";

  // Serve.
  for (auto& ap : aps) ap->cell_mac().run(Duration::seconds(opt.duration_s));
  sim.run_until(sim.now() + Duration::seconds(opt.duration_s));

  // Report.
  TextTable t{{"AP", "share", "UEs", "delivered", "X2 sent"}};
  std::vector<double> per_ue;
  for (auto& ap : aps) {
    double bits = 0.0;
    for (UeId id : ap->cell_mac().ue_ids()) {
      const double ue_bits = ap->cell_mac().stats(id).delivered_bits;
      bits += ue_bits;
      per_ue.push_back(ue_bits);
    }
    t.row()
        .add("AP" + std::to_string(ap->id().value()))
        .num(ap->cell_mac().prb_share(), 2)
        .integer(static_cast<long long>(ap->cell_mac().ue_ids().size()))
        .num(bits / 1e6 / opt.duration_s, 2, "Mb/s")
        .num(static_cast<double>(ap->coordinator().stats().bytes_sent) /
                 1000.0,
             1, "kB");
  }
  t.print(std::cout);
  std::cout << "client fairness (Jain): " << jain_fairness(per_ue) << "\n";
  if (opt.trace) {
    std::cout << "\nevent trace:\n";
    trace.print(std::cout);
  }
  if (registry.chain_backed()) {
    std::cout << "registry chain: " << chain.block_count()
              << " blocks, integrity "
              << (chain.verify() ? "OK" : "BROKEN") << "\n";
  }
  return 0;
}
