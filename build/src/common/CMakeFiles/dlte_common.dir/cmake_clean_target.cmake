file(REMOVE_RECURSE
  "libdlte_common.a"
)
