# Empty compiler generated dependencies file for dlte_common.
# This may be replaced when dependencies are built.
