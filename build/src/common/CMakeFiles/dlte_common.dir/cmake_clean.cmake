file(REMOVE_RECURSE
  "CMakeFiles/dlte_common.dir/bytes.cpp.o"
  "CMakeFiles/dlte_common.dir/bytes.cpp.o.d"
  "CMakeFiles/dlte_common.dir/stats.cpp.o"
  "CMakeFiles/dlte_common.dir/stats.cpp.o.d"
  "CMakeFiles/dlte_common.dir/table.cpp.o"
  "CMakeFiles/dlte_common.dir/table.cpp.o.d"
  "libdlte_common.a"
  "libdlte_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
