# Empty compiler generated dependencies file for dlte_core.
# This may be replaced when dependencies are built.
