file(REMOVE_RECURSE
  "libdlte_core.a"
)
