file(REMOVE_RECURSE
  "CMakeFiles/dlte_core.dir/access_point.cpp.o"
  "CMakeFiles/dlte_core.dir/access_point.cpp.o.d"
  "CMakeFiles/dlte_core.dir/backhaul_mesh.cpp.o"
  "CMakeFiles/dlte_core.dir/backhaul_mesh.cpp.o.d"
  "CMakeFiles/dlte_core.dir/enodeb.cpp.o"
  "CMakeFiles/dlte_core.dir/enodeb.cpp.o.d"
  "CMakeFiles/dlte_core.dir/handover.cpp.o"
  "CMakeFiles/dlte_core.dir/handover.cpp.o.d"
  "CMakeFiles/dlte_core.dir/measurement.cpp.o"
  "CMakeFiles/dlte_core.dir/measurement.cpp.o.d"
  "CMakeFiles/dlte_core.dir/radio_env.cpp.o"
  "CMakeFiles/dlte_core.dir/radio_env.cpp.o.d"
  "CMakeFiles/dlte_core.dir/s1_fabric.cpp.o"
  "CMakeFiles/dlte_core.dir/s1_fabric.cpp.o.d"
  "CMakeFiles/dlte_core.dir/ue_device.cpp.o"
  "CMakeFiles/dlte_core.dir/ue_device.cpp.o.d"
  "libdlte_core.a"
  "libdlte_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
