file(REMOVE_RECURSE
  "CMakeFiles/dlte_sim.dir/random.cpp.o"
  "CMakeFiles/dlte_sim.dir/random.cpp.o.d"
  "CMakeFiles/dlte_sim.dir/simulator.cpp.o"
  "CMakeFiles/dlte_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/dlte_sim.dir/trace.cpp.o"
  "CMakeFiles/dlte_sim.dir/trace.cpp.o.d"
  "libdlte_sim.a"
  "libdlte_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
