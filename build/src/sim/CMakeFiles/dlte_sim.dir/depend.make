# Empty dependencies file for dlte_sim.
# This may be replaced when dependencies are built.
