file(REMOVE_RECURSE
  "libdlte_sim.a"
)
