file(REMOVE_RECURSE
  "libdlte_spectrum.a"
)
