file(REMOVE_RECURSE
  "CMakeFiles/dlte_spectrum.dir/chain.cpp.o"
  "CMakeFiles/dlte_spectrum.dir/chain.cpp.o.d"
  "CMakeFiles/dlte_spectrum.dir/coordinator.cpp.o"
  "CMakeFiles/dlte_spectrum.dir/coordinator.cpp.o.d"
  "CMakeFiles/dlte_spectrum.dir/fair_share.cpp.o"
  "CMakeFiles/dlte_spectrum.dir/fair_share.cpp.o.d"
  "CMakeFiles/dlte_spectrum.dir/registry.cpp.o"
  "CMakeFiles/dlte_spectrum.dir/registry.cpp.o.d"
  "libdlte_spectrum.a"
  "libdlte_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
