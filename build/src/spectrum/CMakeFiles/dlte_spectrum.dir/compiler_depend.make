# Empty compiler generated dependencies file for dlte_spectrum.
# This may be replaced when dependencies are built.
