file(REMOVE_RECURSE
  "CMakeFiles/dlte_mac.dir/lte_cell_mac.cpp.o"
  "CMakeFiles/dlte_mac.dir/lte_cell_mac.cpp.o.d"
  "CMakeFiles/dlte_mac.dir/lte_scheduler.cpp.o"
  "CMakeFiles/dlte_mac.dir/lte_scheduler.cpp.o.d"
  "CMakeFiles/dlte_mac.dir/wifi_dcf.cpp.o"
  "CMakeFiles/dlte_mac.dir/wifi_dcf.cpp.o.d"
  "libdlte_mac.a"
  "libdlte_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
