file(REMOVE_RECURSE
  "libdlte_mac.a"
)
