# Empty dependencies file for dlte_mac.
# This may be replaced when dependencies are built.
