
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lte/gtp.cpp" "src/lte/CMakeFiles/dlte_lte.dir/gtp.cpp.o" "gcc" "src/lte/CMakeFiles/dlte_lte.dir/gtp.cpp.o.d"
  "/root/repo/src/lte/nas.cpp" "src/lte/CMakeFiles/dlte_lte.dir/nas.cpp.o" "gcc" "src/lte/CMakeFiles/dlte_lte.dir/nas.cpp.o.d"
  "/root/repo/src/lte/pdcp.cpp" "src/lte/CMakeFiles/dlte_lte.dir/pdcp.cpp.o" "gcc" "src/lte/CMakeFiles/dlte_lte.dir/pdcp.cpp.o.d"
  "/root/repo/src/lte/rlc.cpp" "src/lte/CMakeFiles/dlte_lte.dir/rlc.cpp.o" "gcc" "src/lte/CMakeFiles/dlte_lte.dir/rlc.cpp.o.d"
  "/root/repo/src/lte/rrc.cpp" "src/lte/CMakeFiles/dlte_lte.dir/rrc.cpp.o" "gcc" "src/lte/CMakeFiles/dlte_lte.dir/rrc.cpp.o.d"
  "/root/repo/src/lte/s1ap.cpp" "src/lte/CMakeFiles/dlte_lte.dir/s1ap.cpp.o" "gcc" "src/lte/CMakeFiles/dlte_lte.dir/s1ap.cpp.o.d"
  "/root/repo/src/lte/x2ap.cpp" "src/lte/CMakeFiles/dlte_lte.dir/x2ap.cpp.o" "gcc" "src/lte/CMakeFiles/dlte_lte.dir/x2ap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlte_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlte_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
