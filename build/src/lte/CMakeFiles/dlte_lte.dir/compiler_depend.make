# Empty compiler generated dependencies file for dlte_lte.
# This may be replaced when dependencies are built.
