file(REMOVE_RECURSE
  "libdlte_lte.a"
)
