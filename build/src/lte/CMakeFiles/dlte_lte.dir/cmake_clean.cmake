file(REMOVE_RECURSE
  "CMakeFiles/dlte_lte.dir/gtp.cpp.o"
  "CMakeFiles/dlte_lte.dir/gtp.cpp.o.d"
  "CMakeFiles/dlte_lte.dir/nas.cpp.o"
  "CMakeFiles/dlte_lte.dir/nas.cpp.o.d"
  "CMakeFiles/dlte_lte.dir/pdcp.cpp.o"
  "CMakeFiles/dlte_lte.dir/pdcp.cpp.o.d"
  "CMakeFiles/dlte_lte.dir/rlc.cpp.o"
  "CMakeFiles/dlte_lte.dir/rlc.cpp.o.d"
  "CMakeFiles/dlte_lte.dir/rrc.cpp.o"
  "CMakeFiles/dlte_lte.dir/rrc.cpp.o.d"
  "CMakeFiles/dlte_lte.dir/s1ap.cpp.o"
  "CMakeFiles/dlte_lte.dir/s1ap.cpp.o.d"
  "CMakeFiles/dlte_lte.dir/x2ap.cpp.o"
  "CMakeFiles/dlte_lte.dir/x2ap.cpp.o.d"
  "libdlte_lte.a"
  "libdlte_lte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_lte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
