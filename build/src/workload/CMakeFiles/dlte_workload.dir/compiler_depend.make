# Empty compiler generated dependencies file for dlte_workload.
# This may be replaced when dependencies are built.
