file(REMOVE_RECURSE
  "libdlte_workload.a"
)
