
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/ott_service.cpp" "src/workload/CMakeFiles/dlte_workload.dir/ott_service.cpp.o" "gcc" "src/workload/CMakeFiles/dlte_workload.dir/ott_service.cpp.o.d"
  "/root/repo/src/workload/sources.cpp" "src/workload/CMakeFiles/dlte_workload.dir/sources.cpp.o" "gcc" "src/workload/CMakeFiles/dlte_workload.dir/sources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlte_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlte_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/dlte_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlte_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
