file(REMOVE_RECURSE
  "CMakeFiles/dlte_workload.dir/ott_service.cpp.o"
  "CMakeFiles/dlte_workload.dir/ott_service.cpp.o.d"
  "CMakeFiles/dlte_workload.dir/sources.cpp.o"
  "CMakeFiles/dlte_workload.dir/sources.cpp.o.d"
  "libdlte_workload.a"
  "libdlte_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
