
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ue/mobility.cpp" "src/ue/CMakeFiles/dlte_ue.dir/mobility.cpp.o" "gcc" "src/ue/CMakeFiles/dlte_ue.dir/mobility.cpp.o.d"
  "/root/repo/src/ue/nas_client.cpp" "src/ue/CMakeFiles/dlte_ue.dir/nas_client.cpp.o" "gcc" "src/ue/CMakeFiles/dlte_ue.dir/nas_client.cpp.o.d"
  "/root/repo/src/ue/usim.cpp" "src/ue/CMakeFiles/dlte_ue.dir/usim.cpp.o" "gcc" "src/ue/CMakeFiles/dlte_ue.dir/usim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlte_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlte_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/dlte_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlte_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
