file(REMOVE_RECURSE
  "CMakeFiles/dlte_ue.dir/mobility.cpp.o"
  "CMakeFiles/dlte_ue.dir/mobility.cpp.o.d"
  "CMakeFiles/dlte_ue.dir/nas_client.cpp.o"
  "CMakeFiles/dlte_ue.dir/nas_client.cpp.o.d"
  "CMakeFiles/dlte_ue.dir/usim.cpp.o"
  "CMakeFiles/dlte_ue.dir/usim.cpp.o.d"
  "libdlte_ue.a"
  "libdlte_ue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_ue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
