file(REMOVE_RECURSE
  "libdlte_ue.a"
)
