# Empty dependencies file for dlte_ue.
# This may be replaced when dependencies are built.
