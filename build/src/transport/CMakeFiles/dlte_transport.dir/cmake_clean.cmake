file(REMOVE_RECURSE
  "CMakeFiles/dlte_transport.dir/transport.cpp.o"
  "CMakeFiles/dlte_transport.dir/transport.cpp.o.d"
  "libdlte_transport.a"
  "libdlte_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
