# Empty compiler generated dependencies file for dlte_transport.
# This may be replaced when dependencies are built.
