file(REMOVE_RECURSE
  "libdlte_transport.a"
)
