# Empty compiler generated dependencies file for dlte_epc.
# This may be replaced when dependencies are built.
