file(REMOVE_RECURSE
  "libdlte_epc.a"
)
