
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/epc/epc.cpp" "src/epc/CMakeFiles/dlte_epc.dir/epc.cpp.o" "gcc" "src/epc/CMakeFiles/dlte_epc.dir/epc.cpp.o.d"
  "/root/repo/src/epc/gateway.cpp" "src/epc/CMakeFiles/dlte_epc.dir/gateway.cpp.o" "gcc" "src/epc/CMakeFiles/dlte_epc.dir/gateway.cpp.o.d"
  "/root/repo/src/epc/gtp_plane.cpp" "src/epc/CMakeFiles/dlte_epc.dir/gtp_plane.cpp.o" "gcc" "src/epc/CMakeFiles/dlte_epc.dir/gtp_plane.cpp.o.d"
  "/root/repo/src/epc/hss.cpp" "src/epc/CMakeFiles/dlte_epc.dir/hss.cpp.o" "gcc" "src/epc/CMakeFiles/dlte_epc.dir/hss.cpp.o.d"
  "/root/repo/src/epc/mme.cpp" "src/epc/CMakeFiles/dlte_epc.dir/mme.cpp.o" "gcc" "src/epc/CMakeFiles/dlte_epc.dir/mme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlte_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlte_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/dlte_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlte_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlte_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
