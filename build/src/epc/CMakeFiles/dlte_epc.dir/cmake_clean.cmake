file(REMOVE_RECURSE
  "CMakeFiles/dlte_epc.dir/epc.cpp.o"
  "CMakeFiles/dlte_epc.dir/epc.cpp.o.d"
  "CMakeFiles/dlte_epc.dir/gateway.cpp.o"
  "CMakeFiles/dlte_epc.dir/gateway.cpp.o.d"
  "CMakeFiles/dlte_epc.dir/gtp_plane.cpp.o"
  "CMakeFiles/dlte_epc.dir/gtp_plane.cpp.o.d"
  "CMakeFiles/dlte_epc.dir/hss.cpp.o"
  "CMakeFiles/dlte_epc.dir/hss.cpp.o.d"
  "CMakeFiles/dlte_epc.dir/mme.cpp.o"
  "CMakeFiles/dlte_epc.dir/mme.cpp.o.d"
  "libdlte_epc.a"
  "libdlte_epc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_epc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
