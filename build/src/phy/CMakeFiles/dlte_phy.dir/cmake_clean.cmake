file(REMOVE_RECURSE
  "CMakeFiles/dlte_phy.dir/harq.cpp.o"
  "CMakeFiles/dlte_phy.dir/harq.cpp.o.d"
  "CMakeFiles/dlte_phy.dir/link_budget.cpp.o"
  "CMakeFiles/dlte_phy.dir/link_budget.cpp.o.d"
  "CMakeFiles/dlte_phy.dir/lte_amc.cpp.o"
  "CMakeFiles/dlte_phy.dir/lte_amc.cpp.o.d"
  "CMakeFiles/dlte_phy.dir/propagation.cpp.o"
  "CMakeFiles/dlte_phy.dir/propagation.cpp.o.d"
  "CMakeFiles/dlte_phy.dir/wifi_phy.cpp.o"
  "CMakeFiles/dlte_phy.dir/wifi_phy.cpp.o.d"
  "libdlte_phy.a"
  "libdlte_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
