file(REMOVE_RECURSE
  "libdlte_phy.a"
)
