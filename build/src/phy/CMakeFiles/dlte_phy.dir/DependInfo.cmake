
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/harq.cpp" "src/phy/CMakeFiles/dlte_phy.dir/harq.cpp.o" "gcc" "src/phy/CMakeFiles/dlte_phy.dir/harq.cpp.o.d"
  "/root/repo/src/phy/link_budget.cpp" "src/phy/CMakeFiles/dlte_phy.dir/link_budget.cpp.o" "gcc" "src/phy/CMakeFiles/dlte_phy.dir/link_budget.cpp.o.d"
  "/root/repo/src/phy/lte_amc.cpp" "src/phy/CMakeFiles/dlte_phy.dir/lte_amc.cpp.o" "gcc" "src/phy/CMakeFiles/dlte_phy.dir/lte_amc.cpp.o.d"
  "/root/repo/src/phy/propagation.cpp" "src/phy/CMakeFiles/dlte_phy.dir/propagation.cpp.o" "gcc" "src/phy/CMakeFiles/dlte_phy.dir/propagation.cpp.o.d"
  "/root/repo/src/phy/wifi_phy.cpp" "src/phy/CMakeFiles/dlte_phy.dir/wifi_phy.cpp.o" "gcc" "src/phy/CMakeFiles/dlte_phy.dir/wifi_phy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlte_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlte_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
