# Empty dependencies file for dlte_phy.
# This may be replaced when dependencies are built.
