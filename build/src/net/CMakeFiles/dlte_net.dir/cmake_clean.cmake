file(REMOVE_RECURSE
  "CMakeFiles/dlte_net.dir/network.cpp.o"
  "CMakeFiles/dlte_net.dir/network.cpp.o.d"
  "libdlte_net.a"
  "libdlte_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
