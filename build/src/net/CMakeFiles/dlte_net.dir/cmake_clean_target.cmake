file(REMOVE_RECURSE
  "libdlte_net.a"
)
