# Empty dependencies file for dlte_net.
# This may be replaced when dependencies are built.
