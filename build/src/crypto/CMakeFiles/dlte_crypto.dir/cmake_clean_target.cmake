file(REMOVE_RECURSE
  "libdlte_crypto.a"
)
