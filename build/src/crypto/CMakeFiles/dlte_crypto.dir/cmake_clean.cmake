file(REMOVE_RECURSE
  "CMakeFiles/dlte_crypto.dir/aes128.cpp.o"
  "CMakeFiles/dlte_crypto.dir/aes128.cpp.o.d"
  "CMakeFiles/dlte_crypto.dir/key_derivation.cpp.o"
  "CMakeFiles/dlte_crypto.dir/key_derivation.cpp.o.d"
  "CMakeFiles/dlte_crypto.dir/milenage.cpp.o"
  "CMakeFiles/dlte_crypto.dir/milenage.cpp.o.d"
  "CMakeFiles/dlte_crypto.dir/sha256.cpp.o"
  "CMakeFiles/dlte_crypto.dir/sha256.cpp.o.d"
  "libdlte_crypto.a"
  "libdlte_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlte_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
