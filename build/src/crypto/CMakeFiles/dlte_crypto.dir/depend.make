# Empty dependencies file for dlte_crypto.
# This may be replaced when dependencies are built.
