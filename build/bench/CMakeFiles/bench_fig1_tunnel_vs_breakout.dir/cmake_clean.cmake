file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_tunnel_vs_breakout.dir/bench_fig1_tunnel_vs_breakout.cpp.o"
  "CMakeFiles/bench_fig1_tunnel_vs_breakout.dir/bench_fig1_tunnel_vs_breakout.cpp.o.d"
  "bench_fig1_tunnel_vs_breakout"
  "bench_fig1_tunnel_vs_breakout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_tunnel_vs_breakout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
