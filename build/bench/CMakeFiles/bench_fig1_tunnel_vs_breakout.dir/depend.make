# Empty dependencies file for bench_fig1_tunnel_vs_breakout.
# This may be replaced when dependencies are built.
