# Empty dependencies file for bench_c4_core_scaling.
# This may be replaced when dependencies are built.
