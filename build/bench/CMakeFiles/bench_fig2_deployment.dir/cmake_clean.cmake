file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_deployment.dir/bench_fig2_deployment.cpp.o"
  "CMakeFiles/bench_fig2_deployment.dir/bench_fig2_deployment.cpp.o.d"
  "bench_fig2_deployment"
  "bench_fig2_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
