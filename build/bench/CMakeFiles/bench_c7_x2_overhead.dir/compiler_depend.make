# Empty compiler generated dependencies file for bench_c7_x2_overhead.
# This may be replaced when dependencies are built.
