# Empty compiler generated dependencies file for bench_c1_band_range.
# This may be replaced when dependencies are built.
