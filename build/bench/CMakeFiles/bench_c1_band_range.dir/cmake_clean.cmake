file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_band_range.dir/bench_c1_band_range.cpp.o"
  "CMakeFiles/bench_c1_band_range.dir/bench_c1_band_range.cpp.o.d"
  "bench_c1_band_range"
  "bench_c1_band_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_band_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
