file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_uplink_asymmetry.dir/bench_c2_uplink_asymmetry.cpp.o"
  "CMakeFiles/bench_c2_uplink_asymmetry.dir/bench_c2_uplink_asymmetry.cpp.o.d"
  "bench_c2_uplink_asymmetry"
  "bench_c2_uplink_asymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_uplink_asymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
