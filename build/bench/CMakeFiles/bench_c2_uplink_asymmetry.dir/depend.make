# Empty dependencies file for bench_c2_uplink_asymmetry.
# This may be replaced when dependencies are built.
