file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_spectrum_modes.dir/bench_c6_spectrum_modes.cpp.o"
  "CMakeFiles/bench_c6_spectrum_modes.dir/bench_c6_spectrum_modes.cpp.o.d"
  "bench_c6_spectrum_modes"
  "bench_c6_spectrum_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_spectrum_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
