# Empty dependencies file for bench_c6_spectrum_modes.
# This may be replaced when dependencies are built.
