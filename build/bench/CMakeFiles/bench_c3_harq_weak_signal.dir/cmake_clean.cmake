file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_harq_weak_signal.dir/bench_c3_harq_weak_signal.cpp.o"
  "CMakeFiles/bench_c3_harq_weak_signal.dir/bench_c3_harq_weak_signal.cpp.o.d"
  "bench_c3_harq_weak_signal"
  "bench_c3_harq_weak_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_harq_weak_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
