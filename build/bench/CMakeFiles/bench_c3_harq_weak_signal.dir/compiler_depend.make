# Empty compiler generated dependencies file for bench_c3_harq_weak_signal.
# This may be replaced when dependencies are built.
