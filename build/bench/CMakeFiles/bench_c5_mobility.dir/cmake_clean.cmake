file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_mobility.dir/bench_c5_mobility.cpp.o"
  "CMakeFiles/bench_c5_mobility.dir/bench_c5_mobility.cpp.o.d"
  "bench_c5_mobility"
  "bench_c5_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
