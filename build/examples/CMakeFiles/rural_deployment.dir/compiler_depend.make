# Empty compiler generated dependencies file for rural_deployment.
# This may be replaced when dependencies are built.
