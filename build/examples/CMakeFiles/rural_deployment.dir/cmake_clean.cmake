file(REMOVE_RECURSE
  "CMakeFiles/rural_deployment.dir/rural_deployment.cpp.o"
  "CMakeFiles/rural_deployment.dir/rural_deployment.cpp.o.d"
  "rural_deployment"
  "rural_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rural_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
