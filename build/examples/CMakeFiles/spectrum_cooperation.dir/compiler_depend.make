# Empty compiler generated dependencies file for spectrum_cooperation.
# This may be replaced when dependencies are built.
