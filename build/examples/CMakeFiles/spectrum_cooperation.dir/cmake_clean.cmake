file(REMOVE_RECURSE
  "CMakeFiles/spectrum_cooperation.dir/spectrum_cooperation.cpp.o"
  "CMakeFiles/spectrum_cooperation.dir/spectrum_cooperation.cpp.o.d"
  "spectrum_cooperation"
  "spectrum_cooperation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_cooperation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
