
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/spectrum_cooperation.cpp" "examples/CMakeFiles/spectrum_cooperation.dir/spectrum_cooperation.cpp.o" "gcc" "examples/CMakeFiles/spectrum_cooperation.dir/spectrum_cooperation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dlte_core.dir/DependInfo.cmake"
  "/root/repo/build/src/spectrum/CMakeFiles/dlte_spectrum.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/dlte_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/dlte_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/epc/CMakeFiles/dlte_epc.dir/DependInfo.cmake"
  "/root/repo/build/src/ue/CMakeFiles/dlte_ue.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/dlte_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlte_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dlte_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/dlte_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlte_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlte_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dlte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
