# Empty compiler generated dependencies file for roaming_campus.
# This may be replaced when dependencies are built.
