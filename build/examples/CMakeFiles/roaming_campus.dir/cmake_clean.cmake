file(REMOVE_RECURSE
  "CMakeFiles/roaming_campus.dir/roaming_campus.cpp.o"
  "CMakeFiles/roaming_campus.dir/roaming_campus.cpp.o.d"
  "roaming_campus"
  "roaming_campus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roaming_campus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
