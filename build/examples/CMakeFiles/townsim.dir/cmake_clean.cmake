file(REMOVE_RECURSE
  "CMakeFiles/townsim.dir/townsim.cpp.o"
  "CMakeFiles/townsim.dir/townsim.cpp.o.d"
  "townsim"
  "townsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/townsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
