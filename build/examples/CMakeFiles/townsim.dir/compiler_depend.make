# Empty compiler generated dependencies file for townsim.
# This may be replaced when dependencies are built.
