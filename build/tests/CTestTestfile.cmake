# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/mac_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/lte_test[1]_include.cmake")
include("/root/repo/build/tests/epc_test[1]_include.cmake")
include("/root/repo/build/tests/ue_test[1]_include.cmake")
include("/root/repo/build/tests/spectrum_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
