
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/access_point_test.cpp" "tests/CMakeFiles/core_test.dir/core/access_point_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/access_point_test.cpp.o.d"
  "/root/repo/tests/core/backhaul_mesh_test.cpp" "tests/CMakeFiles/core_test.dir/core/backhaul_mesh_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/backhaul_mesh_test.cpp.o.d"
  "/root/repo/tests/core/detach_test.cpp" "tests/CMakeFiles/core_test.dir/core/detach_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/detach_test.cpp.o.d"
  "/root/repo/tests/core/handover_test.cpp" "tests/CMakeFiles/core_test.dir/core/handover_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/handover_test.cpp.o.d"
  "/root/repo/tests/core/measurement_test.cpp" "tests/CMakeFiles/core_test.dir/core/measurement_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/measurement_test.cpp.o.d"
  "/root/repo/tests/core/paging_test.cpp" "tests/CMakeFiles/core_test.dir/core/paging_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/paging_test.cpp.o.d"
  "/root/repo/tests/core/radio_env_test.cpp" "tests/CMakeFiles/core_test.dir/core/radio_env_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/radio_env_test.cpp.o.d"
  "/root/repo/tests/core/robustness_test.cpp" "tests/CMakeFiles/core_test.dir/core/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/robustness_test.cpp.o.d"
  "/root/repo/tests/core/s1_fabric_test.cpp" "tests/CMakeFiles/core_test.dir/core/s1_fabric_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/s1_fabric_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dlte_core.dir/DependInfo.cmake"
  "/root/repo/build/src/spectrum/CMakeFiles/dlte_spectrum.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/dlte_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/dlte_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/epc/CMakeFiles/dlte_epc.dir/DependInfo.cmake"
  "/root/repo/build/src/ue/CMakeFiles/dlte_ue.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/dlte_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlte_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dlte_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/dlte_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlte_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlte_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dlte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
