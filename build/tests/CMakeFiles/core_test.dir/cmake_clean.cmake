file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/access_point_test.cpp.o"
  "CMakeFiles/core_test.dir/core/access_point_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/backhaul_mesh_test.cpp.o"
  "CMakeFiles/core_test.dir/core/backhaul_mesh_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/detach_test.cpp.o"
  "CMakeFiles/core_test.dir/core/detach_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/handover_test.cpp.o"
  "CMakeFiles/core_test.dir/core/handover_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/measurement_test.cpp.o"
  "CMakeFiles/core_test.dir/core/measurement_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/paging_test.cpp.o"
  "CMakeFiles/core_test.dir/core/paging_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/radio_env_test.cpp.o"
  "CMakeFiles/core_test.dir/core/radio_env_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/robustness_test.cpp.o"
  "CMakeFiles/core_test.dir/core/robustness_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/s1_fabric_test.cpp.o"
  "CMakeFiles/core_test.dir/core/s1_fabric_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
