
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lte/fuzz_decoders_test.cpp" "tests/CMakeFiles/lte_test.dir/lte/fuzz_decoders_test.cpp.o" "gcc" "tests/CMakeFiles/lte_test.dir/lte/fuzz_decoders_test.cpp.o.d"
  "/root/repo/tests/lte/gtp_s1ap_test.cpp" "tests/CMakeFiles/lte_test.dir/lte/gtp_s1ap_test.cpp.o" "gcc" "tests/CMakeFiles/lte_test.dir/lte/gtp_s1ap_test.cpp.o.d"
  "/root/repo/tests/lte/nas_test.cpp" "tests/CMakeFiles/lte_test.dir/lte/nas_test.cpp.o" "gcc" "tests/CMakeFiles/lte_test.dir/lte/nas_test.cpp.o.d"
  "/root/repo/tests/lte/rlc_pdcp_test.cpp" "tests/CMakeFiles/lte_test.dir/lte/rlc_pdcp_test.cpp.o" "gcc" "tests/CMakeFiles/lte_test.dir/lte/rlc_pdcp_test.cpp.o.d"
  "/root/repo/tests/lte/x2ap_test.cpp" "tests/CMakeFiles/lte_test.dir/lte/x2ap_test.cpp.o" "gcc" "tests/CMakeFiles/lte_test.dir/lte/x2ap_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lte/CMakeFiles/dlte_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlte_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/dlte_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/epc/CMakeFiles/dlte_epc.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlte_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlte_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dlte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
