
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/epc/attach_flow_test.cpp" "tests/CMakeFiles/epc_test.dir/epc/attach_flow_test.cpp.o" "gcc" "tests/CMakeFiles/epc_test.dir/epc/attach_flow_test.cpp.o.d"
  "/root/repo/tests/epc/gateway_test.cpp" "tests/CMakeFiles/epc_test.dir/epc/gateway_test.cpp.o" "gcc" "tests/CMakeFiles/epc_test.dir/epc/gateway_test.cpp.o.d"
  "/root/repo/tests/epc/gtp_plane_test.cpp" "tests/CMakeFiles/epc_test.dir/epc/gtp_plane_test.cpp.o" "gcc" "tests/CMakeFiles/epc_test.dir/epc/gtp_plane_test.cpp.o.d"
  "/root/repo/tests/epc/hss_test.cpp" "tests/CMakeFiles/epc_test.dir/epc/hss_test.cpp.o" "gcc" "tests/CMakeFiles/epc_test.dir/epc/hss_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/epc/CMakeFiles/dlte_epc.dir/DependInfo.cmake"
  "/root/repo/build/src/ue/CMakeFiles/dlte_ue.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlte_net.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/dlte_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlte_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlte_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dlte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
