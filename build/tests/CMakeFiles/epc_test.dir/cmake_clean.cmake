file(REMOVE_RECURSE
  "CMakeFiles/epc_test.dir/epc/attach_flow_test.cpp.o"
  "CMakeFiles/epc_test.dir/epc/attach_flow_test.cpp.o.d"
  "CMakeFiles/epc_test.dir/epc/gateway_test.cpp.o"
  "CMakeFiles/epc_test.dir/epc/gateway_test.cpp.o.d"
  "CMakeFiles/epc_test.dir/epc/gtp_plane_test.cpp.o"
  "CMakeFiles/epc_test.dir/epc/gtp_plane_test.cpp.o.d"
  "CMakeFiles/epc_test.dir/epc/hss_test.cpp.o"
  "CMakeFiles/epc_test.dir/epc/hss_test.cpp.o.d"
  "epc_test"
  "epc_test.pdb"
  "epc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
