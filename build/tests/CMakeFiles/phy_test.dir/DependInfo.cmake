
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phy/harq_test.cpp" "tests/CMakeFiles/phy_test.dir/phy/harq_test.cpp.o" "gcc" "tests/CMakeFiles/phy_test.dir/phy/harq_test.cpp.o.d"
  "/root/repo/tests/phy/link_budget_test.cpp" "tests/CMakeFiles/phy_test.dir/phy/link_budget_test.cpp.o" "gcc" "tests/CMakeFiles/phy_test.dir/phy/link_budget_test.cpp.o.d"
  "/root/repo/tests/phy/lte_amc_test.cpp" "tests/CMakeFiles/phy_test.dir/phy/lte_amc_test.cpp.o" "gcc" "tests/CMakeFiles/phy_test.dir/phy/lte_amc_test.cpp.o.d"
  "/root/repo/tests/phy/propagation_test.cpp" "tests/CMakeFiles/phy_test.dir/phy/propagation_test.cpp.o" "gcc" "tests/CMakeFiles/phy_test.dir/phy/propagation_test.cpp.o.d"
  "/root/repo/tests/phy/wifi_phy_test.cpp" "tests/CMakeFiles/phy_test.dir/phy/wifi_phy_test.cpp.o" "gcc" "tests/CMakeFiles/phy_test.dir/phy/wifi_phy_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/dlte_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlte_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dlte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
