file(REMOVE_RECURSE
  "CMakeFiles/ue_test.dir/ue/nas_client_test.cpp.o"
  "CMakeFiles/ue_test.dir/ue/nas_client_test.cpp.o.d"
  "CMakeFiles/ue_test.dir/ue/usim_mobility_test.cpp.o"
  "CMakeFiles/ue_test.dir/ue/usim_mobility_test.cpp.o.d"
  "ue_test"
  "ue_test.pdb"
  "ue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
