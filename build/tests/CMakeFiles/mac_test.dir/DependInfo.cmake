
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mac/lte_cell_mac_test.cpp" "tests/CMakeFiles/mac_test.dir/mac/lte_cell_mac_test.cpp.o" "gcc" "tests/CMakeFiles/mac_test.dir/mac/lte_cell_mac_test.cpp.o.d"
  "/root/repo/tests/mac/lte_scheduler_test.cpp" "tests/CMakeFiles/mac_test.dir/mac/lte_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/mac_test.dir/mac/lte_scheduler_test.cpp.o.d"
  "/root/repo/tests/mac/wifi_dcf_test.cpp" "tests/CMakeFiles/mac_test.dir/mac/wifi_dcf_test.cpp.o" "gcc" "tests/CMakeFiles/mac_test.dir/mac/wifi_dcf_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mac/CMakeFiles/dlte_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/dlte_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlte_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dlte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
